//! Tier-1 gate for the workspace invariant linter: plain `cargo test
//! -q` from the repo root fails on any new violation, mirroring the
//! lint crate's own `tests/workspace.rs` (which needs `-p trinit-lint`
//! or `--workspace` to run). See `docs/static-analysis.md`.

use std::path::Path;

use trinit_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("repo root is the workspace root");
    let report = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.is_clean() && report.warnings.is_empty(),
        "workspace invariant violations:\n{}",
        report.render_human(true)
    );
}
