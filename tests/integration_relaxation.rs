//! Integration: mined rules, user rules, sessions, suggestion, and the
//! relaxation-driven recovery of missing answers on a generated system.

use trinit_core::relax::{mine_cooccurrence, MinerConfig, Rule, RuleKind, RuleProvenance};
use trinit_core::worldgen::{CorpusConfig, EntityType, KgConfig, World, WorldConfig};
use trinit_core::xkg::args_pairs;
use trinit_core::{Engine, Session, TrinitBuilder};

fn system() -> (World, trinit_core::Trinit) {
    let world = World::generate(WorldConfig::tiny(53).scaled(3.0));
    let mut corpus = CorpusConfig::tiny(53);
    corpus.documents = 300;
    let sys = TrinitBuilder::from_world(&world, &KgConfig::default(), &corpus).build();
    (world, sys)
}

#[test]
fn mined_weights_satisfy_paper_formula() {
    let (_, sys) = system();
    let mined = mine_cooccurrence(sys.store(), &MinerConfig::default());
    assert!(!mined.is_empty());
    for m in mined.iter().take(25) {
        // Recompute w(p1→p2) = |args(p1) ∩ args(p2)| / |args(p2)| from
        // the raw store and compare.
        let a1 = args_pairs(sys.store(), m.p1);
        let a2 = args_pairs(sys.store(), m.p2);
        let overlap = match m.rule.kind {
            RuleKind::Inversion => a1
                .iter()
                .filter(|(s, o)| a2.binary_search(&(*o, *s)).is_ok())
                .count(),
            _ => a1
                .iter()
                .filter(|pair| a2.binary_search(pair).is_ok())
                .count(),
        };
        assert_eq!(overlap, m.overlap, "{}", m.rule.label);
        assert_eq!(a2.len(), m.args_p2, "{}", m.rule.label);
        let expected = overlap as f64 / a2.len() as f64;
        assert!(
            (m.rule.weight - expected).abs() < 1e-9,
            "{}: {} vs {}",
            m.rule.label,
            m.rule.weight,
            expected
        );
    }
}

#[test]
fn mining_discovers_inversions_between_kg_and_text() {
    let (_, sys) = system();
    let mined = mine_cooccurrence(sys.store(), &MinerConfig::default());
    let has_student = sys.store().resource("hasStudent").unwrap();
    assert!(
        mined.iter().any(|m| m.rule.kind == RuleKind::Inversion
            && (m.p1 == has_student || m.p2 == has_student)),
        "advisor/student inversion should be mined from 'studied under' text"
    );
}

#[test]
fn relaxation_recovers_kg_dropped_answers() {
    let (world, sys) = system();
    // Find a person whose affiliation is NOT answerable exactly but IS
    // answerable with relaxation.
    let mut recovered = 0;
    for &pid in world.of_type(EntityType::Person).iter().take(60) {
        let person = &world.entity(pid).resource;
        let text = format!("{person} affiliation ?x LIMIT 5");
        let exact = sys.run(sys.parse(&text).unwrap(), Engine::Exact);
        if !exact.answers.is_empty() {
            continue;
        }
        let relaxed = sys.run(sys.parse(&text).unwrap(), Engine::IncrementalTopK);
        if !relaxed.answers.is_empty() {
            recovered += 1;
            assert!(!relaxed.answers[0].derivation.is_exact());
        }
    }
    assert!(recovered > 0, "relaxation should recover some empty queries");
}

#[test]
fn session_rules_extend_but_do_not_mutate_system() {
    let (_, sys) = system();
    let base_rules = sys.rules().len();
    let mut session = Session::new(&sys);
    let born = sys.store().resource("bornIn").unwrap();
    let died = sys.store().resource("diedIn").unwrap();
    session.add_rule(Rule::predicate_rewrite(
        "born~died",
        born,
        died,
        0.3,
        RuleProvenance::UserDefined,
    ));
    assert_eq!(session.rules().len(), base_rules + 1);
    assert_eq!(sys.rules().len(), base_rules, "system set untouched");
}

#[test]
fn explanations_cover_all_derivation_parts() {
    let (world, sys) = system();
    let person = &world.entity(world.of_type(EntityType::Person)[0]).resource;
    let outcome = sys
        .query(&format!("{person} 'studied under' ?x LIMIT 3"))
        .unwrap();
    if let Some(explanation) = sys.explain(&outcome, 0) {
        let text = explanation.render();
        assert!(text.contains("answer:"));
        assert!(text.contains("contributing KG triples:"));
        assert!(text.contains("contributing XKG triples:"));
        assert!(text.contains("invoked relaxation rules:"));
    }
}

#[test]
fn suggestions_point_tokens_at_canonical_predicates() {
    let (world, sys) = system();
    // 'studied under' overlaps hasStudent (inverted) and other text
    // predicates; the forward-overlap suggester should at least produce
    // something for a token query with matches.
    let mut any = false;
    for &pid in world.of_type(EntityType::Person).iter().take(40) {
        let person = &world.entity(pid).resource;
        let outcome = sys
            .query(&format!("{person} 'worked at' ?x LIMIT 5"))
            .unwrap();
        if !sys.suggest(&outcome).is_empty() {
            any = true;
            break;
        }
    }
    assert!(any, "token queries should generate suggestions");
}

#[test]
fn zero_weight_rules_never_contribute() {
    let (world, sys) = system();
    let mut session = Session::without_system_rules(&sys);
    let born = sys.store().resource("bornIn").unwrap();
    let died = sys.store().resource("diedIn").unwrap();
    session.add_rule(Rule::predicate_rewrite(
        "useless",
        born,
        died,
        0.0,
        RuleProvenance::UserDefined,
    ));
    let person = &world.entity(world.of_type(EntityType::Person)[0]).resource;
    let outcome = session
        .query(&format!("{person} bornIn ?x LIMIT 10"))
        .unwrap();
    for a in &outcome.answers {
        assert!(a.derivation.is_exact(), "zero-weight rule must be pruned");
    }
}
