//! Integration: the paper's own running example, end to end.
//!
//! Every claim the paper makes about its Figures 1–4 examples is checked
//! here against the fixture store: the four user queries of Figure 2,
//! the relaxation rules of Figure 4, and the demo features of §5.

use trinit_core::fixtures::{paper_rules, paper_rules_with_advisor, paper_store};
use trinit_core::{Engine, Trinit};

fn fixture_system() -> Trinit {
    let store = paper_store();
    let rules = paper_rules(&store);
    Trinit::from_parts(store, rules)
}

fn top_answer(sys: &Trinit, text: &str) -> Option<String> {
    let outcome = sys.query(text).ok()?;
    let answer = outcome.answers.first()?;
    let (_, term) = answer.key.first()?;
    term.map(|t| sys.store().display_term(t))
}

/// User A: "Who was born in Germany?" — KG stores city granularity;
/// rule 1 (with the `Germany type country` condition checked in the KG)
/// recovers Einstein.
#[test]
fn user_a_granularity() {
    let sys = fixture_system();
    let exact = sys.run(sys.parse("?x bornIn Germany").unwrap(), Engine::Exact);
    assert!(exact.answers.is_empty(), "KG has no person bornIn Germany");
    assert_eq!(
        top_answer(&sys, "?x bornIn Germany"),
        Some("AlbertEinstein".to_string())
    );
}

/// User B: "Who was the advisor of Albert Einstein?" — hasAdvisor is not
/// in the vocabulary; the inversion rule maps it to hasStudent.
#[test]
fn user_b_inversion() {
    let store = paper_store();
    let probe = {
        let mut qb = trinit_core::query::QueryBuilder::new(&store);
        qb.resource("hasAdvisor")
    };
    let rules = paper_rules_with_advisor(&store, probe);
    let sys = Trinit::from_parts(store, rules);
    assert_eq!(
        top_answer(&sys, "AlbertEinstein hasAdvisor ?x"),
        Some("AlfredKleiner".to_string())
    );
}

/// User C: "Ivy League university Einstein was affiliated with" — needs
/// the XKG 'housed in' triple via rule 3; answer: PrincetonUniversity,
/// exactly the paper's "more useful answer".
#[test]
fn user_c_incompleteness() {
    let sys = fixture_system();
    let text = "AlbertEinstein affiliation ?x . ?x member IvyLeague";
    let exact = sys.run(sys.parse(text).unwrap(), Engine::Exact);
    assert!(exact.answers.is_empty(), "strictly, no Ivy affiliation");
    assert_eq!(top_answer(&sys, text), Some("PrincetonUniversity".to_string()));

    // The explanation must surface all three information pieces of §5.
    let outcome = sys.query(text).unwrap();
    let explanation = sys.explain(&outcome, 0).unwrap();
    assert!(!explanation.kg_triples.is_empty());
    assert!(!explanation.xkg_triples.is_empty());
    assert!(!explanation.rules.is_empty());
}

/// User D: "What did Albert Einstein win a Nobel prize for?" — no KG
/// predicate exists; the token triple answers directly on the XKG.
#[test]
fn user_d_missing_predicate() {
    let sys = fixture_system();
    assert_eq!(
        top_answer(&sys, "AlbertEinstein 'won nobel for' ?x"),
        Some("'discovery of the photoelectric effect'".to_string())
    );
}

/// Rule 4: the 'lectured at' rewrite also yields Princeton for the plain
/// affiliation query, ranked below the exact IAS answer.
#[test]
fn rule_4_lectured_at_ranking() {
    let sys = fixture_system();
    let outcome = sys
        .query("AlbertEinstein affiliation ?x LIMIT 5")
        .unwrap();
    let names: Vec<String> = outcome
        .answers
        .iter()
        .filter_map(|a| a.key[0].1.map(|t| sys.store().display_term(t)))
        .collect();
    assert_eq!(names[0], "IAS", "exact answer first");
    assert!(
        names.contains(&"PrincetonUniversity".to_string()),
        "relaxed answer present: {names:?}"
    );
}

/// Figure 5's result-limit control: k truncates, and answers stay sorted.
#[test]
fn limit_and_order() {
    let sys = fixture_system();
    let outcome = sys
        .query("AlbertEinstein affiliation ?x LIMIT 1")
        .unwrap();
    assert_eq!(outcome.answers.len(), 1);
}

/// §5 auto-completion guides query formulation.
#[test]
fn autocompletion_over_fixture() {
    let sys = fixture_system();
    let completions: Vec<String> = sys
        .complete("Prince", 5)
        .into_iter()
        .map(|c| c.text)
        .collect();
    assert!(completions.contains(&"PrincetonUniversity".to_string()));
    let tokens: Vec<String> = sys
        .complete("won", 5)
        .into_iter()
        .map(|c| c.text)
        .collect();
    assert!(tokens.contains(&"won nobel for".to_string()));
}

/// §5 rule-invocation notices accompany relaxed results.
#[test]
fn rule_invocation_notices() {
    let sys = fixture_system();
    let outcome = sys.query("?x bornIn Germany").unwrap();
    let suggestions = sys.suggest(&outcome);
    assert!(
        suggestions
            .iter()
            .any(|s| matches!(s, trinit_core::Suggestion::RuleInvoked { structural: true, .. })),
        "structural rule 1 should be reported: {suggestions:?}"
    );
}

/// Figure 1 literal: the bornOn date is queryable as a literal term.
#[test]
fn literal_queries() {
    let sys = fixture_system();
    let outcome = sys.query("?x bornOn '1879-03-14'").unwrap();
    assert_eq!(outcome.answers.len(), 1);
    assert_eq!(
        top_answer(&sys, "?x bornOn '1879-03-14'"),
        Some("AlbertEinstein".to_string())
    );
}

/// All engines agree on the paper's exact-match queries.
#[test]
fn engines_agree_on_exact_fixture_queries() {
    let sys = fixture_system();
    for text in ["?x bornIn Ulm", "Ulm locatedIn ?x", "?x member IvyLeague"] {
        let exact = sys.run(sys.parse(text).unwrap(), Engine::Exact);
        let full = sys.run(sys.parse(text).unwrap(), Engine::FullExpansion);
        let inc = sys.run(sys.parse(text).unwrap(), Engine::IncrementalTopK);
        assert_eq!(exact.answers.len(), 1);
        assert_eq!(exact.answers[0].key, full.answers[0].key);
        assert_eq!(exact.answers[0].key, inc.answers[0].key);
    }
}
