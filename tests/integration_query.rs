//! Integration: parsing, execution engines, scoring, and top-k agreement
//! over a full generated system.

use trinit_core::worldgen::{CorpusConfig, EntityType, KgConfig, World, WorldConfig};
use trinit_core::{Engine, TrinitBuilder};

fn system() -> (World, trinit_core::Trinit) {
    let world = World::generate(WorldConfig::tiny(41).scaled(2.0));
    let sys =
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(41)).build();
    (world, sys)
}

#[test]
fn type_queries_enumerate_entities() {
    let (world, sys) = system();
    let outcome = sys.query("?x type university LIMIT 100").unwrap();
    assert_eq!(
        outcome.answers.len(),
        world.of_type(EntityType::University).len()
    );
}

#[test]
fn join_query_executes_across_strata() {
    let (_, sys) = system();
    // People and the country of their birth city: KG-only join.
    let outcome = sys
        .query("?x bornIn ?c . ?c locatedIn ?k LIMIT 200")
        .unwrap();
    assert!(!outcome.answers.is_empty());
    for a in &outcome.answers {
        assert_eq!(a.key.len(), 3);
    }
}

#[test]
fn ranking_is_sorted_and_bounded() {
    let (_, sys) = system();
    let outcome = sys.query("?x type person LIMIT 7").unwrap();
    assert!(outcome.answers.len() <= 7);
    assert!(outcome
        .answers
        .windows(2)
        .all(|w| w[0].score >= w[1].score));
    for a in &outcome.answers {
        assert!(a.score <= 1e-9, "log-probabilities are non-positive");
        assert!(a.score.is_finite());
    }
}

#[test]
fn incremental_topk_agrees_with_full_expansion_on_real_system() {
    let (world, sys) = system();
    let person = world.entity(world.of_type(EntityType::Person)[0]).resource.clone();
    for text in [
        format!("{person} affiliation ?x LIMIT 50"),
        format!("{person} 'studied under' ?x LIMIT 50"),
        "?x type league LIMIT 50".to_string(),
    ] {
        let q1 = sys.parse(&text).unwrap();
        let q2 = sys.parse(&text).unwrap();
        let inc = sys.run(q1, Engine::IncrementalTopK);
        let full = sys.run(q2, Engine::FullExpansion);
        // The engines explore slightly different rewriting spaces
        // (chained per-pattern rules vs bounded global sequences), so we
        // require agreement on the exact-match subset and score ordering
        // consistency for shared answers.
        for (a, b) in inc.answers.iter().zip(full.answers.iter()).take(3) {
            assert_eq!(a.key, b.key, "top answers agree for {text}");
            assert!((a.score - b.score).abs() < 1e-6, "scores agree for {text}");
        }
    }
}

#[test]
fn exact_engine_is_a_lower_bound() {
    let (world, sys) = system();
    let person = world.entity(world.of_type(EntityType::Person)[1]).resource.clone();
    let text = format!("{person} graduatedFrom ?x LIMIT 20");
    let exact = sys.run(sys.parse(&text).unwrap(), Engine::Exact);
    let relaxed = sys.run(sys.parse(&text).unwrap(), Engine::IncrementalTopK);
    assert!(relaxed.answers.len() >= exact.answers.len());
    for e in &exact.answers {
        assert!(
            relaxed.answers.iter().any(|r| r.key == e.key),
            "relaxation must not lose exact answers"
        );
    }
}

#[test]
fn unknown_vocabulary_is_graceful() {
    let (_, sys) = system();
    let outcome = sys.query("?x completelyUnknownPredicate ?y LIMIT 5").unwrap();
    assert!(outcome.answers.is_empty());
    let outcome = sys.query("NoSuchEntity type person").unwrap();
    assert!(outcome.answers.is_empty());
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    let (_, sys) = system();
    for bad in ["", "?x", "?x bornIn", "?x 'unterminated", "?x p o LIMIT x"] {
        assert!(sys.query(bad).is_err(), "{bad:?} should fail to parse");
    }
}

#[test]
fn metrics_reflect_engine_differences() {
    let (world, sys) = system();
    let person = world.entity(world.of_type(EntityType::Person)[0]).resource.clone();
    let text = format!("{person} affiliation ?x LIMIT 1");
    let inc = sys.run(sys.parse(&text).unwrap(), Engine::IncrementalTopK);
    let full = sys.run(sys.parse(&text).unwrap(), Engine::FullExpansion);
    assert!(
        inc.metrics.posting_lists_built <= full.metrics.posting_lists_built,
        "lazy evaluation must not build more lists ({} vs {})",
        inc.metrics.posting_lists_built,
        full.metrics.posting_lists_built
    );
}

#[test]
fn projection_controls_deduplication() {
    let (_, sys) = system();
    // Projecting only the person collapses multiple (person, city) rows.
    let all_vars = sys.query("?x bornIn ?c LIMIT 500").unwrap();
    let projected = sys
        .query("SELECT ?c WHERE ?x bornIn ?c LIMIT 500")
        .unwrap();
    assert!(projected.answers.len() <= all_vars.answers.len());
}
