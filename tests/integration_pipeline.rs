//! Integration: worldgen → KG projection → corpus → Open IE → XKG store.
//!
//! Exercises the full build pipeline across crates and checks the
//! invariants the downstream query layer depends on.

use trinit_core::worldgen::corpus::generate_corpus;
use trinit_core::worldgen::{
    alias_catalog, project_kg, CorpusConfig, EntityType, KgConfig, Relation, World, WorldConfig,
};
use trinit_core::xkg::{GraphTag, SlotPattern};
use trinit_core::TrinitBuilder;

fn build_system(seed: u64) -> (World, trinit_core::Trinit) {
    let world = World::generate(WorldConfig::tiny(seed).scaled(2.0));
    let system =
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(seed)).build();
    (world, system)
}

#[test]
fn pipeline_produces_both_strata_and_rules() {
    let (_, system) = build_system(3);
    let stats = system.stats();
    assert!(stats.kg_triples > 0);
    assert!(stats.xkg_triples > 0);
    assert!(stats.rules > 0);
    assert!(stats.ingest.sentences > 0);
    assert!(stats.ingest.kept > 0);
    assert!(stats.ingest.link_rate() > 0.2, "most arguments should link");
}

#[test]
fn kg_facts_are_loaded_verbatim() {
    let world = World::generate(WorldConfig::tiny(5));
    let kg = project_kg(&world, &KgConfig::default());
    let system =
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(5)).build();
    // Every projected KG fact must be findable in the store.
    for fact in kg.facts.iter().take(50) {
        let s = system.store().resource(&fact.subject);
        let p = system.store().resource(&fact.predicate);
        assert!(s.is_some(), "missing subject {}", fact.subject);
        assert!(p.is_some(), "missing predicate {}", fact.predicate);
        let o = if fact.object_is_literal {
            system.store().literal(&fact.object)
        } else {
            system.store().resource(&fact.object)
        };
        assert!(o.is_some(), "missing object {}", fact.object);
        let pattern = SlotPattern::new(s, p, o);
        assert_eq!(system.store().count(&pattern), 1, "{fact:?}");
    }
}

#[test]
fn text_only_relations_appear_only_in_xkg_stratum() {
    let (_, system) = build_system(7);
    // 'housed in'/'lectured at' style predicates are tokens; every triple
    // under a token predicate must be in the XKG stratum.
    let store = system.store();
    for (id, t) in store.iter() {
        if t.p.is_token() {
            assert_eq!(store.provenance(id).graph, GraphTag::Xkg);
            assert!(store.provenance(id).confidence <= 1.0);
            assert!(!store.provenance(id).sources.is_empty());
        }
    }
}

#[test]
fn dropped_facts_are_recoverable_from_text() {
    // With a large-enough corpus, at least one fact absent from the KG
    // must be recoverable via a token predicate in the XKG.
    let world = World::generate(WorldConfig::tiny(11).scaled(2.0));
    let kg = project_kg(&world, &KgConfig::default());
    let mut corpus = CorpusConfig::tiny(11);
    corpus.documents = 400;
    let system = TrinitBuilder::from_world(&world, &KgConfig::default(), &corpus).build();

    let mut recovered = 0;
    for (i, f) in world.facts.iter().enumerate() {
        if kg.included[i] || f.relation != Relation::AffiliatedWith {
            continue;
        }
        let subject = system.store().resource(&world.entity(f.subject).resource);
        let Some(subject) = subject else { continue };
        // Any token-predicate triple with this subject counts as textual
        // evidence reaching the store.
        let matches = system
            .store()
            .lookup(&SlotPattern::new(Some(subject), None, None));
        if matches
            .iter()
            .any(|&id| system.store().triple(id).p.is_token())
        {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "no dropped facts reached the XKG");
}

#[test]
fn alias_catalog_feeds_linking_ambiguity() {
    let world = World::generate(WorldConfig::tiny(13).scaled(3.0));
    let catalog = alias_catalog(&world);
    // Shared surnames must produce ambiguous aliases.
    let mut by_alias: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for e in &catalog {
        *by_alias.entry(e.alias.as_str()).or_insert(0) += 1;
    }
    assert!(
        by_alias.values().any(|&n| n > 1),
        "expected at least one ambiguous surface form"
    );
}

#[test]
fn corpus_is_pure_text() {
    let world = World::generate(WorldConfig::tiny(17));
    let kg = project_kg(&world, &KgConfig::default());
    let docs = generate_corpus(&world, &kg.included, &CorpusConfig::tiny(17));
    for d in &docs {
        assert!(d.id.starts_with("synthweb:doc-"));
        for s in &d.sentences {
            assert!(!s.contains("{s}") && !s.contains("{o}"), "{s}");
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let (_, a) = build_system(23);
    let (_, b) = build_system(23);
    assert_eq!(a.stats().kg_triples, b.stats().kg_triples);
    assert_eq!(a.stats().xkg_triples, b.stats().xkg_triples);
    assert_eq!(a.stats().rules, b.stats().rules);
}

#[test]
fn popular_entities_dominate_mentions() {
    let world = World::generate(WorldConfig::tiny(29).scaled(2.0));
    let kg = project_kg(&world, &KgConfig::default());
    let docs = generate_corpus(&world, &kg.included, &CorpusConfig::tiny(29));
    let text: String = docs
        .iter()
        .flat_map(|d| d.sentences.iter())
        .cloned()
        .collect::<Vec<_>>()
        .join(" ");
    let people = world.of_type(EntityType::Person);
    let head = world.entity(people[0]);
    let tail = world.entity(*people.last().unwrap());
    let count = |name: &str| text.matches(name).count();
    assert!(
        count(&head.name) + count(&head.aliases[1]) >= count(&tail.name),
        "Zipf head should be mentioned at least as often as the tail"
    );
}
