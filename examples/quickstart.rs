//! Quickstart: build a tiny XKG, ask a relaxed query, explain the answer.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use trinit_core::fixtures::{paper_rules, paper_store};
use trinit_core::Trinit;

fn main() {
    // The paper's running example: Figure 1 (KG) + Figure 3 (XKG
    // extension) + Figure 4 rules 1/3/4.
    let store = paper_store();
    let rules = paper_rules(&store);
    let system = Trinit::from_parts(store, rules);

    // User C's information need: "Ivy League university Einstein was
    // affiliated with." The KG alone returns nothing — Einstein's official
    // affiliation is the IAS, which is not an Ivy League member.
    let outcome = system
        .query("AlbertEinstein affiliation ?x . ?x member IvyLeague LIMIT 5")
        .expect("well-formed query");

    println!("answers:");
    for (i, answer) in outcome.answers.iter().enumerate() {
        let value = answer
            .key
            .iter()
            .filter_map(|(_, t)| t.map(|t| system.store().display_term(t)))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  {}. {value}  (log-score {:.3})", i + 1, answer.score);
    }

    // Relaxation rule 3 rewrote `affiliation` through the XKG's
    // 'housed in' token triple; the explanation shows the provenance.
    if let Some(explanation) = system.explain(&outcome, 0) {
        println!("\nexplanation of the top answer:\n{}", explanation.render());
    }

    println!("work done: {:?}", outcome.metrics);
}
