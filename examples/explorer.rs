//! Interactive exploratory-querying shell — a terminal stand-in for the
//! TriniT web UI of paper Figure 5/6.
//!
//! ```text
//! cargo run --release --example explorer
//! ```
//!
//! Commands:
//!   <query>                 run an extended triple-pattern query
//!   :explain <n>            explain answer n of the last query
//!   :complete <prefix>      auto-complete a term prefix
//!   :rule <p1> => <p2> <w>  add a user predicate-rewrite rule
//!   :quit                   exit

use std::io::{self, BufRead, Write};

use trinit_core::fixtures::{paper_rules, paper_store};
use trinit_core::{Engine, QueryOutcome, Session, Trinit};
use trinit_core::relax::{Rule, RuleProvenance};
use trinit_core::xkg::TermKind;

fn print_outcome(system: &Trinit, outcome: &QueryOutcome) {
    if outcome.answers.is_empty() {
        println!("(no answers — try :rule to add a relaxation)");
        return;
    }
    for (i, a) in outcome.answers.iter().enumerate() {
        let row = a
            .key
            .iter()
            .map(|(v, t)| {
                let name = outcome.query.var_name(*v);
                let value = t
                    .map(|t| system.store().display_term(t))
                    .unwrap_or_else(|| "-".to_string());
                format!("?{name} = {value}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let tag = if a.derivation.is_exact() { " " } else { "~" };
        println!("{:>3}.{tag} {row}   ({:.3})", i + 1, a.score);
    }
    for s in system.suggest(outcome) {
        println!("     note: {}", s.render());
    }
}

fn main() {
    let store = paper_store();
    let rules = paper_rules(&store);
    let system = Trinit::from_parts(store, rules);
    let mut session = Session::new(&system);
    let mut last: Option<QueryOutcome> = None;

    println!("TriniT explorer — paper fixture loaded ({} triples, {} rules)",
        system.stats().total_triples(), system.rules().len());
    println!("try:  AlbertEinstein affiliation ?x . ?x member IvyLeague");
    println!("      ?x bornIn Germany");
    println!("      AlbertEinstein 'won nobel for' ?x\n");

    let stdin = io::stdin();
    loop {
        print!("trinit> ");
        io::stdout().flush().ok();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if let Some(prefix) = line.strip_prefix(":complete ") {
            for c in system.complete(prefix.trim(), 8) {
                let kind = match c.kind {
                    TermKind::Resource => "resource",
                    TermKind::Token => "token",
                    TermKind::Literal => "literal",
                };
                println!("  {}  [{kind}]", c.text);
            }
            continue;
        }
        if let Some(n) = line.strip_prefix(":explain ") {
            let Ok(idx) = n.trim().parse::<usize>() else {
                println!("usage: :explain <answer number>");
                continue;
            };
            match last
                .as_ref()
                .and_then(|o| system.explain(o, idx.saturating_sub(1)))
            {
                Some(e) => print!("{}", e.render()),
                None => println!("no such answer"),
            }
            continue;
        }
        if let Some(spec) = line.strip_prefix(":rule ") {
            // Syntax: <p1> => <p2> <weight>
            let parts: Vec<&str> = spec.split("=>").collect();
            let (Some(lhs), Some(rest)) = (parts.first(), parts.get(1)) else {
                println!("usage: :rule <p1> => <p2> <weight>");
                continue;
            };
            let rest: Vec<&str> = rest.trim().rsplitn(2, ' ').collect();
            let (Some(w), Some(p2)) = (rest.first(), rest.get(1)) else {
                println!("usage: :rule <p1> => <p2> <weight>");
                continue;
            };
            let weight: f64 = w.parse().unwrap_or(0.5);
            let resolve = |name: &str| {
                let name = name.trim().trim_matches('\'');
                system
                    .store()
                    .resource(name)
                    .or_else(|| system.store().token(name))
            };
            match (resolve(lhs), resolve(p2)) {
                (Some(a), Some(b)) => {
                    session.add_rule(Rule::predicate_rewrite(
                        format!("user: {} => {}", lhs.trim(), p2.trim()),
                        a,
                        b,
                        weight,
                        RuleProvenance::UserDefined,
                    ));
                    println!("rule added ({} user rules)", session.user_rule_count());
                }
                _ => println!("unknown predicate(s)"),
            }
            continue;
        }
        match system.parse(line) {
            Ok(query) => {
                let outcome = session.run(query, Engine::IncrementalTopK);
                print_outcome(&system, &outcome);
                last = Some(outcome);
            }
            Err(e) => println!("{e}"),
        }
    }
}
