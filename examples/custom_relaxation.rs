//! The relaxation-operator plug-in API (paper §3): "TriniT has an API for
//! relaxation operators, which administrators and advanced users can use
//! to plug in their code for generating relaxation rules and their
//! weights."
//!
//! This example implements a custom operator — a naive string-similarity
//! relaxer that connects predicates whose labels share a word stem — and
//! composes it with the built-in XKG co-occurrence miner.
//!
//! ```text
//! cargo run --release --example custom_relaxation
//! ```

use trinit_core::relax::{
    CooccurrenceOperator, OperatorRegistry, RelaxationOperator, Rule, RuleProvenance,
};
use trinit_core::xkg::{StoreStats, XkgStore};
use trinit_core::worldgen::{CorpusConfig, KgConfig, World, WorldConfig};
use trinit_core::{Trinit, TrinitBuilder};

/// Custom operator: predicates whose labels share a token of length ≥ 4
/// are considered related, weighted by Jaccard overlap of their label
/// words. (A toy stand-in for the statistical/semantic relatedness
/// measures the paper cites, e.g. ESA.)
struct LabelSimilarityOperator {
    min_weight: f64,
}

fn label_words(label: &str) -> Vec<String> {
    label
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| w.len() >= 4)
        .map(|w| w.to_lowercase())
        .collect()
}

impl RelaxationOperator for LabelSimilarityOperator {
    fn name(&self) -> &str {
        "label-similarity"
    }

    fn generate(&self, store: &XkgStore) -> Vec<Rule> {
        let stats = StoreStats::compute(store);
        let preds: Vec<_> = stats
            .predicates()
            .iter()
            .filter_map(|&p| store.dict().resolve(p).map(|label| (p, label_words(label))))
            .collect();
        let mut rules = Vec::new();
        for (i, (p1, w1)) in preds.iter().enumerate() {
            for (p2, w2) in preds.iter().skip(i + 1) {
                let shared = w1.iter().filter(|w| w2.contains(w)).count();
                if shared == 0 {
                    continue;
                }
                let union = w1.len() + w2.len() - shared;
                let weight = shared as f64 / union.max(1) as f64;
                if weight < self.min_weight {
                    continue;
                }
                let label = |a, b| {
                    format!(
                        "label-sim: {} => {}",
                        store.display_term(a),
                        store.display_term(b)
                    )
                };
                rules.push(Rule::predicate_rewrite(
                    label(*p1, *p2),
                    *p1,
                    *p2,
                    weight,
                    RuleProvenance::UserDefined,
                ));
                rules.push(Rule::predicate_rewrite(
                    label(*p2, *p1),
                    *p2,
                    *p1,
                    weight,
                    RuleProvenance::UserDefined,
                ));
            }
        }
        rules
    }
}

fn main() {
    let world = World::generate(WorldConfig::tiny(99).scaled(2.0));
    let mut builder =
        TrinitBuilder::from_world(&world, &KgConfig::default(), &CorpusConfig::tiny(5));
    // Keep only manual composition: disable the default miners so the
    // registry below is the single source of rules.
    builder.options_mut().mine_cooccurrence = false;
    builder.options_mut().mine_granularity = false;
    let system: Trinit = builder.build();

    // Compose the built-in miner with the custom operator explicitly.
    let mut registry = OperatorRegistry::new();
    registry.register(Box::new(CooccurrenceOperator::default()));
    registry.register(Box::new(LabelSimilarityOperator { min_weight: 0.3 }));
    let rules = registry.build_rules(system.store());

    println!("operators: {:?}", registry.names());
    println!("rules generated: {}", rules.len());
    println!("\nsample rules:");
    for (_, rule) in rules.iter().take(12) {
        println!("  [{:.2}] {}  ({:?})", rule.weight, rule.label, rule.provenance);
    }

    // Run one query with the composed rule set via a throwaway system.
    let person = world
        .of_type(trinit_core::worldgen::EntityType::Person)
        .first()
        .map(|&id| world.entity(id).resource.clone())
        .expect("world has people");
    let query = format!("{person} affiliation ?x LIMIT 5");
    let parsed = system.parse(&query).expect("parses");
    let outcome = system.run_with_rules(parsed, trinit_core::Engine::IncrementalTopK, &rules);
    println!("\n{query}");
    println!(
        "answers: {}   relaxations opened: {}",
        outcome.answers.len(),
        outcome.metrics.relaxations_opened
    );
}
