//! Join-intensive entity-relationship search over a synthetic web-scale
//! world — the "advanced information needs of journalists, market
//! analysts, and other knowledge workers" scenario of paper §5.
//!
//! Builds a full system from a generated world (incomplete KG + Open IE
//! over raw text), then runs multi-pattern queries "that connect multiple
//! entities by their relationships", where "no single Web page has the
//! contents to match all query conditions".
//!
//! ```text
//! cargo run --release --example journalist
//! ```

use trinit_core::TrinitBuilder;
use trinit_core::worldgen::{CorpusConfig, KgConfig, World, WorldConfig};

fn main() {
    println!("generating world + incomplete KG + web corpus ...");
    let world = World::generate(WorldConfig::demo(7).scaled(0.15));
    let mut corpus = CorpusConfig::demo(8);
    corpus.documents = 1200;
    let system = TrinitBuilder::from_world(&world, &KgConfig::default(), &corpus).build();
    let stats = system.stats();
    println!(
        "built XKG: {} KG + {} Open IE = {} distinct triples, {} mined rules\n",
        stats.kg_triples,
        stats.xkg_triples,
        stats.total_triples(),
        stats.rules
    );

    // Pick a real league and a real country from the generated world so
    // the investigation has answers.
    let league = world
        .of_type(trinit_core::worldgen::EntityType::League)
        .first()
        .map(|&id| world.entity(id).resource.clone())
        .expect("world has a league");
    let country = world
        .of_type(trinit_core::worldgen::EntityType::Country)
        .first()
        .map(|&id| world.entity(id).resource.clone())
        .expect("world has a country");

    let investigations = [
        (
            "prize winners and where they studied".to_string(),
            "?x wonPrize ?p . ?x graduatedFrom ?u LIMIT 10".to_string(),
        ),
        (
            format!("people affiliated with {league} members"),
            format!("?x affiliation ?u . ?u member {league} LIMIT 10"),
        ),
        (
            format!("who was born in {country} (country-level ask)"),
            format!("?x bornIn {country} LIMIT 10"),
        ),
        (
            "advisors of people employed in industry".to_string(),
            "?x worksFor ?c . ?x 'studied under' ?a LIMIT 10".to_string(),
        ),
    ];

    for (need, query) in investigations {
        println!("## {need}");
        println!("   {query}");
        match system.query(&query) {
            Ok(outcome) => {
                if outcome.answers.is_empty() {
                    println!("   (no answers)");
                }
                for a in outcome.answers.iter().take(5) {
                    let row = a
                        .key
                        .iter()
                        .map(|(v, t)| {
                            let name = outcome.query.var_name(*v);
                            let value = t
                                .map(|t| system.store().display_term(t))
                                .unwrap_or_else(|| "-".to_string());
                            format!("?{name}={value}")
                        })
                        .collect::<Vec<_>>()
                        .join("  ");
                    let tag = if a.derivation.is_exact() {
                        "exact"
                    } else {
                        "relaxed"
                    };
                    println!("   [{tag}] {row}");
                }
                for s in system.suggest(&outcome).into_iter().take(2) {
                    println!("   note: {}", s.render());
                }
            }
            Err(e) => println!("   {e}"),
        }
        println!();
    }
}
