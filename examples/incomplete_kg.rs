//! KG incompleteness end-to-end: watch a fact disappear from the KG and
//! come back through the XKG extension (paper §1/§2).
//!
//! Generates one world twice: once projected into a *complete* KG and
//! once into a heavily incomplete one, then shows how many benchmark-style
//! affiliation queries each setting can answer — without and with the
//! Open IE extension + relaxation.
//!
//! ```text
//! cargo run --release --example incomplete_kg
//! ```

use trinit_core::worldgen::{
    project_kg, CorpusConfig, EntityType, KgConfig, World, WorldConfig,
};
use trinit_core::{Engine, TrinitBuilder};

fn answered(system: &trinit_core::Trinit, engine: Engine, queries: &[String]) -> usize {
    queries
        .iter()
        .filter(|q| {
            system
                .parse(q)
                .map(|parsed| !system.run(parsed, engine).answers.is_empty())
                .unwrap_or(false)
        })
        .count()
}

fn main() {
    let world = World::generate(WorldConfig::demo(21).scaled(0.1));
    let people = world.of_type(EntityType::Person);
    let queries: Vec<String> = people
        .iter()
        .take(40)
        .map(|&id| format!("{} affiliation ?x LIMIT 5", world.entity(id).resource))
        .collect();

    println!("40 affiliation queries against three settings:\n");
    for (label, coverage, with_corpus) in [
        ("complete KG, no text", 1.0, false),
        ("incomplete KG (40% coverage), no text", 0.4, false),
        ("incomplete KG (40% coverage) + XKG + relaxation", 0.4, true),
    ] {
        let kg_cfg = KgConfig {
            seed: 5,
            coverage_scale: coverage,
        };
        let mut corpus = CorpusConfig::tiny(9);
        if with_corpus {
            corpus.documents = 800;
        } else {
            corpus.documents = 0;
        }
        let system = TrinitBuilder::from_world(&world, &kg_cfg, &corpus).build();
        let engine = if with_corpus {
            Engine::IncrementalTopK
        } else {
            Engine::Exact
        };
        let n = answered(&system, engine, &queries);
        println!(
            "{label:<48} answered {n:>2}/40   (store: {} triples, {} rules)",
            system.stats().total_triples(),
            system.stats().rules,
        );
        // Keep the incomplete-KG projection around for curiosity stats.
        if !with_corpus && coverage < 1.0 {
            let projection = project_kg(&world, &kg_cfg);
            let dropped = projection.included.iter().filter(|&&b| !b).count();
            println!(
                "{:<48} ({} of {} world facts absent from this KG)",
                "", dropped,
                projection.included.len()
            );
        }
    }

    println!(
        "\nThe third row is the paper's thesis: extraction from text plus\n\
         query relaxation recovers answers the curated KG lost."
    );
}
