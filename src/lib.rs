//! Umbrella crate for the TriniT reproduction.
//!
//! Hosts the workspace-level integration tests (`tests/`) and runnable
//! examples (`examples/`); all functionality lives in the sub-crates and
//! is re-exported through [`trinit_core`].

#![warn(missing_docs)]

pub use trinit_core::*;
