//! E1 bench: end-to-end benchmark-query throughput of the full TriniT
//! system (the workload behind the paper's NDCG@5 table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::Engine;
use trinit_eval::{build_full_system, build_world, generate_benchmark, BenchmarkConfig, EvalConfig};

fn bench_quality_workload(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 4,
    };
    let (world, kg) = build_world(&cfg);
    let system = build_full_system(&world, &cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 1,
            per_category: cfg.per_category,
        },
    );
    let parsed: Vec<_> = queries
        .iter()
        .map(|q| system.parse(&q.text).expect("benchmark parses"))
        .collect();

    let mut group = c.benchmark_group("e1_quality_workload");
    group.sample_size(10);
    for (name, engine) in [
        ("trinit_topk", Engine::IncrementalTopK),
        ("exact_baseline", Engine::Exact),
    ] {
        group.bench_function(BenchmarkId::new("query_set", name), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &parsed {
                    let outcome = system.run(q.clone(), engine);
                    total += outcome.answers.len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality_workload);
criterion_main!(benches);
