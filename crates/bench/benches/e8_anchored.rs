//! E8 bench: anchored (subject/object-bound) pattern serving.
//!
//! The controlled before/after behind `BENCH_e8.json`: the same
//! anchored-heavy lookups served by the precomputed anchored posting
//! strata (`PostingList::build` — borrowed slices for s-/o-bound
//! shapes, one-allocation group filters for sp/op) versus the pre-index
//! materialize-and-sort path (`PostingList::build_by_scan`, the seed
//! behaviour kept as the reference implementation). Both sides run in
//! one binary over one store build, so the comparison is apples to
//! apples on any machine.
//!
//! A second group pushes an anchored-heavy top-k query workload through
//! the monolithic engine and a 4-shard `ShardedExecutor` — the
//! engine-level surface where sharding used to pay the
//! materialize-per-shard-per-query cost recorded in `BENCH_e7.json`'s
//! work ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::QueryBuilder;
use trinit_relax::{QTerm, RuleSet};
use trinit_shard::{SeedMode, ShardedExecutor, ShardedStore};
use trinit_xkg::{PostingList, SlotPattern, XkgBuilder, XkgStore};

const SUBJECTS: u32 = 3000;
const PREDICATES: u32 = 12;
const HUBS: u32 = 40;

/// An anchored-heavy world: every subject carries one fact per
/// predicate, objects concentrate on a small hub set (so object groups
/// are large), and weights vary so sorting is not a no-op.
fn builder() -> XkgBuilder {
    let mut b = XkgBuilder::new();
    let src = b.intern_source("doc");
    for s in 0..SUBJECTS {
        for p in 0..PREDICATES {
            let subj = b.dict_mut().resource(&format!("s{s}"));
            let pred = b.dict_mut().resource(&format!("p{p}"));
            let obj = b.dict_mut().resource(&format!("hub{}", (s * 7 + p) % HUBS));
            let conf = 0.3 + 0.6 * (((s + p * 31) % 97) as f32 / 97.0);
            b.add_extracted(subj, pred, obj, conf, src);
        }
    }
    b
}

/// The anchored lookup mix: s-only, o-only, sp, and op shapes over a
/// rotating set of anchors.
fn anchored_patterns(store: &XkgStore) -> Vec<SlotPattern> {
    let mut out = Vec::new();
    for i in 0..60u32 {
        let s = store.resource(&format!("s{}", (i * 97) % SUBJECTS)).unwrap();
        let p = store.resource(&format!("p{}", i % PREDICATES)).unwrap();
        let o = store.resource(&format!("hub{}", i % HUBS)).unwrap();
        out.push(SlotPattern::new(Some(s), None, None));
        out.push(SlotPattern::new(None, None, Some(o)));
        out.push(SlotPattern::with_sp(s, p));
        out.push(SlotPattern::with_po(p, o));
    }
    out
}

fn bench_anchored_lists(c: &mut Criterion) {
    let store = builder().build();
    let patterns = anchored_patterns(&store);

    let mut group = c.benchmark_group("e8_anchored");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("list", "indexed"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for pat in &patterns {
                let list = PostingList::build(&store, pat);
                acc += list.len() + list.peek_prob().is_some() as usize;
            }
            acc
        })
    });
    group.bench_function(BenchmarkId::new("list", "scan"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for pat in &patterns {
                let list = PostingList::build_by_scan(&store, pat);
                acc += list.len() + list.peek_prob().is_some() as usize;
            }
            acc
        })
    });
    group.finish();
}

fn bench_anchored_topk(c: &mut Criterion) {
    let store = builder().build();
    let rules = RuleSet::new();
    let cfg = TopkConfig::default();
    // Anchored-heavy query set: entity-bound relationship lookups (sp),
    // plus pure subject and object anchors.
    let queries: Vec<_> = (0..30u32)
        .map(|i| {
            let mut qb = QueryBuilder::new(&store);
            match i % 3 {
                0 => qb
                    .pattern_r_r_v(
                        &format!("s{}", (i * 131) % SUBJECTS),
                        &format!("p{}", i % PREDICATES),
                        "y",
                    )
                    .limit(10)
                    .build(),
                1 => {
                    let s = QTerm::Term(qb.resource(&format!("s{}", (i * 131) % SUBJECTS)));
                    let pv = QTerm::Var(qb.var("p"));
                    let y = QTerm::Var(qb.var("y"));
                    qb.pattern(s, pv, y).limit(10).build()
                }
                _ => {
                    let x = QTerm::Var(qb.var("x"));
                    let pv = QTerm::Var(qb.var("p"));
                    let o = QTerm::Term(qb.resource(&format!("hub{}", i % HUBS)));
                    qb.pattern(x, pv, o).limit(10).build()
                }
            }
        })
        .collect();

    let mut group = c.benchmark_group("e8_anchored");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("topk", "monolithic"), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| topk::run(&store, q, &rules, &cfg).0.len())
                .sum::<usize>()
        })
    });

    let sharded = ShardedStore::build(builder(), 4);
    let exec = ShardedExecutor::new(&sharded);
    group.bench_function(BenchmarkId::new("topk", "sharded4"), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| exec.run(q, &rules, &cfg, SeedMode::Off).answers.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_anchored_lists, bench_anchored_topk);
criterion_main!(benches);
