//! E9 bench: the staged-pipeline payoffs — work-stealing batch
//! scheduling vs the fixed pool, and ε-approximate top-k pull
//! reduction.
//!
//! **Batch scheduling** pushes the E5 query set (k sweep) through a
//! sharded system twice per shard count: once through the fixed
//! [`QueryPool`](trinit_shard::QueryPool) path
//! (`run_batch_with_workers`, seed phase skipped — the PR-3 batch
//! surface) and once through the work-stealing seed-task scheduler
//! (`run_batch_stealing`, every query's per-shard seeds spread across
//! the worker set, merge driven by the last seed finisher). On a
//! single-core runner the numbers read as *total work* — the stealing
//! path deliberately spends extra seed work to buy per-query latency
//! and a tighter merge threshold, so its single-core ratio quantifies
//! that investment; on a multi-core runner the same run reads as
//! wall-clock. `E9_METRICS` lines report each mode's engine counters
//! (pulls, postings scanned, seed steals) for the work-level
//! comparison.
//!
//! **ε mode** runs the same query set monolithically at ε ∈ {0, 0.01,
//! 0.05} with k = 50 (above most answer counts, the regime where the
//! exact engine must drain tails that can no longer matter) and
//! reports total pulls per ε as `E9_PULLS` lines plus a timed sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::Engine;
use trinit_eval::{
    build_full_system, build_sharded_system, build_world, generate_benchmark, BenchmarkConfig,
    EvalConfig,
};
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::Query;

fn bench_steal_vs_pool(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );

    let mut counts = vec![2usize, 4, 8];
    if std::env::var("E9_ORDER").as_deref() == Ok("rev") {
        counts.reverse();
    }

    let mut group = c.benchmark_group("e9_pipeline");
    group.sample_size(10);
    for &shards in &counts {
        let system = build_sharded_system(&world, &cfg, shards);
        let batch: Vec<Query> = [1usize, 5, 10, 50]
            .into_iter()
            .flat_map(|k| {
                queries.iter().map(move |q| (q, k)).map(|(q, k)| {
                    let mut parsed = system.parse(&q.text).expect("benchmark queries parse");
                    parsed.k = k;
                    parsed
                })
            })
            .collect();
        // Work-level counters per mode, printed once for BENCH_e9.json.
        for (mode, outcomes) in [
            (
                "pool",
                system.run_batch_with_workers(batch.clone(), Engine::IncrementalTopK, shards),
            ),
            (
                "steal",
                system.run_batch_stealing(batch.clone(), Engine::IncrementalTopK, shards),
            ),
        ] {
            let outcomes: Vec<_> = outcomes
                .iter()
                .map(|o| o.as_ref().expect("no worker panicked"))
                .collect();
            let pulls: usize = outcomes.iter().map(|o| o.metrics.pulls).sum();
            let scanned: usize = outcomes.iter().map(|o| o.metrics.postings_scanned).sum();
            let steals: usize = outcomes.iter().map(|o| o.metrics.seed_steals).sum();
            println!(
                "E9_METRICS {{\"shards\": {shards}, \"mode\": \"{mode}\", \"pulls\": {pulls}, \
                 \"postings_scanned\": {scanned}, \"seed_steals\": {steals}}}"
            );
        }
        group.bench_function(BenchmarkId::new("batch_pool", shards), |b| {
            b.iter(|| {
                let outcomes = system.run_batch_with_workers(
                    batch.clone(),
                    Engine::IncrementalTopK,
                    shards,
                );
                outcomes
                    .iter()
                    .map(|o| o.as_ref().expect("no worker panicked").answers.len())
                    .sum::<usize>()
            })
        });
        group.bench_function(BenchmarkId::new("batch_steal", shards), |b| {
            b.iter(|| {
                let outcomes =
                    system.run_batch_stealing(batch.clone(), Engine::IncrementalTopK, shards);
                outcomes
                    .iter()
                    .map(|o| o.as_ref().expect("no worker panicked").answers.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_epsilon_pulls(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );
    let system = build_full_system(&world, &cfg);
    let store = system.store();
    let rules = system.rules();
    let parsed: Vec<Query> = queries
        .iter()
        .filter_map(|q| system.parse(&q.text).ok())
        .map(|mut q| {
            q.k = 50;
            q
        })
        .collect();

    let mut group = c.benchmark_group("e9_pipeline");
    group.sample_size(10);
    for eps in [0.0f64, 0.01, 0.05] {
        let topk_cfg = TopkConfig {
            epsilon: eps,
            ..TopkConfig::default()
        };
        let (pulls, cutoffs): (usize, usize) = parsed
            .iter()
            .map(|q| {
                let (_, m) = topk::run(store, q, rules, &topk_cfg);
                (m.pulls, m.approx_cutoffs)
            })
            .fold((0, 0), |(p, c), (dp, dc)| (p + dp, c + dc));
        println!(
            "E9_PULLS {{\"epsilon\": {eps}, \"pulls\": {pulls}, \"approx_cutoffs\": {cutoffs}}}"
        );
        group.bench_function(BenchmarkId::new("topk_eps", eps), |b| {
            b.iter(|| {
                parsed
                    .iter()
                    .map(|q| topk::run(store, q, rules, &topk_cfg).0.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steal_vs_pool, bench_epsilon_pulls);
criterion_main!(benches);
