//! E2 bench: XKG construction — world generation, incomplete-KG
//! projection, Open IE ingestion, and index build, at two scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::worldgen::corpus::generate_corpus;
use trinit_core::worldgen::{project_kg, CorpusConfig, KgConfig, World, WorldConfig};
use trinit_core::TrinitBuilder;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_build");
    group.sample_size(10);

    for scale in [0.05f64, 0.1] {
        group.bench_function(BenchmarkId::new("world_generate", format!("{scale}")), |b| {
            b.iter(|| World::generate(WorldConfig::demo(7).scaled(scale)))
        });

        let world = World::generate(WorldConfig::demo(7).scaled(scale));
        group.bench_function(BenchmarkId::new("kg_projection", format!("{scale}")), |b| {
            b.iter(|| project_kg(&world, &KgConfig::default()))
        });

        let kg = project_kg(&world, &KgConfig::default());
        let mut corpus_cfg = CorpusConfig::tiny(9);
        corpus_cfg.documents = (400.0 * scale / 0.05) as usize;
        group.bench_function(BenchmarkId::new("corpus_render", format!("{scale}")), |b| {
            b.iter(|| generate_corpus(&world, &kg.included, &corpus_cfg))
        });

        group.bench_function(
            BenchmarkId::new("full_system_build", format!("{scale}")),
            |b| {
                b.iter(|| {
                    TrinitBuilder::from_world(&world, &KgConfig::default(), &corpus_cfg).build()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
