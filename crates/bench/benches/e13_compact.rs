//! E13 bench: compact segment layout — bytes/triple and serve latency.
//!
//! Two claims back `BENCH_e13.json`:
//!
//! 1. **Storage**: across a worldgen scale sweep (demo ≈12k triples up
//!    to the million preset ≈1M triples with `E13_FULL=1`), the packed
//!    layout's index bytes/triple — the share the
//!    [`SegmentLayout`](trinit_xkg::SegmentLayout) choice controls:
//!    permutation key columns, posting strata, directories — shrinks
//!    ≥2.5× versus flat. `E13_STORAGE` lines report exact per-structure
//!    byte accounting from `XkgStore::storage_bytes` plus freeze times.
//!
//! 2. **Serve**: the packed layout serves the E5 path (governed
//!    monolithic top-k over the eval benchmark query set) and the E8
//!    path (anchored posting-list builds) within noise of flat.
//!    `E13_AB` lines report interleaved A/B medians — rounds of
//!    (flat sweep, packed sweep) with the within-round order flipped
//!    every round — and the criterion groups give conventional per-mode
//!    timings, order-alternated across runs via `E13_ORDER=rev`.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::{Trinit, TrinitBuilder, SESSION_CACHE_CAPACITY};
use trinit_eval::{build_world, generate_benchmark, BenchmarkConfig, EvalConfig};
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::{Query, QueryBuilder, SharedPostingCache};
use trinit_relax::{QTerm, RuleSet};
use trinit_worldgen::{Obj, World, WorldConfig};
use trinit_xkg::{PostingList, SegmentLayout, SlotPattern, XkgBuilder, XkgStore};

/// Loads a ground-truth world straight into an [`XkgBuilder`]: every
/// fact becomes a triple, one third through the curated-KG stratum and
/// the rest as extractions with deterministically varied confidence, so
/// the quantized weight column sees realistic non-constant weights.
fn world_builder(world: &World) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    let src = b.intern_source("world");
    for (i, f) in world.facts.iter().enumerate() {
        let s = &world.entity(f.subject).resource;
        let spec = f.relation.spec();
        let p = spec.kg_predicate.unwrap_or("mentionedWith");
        match &f.object {
            Obj::Literal(text) => {
                b.add_kg_literal(s, p, text);
            }
            Obj::Entity(e) => {
                let o = &world.entity(*e).resource;
                if i % 3 == 0 {
                    b.add_kg_resources(s, p, o);
                } else {
                    let sid = b.dict_mut().resource(s);
                    let pid = b.dict_mut().resource(p);
                    let oid = b.dict_mut().resource(o);
                    let conf = 0.3 + 0.6 * ((i % 101) as f32 / 101.0);
                    b.add_extracted(sid, pid, oid, conf, src);
                }
            }
        }
    }
    b
}

/// The scale sweep: demo (~12k triples), demo×8 (~100k), and with
/// `E13_FULL=1` the million preset (~1M). The small scales keep the CI
/// smoke cheap; the full sweep is what `BENCH_e13.json` records.
fn storage_sweep() {
    let mut scales = vec![
        ("demo_12k", WorldConfig::demo(42)),
        ("mid_100k", WorldConfig::demo(42).scaled(8.0)),
    ];
    if std::env::var("E13_FULL").as_deref() == Ok("1") {
        scales.push(("million_1m", WorldConfig::million(42)));
    }
    for (name, cfg) in scales {
        let world = World::generate(cfg);
        let t0 = Instant::now();
        let flat = world_builder(&world).build();
        let flat_build_ns = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        let packed = world_builder(&world).build_with(SegmentLayout::Packed);
        let packed_build_ns = t0.elapsed().as_nanos() as u64;

        let triples = flat.len();
        assert_eq!(triples, packed.len());
        let fb = flat.storage_bytes();
        let pb = packed.storage_bytes();
        println!(
            "E13_STORAGE {{\"world\": \"{name}\", \"triples\": {triples}, \
             \"flat_index_bytes\": {}, \"packed_index_bytes\": {}, \
             \"flat_index_bpt\": {:.1}, \"packed_index_bpt\": {:.1}, \
             \"index_reduction\": {:.2}, \
             \"flat_total_bytes\": {}, \"packed_total_bytes\": {}, \
             \"total_reduction\": {:.2}, \
             \"flat_build_ns\": {flat_build_ns}, \"packed_build_ns\": {packed_build_ns}}}",
            fb.index_bytes(),
            pb.index_bytes(),
            fb.bytes_per_triple(triples),
            pb.bytes_per_triple(triples),
            fb.index_bytes() as f64 / pb.index_bytes().max(1) as f64,
            fb.total(),
            pb.total(),
            fb.total() as f64 / pb.total().max(1) as f64,
        );
        println!(
            "E13_BREAKDOWN {{\"world\": \"{name}\", \
             \"flat\": {{\"perms\": {}, \"perm_dirs\": {}, \"strata\": {}, \"strata_dirs\": {}}}, \
             \"packed\": {{\"perms\": {}, \"perm_dirs\": {}, \"strata\": {}, \"strata_dirs\": {}}}, \
             \"payload\": {{\"dict\": {}, \"triples\": {}, \"provenance\": {}}}}}",
            fb.permutations,
            fb.permutation_directories,
            fb.posting_strata,
            fb.posting_directories,
            pb.permutations,
            pb.permutation_directories,
            pb.posting_strata,
            pb.posting_directories,
            fb.dict,
            fb.triples,
            fb.provenance,
        );
    }
}

fn build_system(world: &World, cfg: &EvalConfig, layout: SegmentLayout) -> Trinit {
    let mut builder = TrinitBuilder::from_world(world, &cfg.kg_config(), &cfg.corpus_config());
    builder.options_mut().layout(layout);
    builder.build()
}

/// The E8-style anchored lookup mix over the eval system's store:
/// s-only, o-only, sp and po shapes anchored at world entities that
/// survived KG projection.
fn anchored_patterns(world: &World, store: &XkgStore) -> Vec<SlotPattern> {
    let mut out = Vec::new();
    let people = world.of_type(trinit_worldgen::EntityType::Person);
    let unis = world.of_type(trinit_worldgen::EntityType::University);
    for i in 0..120usize {
        let person = &world.entity(people[(i * 37) % people.len()]).resource;
        let uni = &world.entity(unis[(i * 13) % unis.len()]).resource;
        let (Some(s), Some(o)) = (store.resource(person), store.resource(uni)) else {
            continue;
        };
        out.push(SlotPattern::new(Some(s), None, None));
        out.push(SlotPattern::new(None, None, Some(o)));
        if let Some(p) = store.resource("bornIn") {
            out.push(SlotPattern::with_sp(s, p));
        }
        if let Some(p) = store.resource("graduatedFrom") {
            out.push(SlotPattern::with_po(p, o));
        }
    }
    out
}

const SUBJECTS: u32 = 3000;
const PREDICATES: u32 = 12;
const HUBS: u32 = 40;

/// The E8 anchored-heavy synthetic store: one fact per (subject,
/// predicate), objects concentrated on a hub set, varied weights.
fn anchored_store_builder() -> XkgBuilder {
    let mut b = XkgBuilder::new();
    let src = b.intern_source("doc");
    for s in 0..SUBJECTS {
        for p in 0..PREDICATES {
            let subj = b.dict_mut().resource(&format!("s{s}"));
            let pred = b.dict_mut().resource(&format!("p{p}"));
            let obj = b.dict_mut().resource(&format!("hub{}", (s * 7 + p) % HUBS));
            let conf = 0.3 + 0.6 * (((s + p * 31) % 97) as f32 / 97.0);
            b.add_extracted(subj, pred, obj, conf, src);
        }
    }
    b
}

/// The E8 anchored-heavy top-k query mix: sp lookups plus pure subject
/// and object anchors, k = 10.
fn anchored_queries(store: &XkgStore) -> Vec<Query> {
    (0..30u32)
        .map(|i| {
            let mut qb = QueryBuilder::new(store);
            match i % 3 {
                0 => qb
                    .pattern_r_r_v(
                        &format!("s{}", (i * 131) % SUBJECTS),
                        &format!("p{}", i % PREDICATES),
                        "y",
                    )
                    .limit(10)
                    .build(),
                1 => {
                    let s = QTerm::Term(qb.resource(&format!("s{}", (i * 131) % SUBJECTS)));
                    let pv = QTerm::Var(qb.var("p"));
                    let y = QTerm::Var(qb.var("y"));
                    qb.pattern(s, pv, y).limit(10).build()
                }
                _ => {
                    let x = QTerm::Var(qb.var("x"));
                    let pv = QTerm::Var(qb.var("p"));
                    let o = QTerm::Term(qb.resource(&format!("hub{}", i % HUBS)));
                    qb.pattern(x, pv, o).limit(10).build()
                }
            }
        })
        .collect()
}

fn median(v: &mut [u64]) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Interleaved A/B over two closures: 51 rounds of (a, b) with the
/// within-round order flipped every round so warm-up and clock drift
/// hit both sides symmetrically.
fn ab_medians(mut a: impl FnMut() -> u64, mut b: impl FnMut() -> u64) -> (u64, u64) {
    a();
    b();
    let rounds = 51usize;
    let (mut a_ns, mut b_ns) = (Vec::new(), Vec::new());
    for round in 0..rounds {
        if round % 2 == 0 {
            a_ns.push(a());
            b_ns.push(b());
        } else {
            b_ns.push(b());
            a_ns.push(a());
        }
    }
    (median(&mut a_ns), median(&mut b_ns))
}

fn layouts() -> Vec<(&'static str, SegmentLayout)> {
    let mut layouts = vec![
        ("flat", SegmentLayout::Flat),
        ("packed", SegmentLayout::Packed),
    ];
    if std::env::var("E13_ORDER").as_deref() == Ok("rev") {
        layouts.reverse();
    }
    layouts
}

fn bench_compact(c: &mut Criterion) {
    storage_sweep();

    // The E5/E12 eval setting: world seed 42, scale 0.08, 15 queries.
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );
    let systems: Vec<(&str, Trinit)> = layouts()
        .into_iter()
        .map(|(name, layout)| (name, build_system(&world, &cfg, layout)))
        .collect();
    let topk_cfg = TopkConfig::default();

    let mut group = c.benchmark_group("e13_compact");
    group.sample_size(10);

    // E5 serve path: governed monolithic top-k, k = 10, both layouts.
    let sweeps: Vec<(&str, Vec<Query>, &Trinit)> = systems
        .iter()
        .map(|(name, system)| {
            let parsed: Vec<Query> = queries
                .iter()
                .filter_map(|q| system.parse(&q.text).ok())
                .map(|mut q| {
                    q.k = 10;
                    q
                })
                .collect();
            (*name, parsed, system)
        })
        .collect();
    let run_e5 = |idx: usize| -> u64 {
        let (_, parsed, system) = &sweeps[idx];
        let t0 = Instant::now();
        let total: usize = parsed
            .iter()
            .map(|q| {
                topk::run_governed(system.store(), q, system.rules(), &topk_cfg, None)
                    .answers
                    .len()
            })
            .sum();
        std::hint::black_box(total);
        t0.elapsed().as_nanos() as u64
    };
    let (a_med, b_med) = ab_medians(|| run_e5(0), || run_e5(1));
    println!(
        "E13_AB {{\"path\": \"e5_topk\", \"rounds\": 51, \"queries\": {}, \
         \"{}_median_ns\": {a_med}, \"{}_median_ns\": {b_med}, \"delta_pct\": {:.2}}}",
        sweeps[0].1.len(),
        sweeps[0].0,
        sweeps[1].0,
        (b_med as f64 / a_med as f64 - 1.0) * 100.0
    );
    for (name, parsed, system) in &sweeps {
        group.bench_function(BenchmarkId::new("e5_topk", *name), |bch| {
            bch.iter(|| {
                parsed
                    .iter()
                    .map(|q| {
                        topk::run_governed(system.store(), q, system.rules(), &topk_cfg, None)
                            .answers
                            .len()
                    })
                    .sum::<usize>()
            })
        });
    }

    // E8 serve path: the anchored-heavy top-k workload (the
    // `e8_anchored/topk` setting) over the synthetic anchored store
    // built in both layouts. Measured twice: in the deployed session
    // configuration — a store-level posting cache at the session tier's
    // capacity, exactly how `TrinitSystem::query` serves — where the
    // packed decode amortizes to one decode per pattern per session,
    // and cold (no shared cache), where every run pays the decode; the
    // cold delta is the decode cost the cache tier exists to absorb.
    let anchored_stores: Vec<(&str, XkgStore)> = layouts()
        .into_iter()
        .map(|(name, layout)| (name, anchored_store_builder().build_with(layout)))
        .collect();
    let rules = RuleSet::new();
    let anchored_sets: Vec<(&str, Vec<Query>, &XkgStore, SharedPostingCache)> = anchored_stores
        .iter()
        .map(|(name, store)| {
            (
                *name,
                anchored_queries(store),
                store,
                SharedPostingCache::new(SESSION_CACHE_CAPACITY),
            )
        })
        .collect();
    for (path, cached) in [("e8_topk", true), ("e8_topk_cold", false)] {
        let run_e8_topk = |idx: usize| -> u64 {
            let (_, qs, store, cache) = &anchored_sets[idx];
            let shared = cached.then_some(cache);
            let t0 = Instant::now();
            let total: usize = qs
                .iter()
                .map(|q| topk::run_cached(store, q, &rules, &topk_cfg, shared).0.len())
                .sum();
            std::hint::black_box(total);
            t0.elapsed().as_nanos() as u64
        };
        let (a_med, b_med) = ab_medians(|| run_e8_topk(0), || run_e8_topk(1));
        println!(
            "E13_AB {{\"path\": \"{path}\", \"rounds\": 51, \"queries\": {}, \
             \"{}_median_ns\": {a_med}, \"{}_median_ns\": {b_med}, \"delta_pct\": {:.2}}}",
            anchored_sets[0].1.len(),
            anchored_sets[0].0,
            anchored_sets[1].0,
            (b_med as f64 / a_med as f64 - 1.0) * 100.0
        );
        for (idx, (name, ..)) in anchored_sets.iter().enumerate() {
            group.bench_function(BenchmarkId::new(path, *name), |bch| {
                bch.iter(|| run_e8_topk(idx))
            });
        }
    }

    // E8 diagnostic: the raw anchored posting-list build micro-loop.
    // Packed pays its decode here with nothing to amortize it into —
    // the absolute per-probe cost is what BENCH_e13.json documents.
    let pattern_sets: Vec<(&str, Vec<SlotPattern>, &XkgStore)> = systems
        .iter()
        .map(|(name, system)| {
            let store = system.store();
            (*name, anchored_patterns(&world, store), store)
        })
        .collect();
    assert!(
        pattern_sets.iter().all(|(_, p, _)| !p.is_empty()),
        "anchored pattern mix must be non-empty"
    );
    let run_e8 = |idx: usize| -> u64 {
        let (_, patterns, store) = &pattern_sets[idx];
        let t0 = Instant::now();
        let mut acc = 0usize;
        for pat in patterns {
            let list = PostingList::build(store, pat);
            acc += list.len() + list.peek_prob().is_some() as usize;
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as u64
    };
    let (a_med, b_med) = ab_medians(|| run_e8(0), || run_e8(1));
    println!(
        "E13_AB {{\"path\": \"e8_list\", \"rounds\": 51, \"patterns\": {}, \
         \"{}_median_ns\": {a_med}, \"{}_median_ns\": {b_med}, \"delta_pct\": {:.2}}}",
        pattern_sets[0].1.len(),
        pattern_sets[0].0,
        pattern_sets[1].0,
        (b_med as f64 / a_med as f64 - 1.0) * 100.0
    );
    for (name, patterns, store) in &pattern_sets {
        group.bench_function(BenchmarkId::new("e8_list", *name), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for pat in patterns {
                    let list = PostingList::build(store, pat);
                    acc += list.len() + list.peek_prob().is_some() as usize;
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact);
criterion_main!(benches);
