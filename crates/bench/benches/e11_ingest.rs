//! E11 bench: live delta ingestion — re-query vs rebuild-from-scratch.
//!
//! A deployed system keeps answering while extraction streams new
//! facts in. The baseline way to refresh answers after a batch lands
//! is to rebuild the whole store and re-run the query set; the
//! segmented store instead appends the batch into its delta segment
//! (`Trinit::ingest`) and either re-runs queries over base + delta or
//! asks the semi-naive question directly
//! (`Trinit::answers_introduced_by` — only answers whose derivation
//! uses fresh evidence).
//!
//! The bench builds a synthetic 12k-triple extraction store, streams
//! 150-fact batches, and times three refresh strategies over the same
//! query set:
//!
//! - `rebuild` — from-scratch build of base ∪ batch, then the
//!   full query set (the no-ingestion baseline);
//! - `ingest_full` — `ingest` the batch, re-run the full query set
//!   over the segmented store;
//! - `introduced` — `ingest` the batch, run only the delta-restricted
//!   variants (`answers_introduced_by`).
//!
//! Medians over 5 batch cycles are printed as an `E11_INGEST` JSON
//! line for BENCH_e11.json. The acceptance criterion is
//! `rebuild_us > ingest_full_us > introduced_us` — delta re-query must
//! beat rebuilding, and the semi-naive question must beat both.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use trinit_core::{Engine, Trinit};
use trinit_relax::RuleSet;
use trinit_xkg::XkgBuilder;

const N_BASE: usize = 12_000;
const N_BATCH: usize = 150;
const ENTITIES: u64 = 1_500;
const RELATIONS: u64 = 20;
const CYCLES: usize = 5;

/// Deterministic splitmix-style generator: benches must not depend on
/// ambient randomness, and the delta batches must differ per cycle.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Appends `n` synthetic extraction triples. Entity/relation names are
/// interned through the builder's dictionary, so the same names resolve
/// to the same ids whether they land in the base or in a delta batch.
fn fill(b: &mut XkgBuilder, seed: u64, n: usize) {
    let mut rng = Rng(seed);
    let src = b.intern_source("stream:extractions");
    for _ in 0..n {
        let s = b.dict_mut().resource(&format!("e{}", rng.next() % ENTITIES));
        let p = b.dict_mut().resource(&format!("rel{}", rng.next() % RELATIONS));
        let o = b.dict_mut().resource(&format!("e{}", rng.next() % ENTITIES));
        let conf = 0.30 + (rng.next() % 700) as f32 / 1000.0;
        b.add_extracted(s, p, o, conf, src);
    }
}

fn base_system() -> Trinit {
    let mut b = XkgBuilder::new();
    fill(&mut b, 7, N_BASE);
    Trinit::from_parts(b.build(), RuleSet::new())
}

fn query_texts() -> Vec<String> {
    let mut texts: Vec<String> = (0..6).map(|j| format!("?x rel{j} ?y LIMIT 20")).collect();
    texts.extend((0..4).map(|i| format!("e{} rel{} ?y LIMIT 10", i * 37, i)));
    texts
}

fn run_set(sys: &Trinit, texts: &[String]) -> usize {
    texts
        .iter()
        .map(|t| {
            let q = sys.parse(t).expect("bench query parses");
            sys.run(q, Engine::IncrementalTopK).answers.len()
        })
        .sum()
}

fn run_introduced(sys: &Trinit, texts: &[String]) -> usize {
    texts
        .iter()
        .map(|t| {
            let q = sys.parse(t).expect("bench query parses");
            sys.answers_introduced_by(q).answers.len()
        })
        .sum()
}

fn median_us(mut xs: Vec<u128>) -> u128 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn bench_ingest(c: &mut Criterion) {
    let texts = query_texts();

    // The measured cycles behind BENCH_e11.json: each cycle streams a
    // distinct batch, and every strategy refreshes the same query set.
    let (mut rebuild_us, mut ingest_full_us, mut introduced_us) =
        (Vec::new(), Vec::new(), Vec::new());
    let (mut full_answers, mut introduced_answers) = (0usize, 0usize);
    for cycle in 0..CYCLES {
        let batch_seed = 1_000 + cycle as u64;

        let t0 = Instant::now();
        let mut b = XkgBuilder::new();
        fill(&mut b, 7, N_BASE);
        fill(&mut b, batch_seed, N_BATCH);
        let rebuilt = Trinit::from_parts(b.build(), RuleSet::new());
        full_answers = run_set(&rebuilt, &texts);
        rebuild_us.push(t0.elapsed().as_micros());

        let mut live = base_system();
        let t0 = Instant::now();
        live.ingest(|b| fill(b, batch_seed, N_BATCH));
        let n = run_set(&live, &texts);
        ingest_full_us.push(t0.elapsed().as_micros());
        assert_eq!(n, full_answers, "segmented serve must match rebuild");

        let mut live = base_system();
        let t0 = Instant::now();
        live.ingest(|b| fill(b, batch_seed, N_BATCH));
        introduced_answers = run_introduced(&live, &texts);
        introduced_us.push(t0.elapsed().as_micros());
    }
    let (rebuild, ingest_full, introduced) = (
        median_us(rebuild_us),
        median_us(ingest_full_us),
        median_us(introduced_us),
    );
    println!(
        "E11_INGEST {{\"base_triples\": {N_BASE}, \"batch_triples\": {N_BATCH}, \
         \"queries\": {}, \"cycles\": {CYCLES}, \"rebuild_us\": {rebuild}, \
         \"ingest_full_requery_us\": {ingest_full}, \"introduced_only_us\": {introduced}, \
         \"full_answers\": {full_answers}, \"introduced_answers\": {introduced_answers}, \
         \"speedup_full\": {:.2}, \"speedup_introduced\": {:.2}}}",
        texts.len(),
        rebuild as f64 / ingest_full as f64,
        rebuild as f64 / introduced as f64,
    );

    let mut group = c.benchmark_group("e11_ingest");
    group.sample_size(10);

    group.bench_function("rebuild_and_requery", |b| {
        b.iter(|| {
            let mut xb = XkgBuilder::new();
            fill(&mut xb, 7, N_BASE);
            fill(&mut xb, 1_000, N_BATCH);
            let sys = Trinit::from_parts(xb.build(), RuleSet::new());
            run_set(&sys, &texts)
        })
    });

    // The steady-state serving costs over a live delta (the ingest
    // itself is timed in the cycle loop above; criterion pins the
    // repeatable query-side work).
    let mut live = base_system();
    live.ingest(|b| fill(b, 1_000, N_BATCH));
    group.bench_function("segmented_full_requery", |b| b.iter(|| run_set(&live, &texts)));
    group.bench_function("introduced_only", |b| b.iter(|| run_introduced(&live, &texts)));
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
