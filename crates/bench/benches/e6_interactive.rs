//! E6/E7/E8 bench: interactive-latency operations of the demo surface —
//! parsing, querying the paper fixture, explanation rendering, query
//! suggestion, and auto-completion (paper §5, Figures 5 and 6).

use criterion::{criterion_group, criterion_main, Criterion};
use trinit_core::fixtures::{paper_rules, paper_store};
use trinit_core::Trinit;

fn bench_interactive(c: &mut Criterion) {
    let store = paper_store();
    let rules = paper_rules(&store);
    let system = Trinit::from_parts(store, rules);
    let figure5 = "AlbertEinstein affiliation ?x . ?x member IvyLeague LIMIT 5";

    let mut group = c.benchmark_group("e6_interactive");

    group.bench_function("parse", |b| {
        b.iter(|| system.parse(figure5).expect("parses"))
    });

    group.bench_function("query_figure5", |b| {
        b.iter(|| system.query(figure5).expect("parses"))
    });

    let outcome = system.query(figure5).expect("parses");
    group.bench_function("explain_figure6", |b| {
        b.iter(|| system.explain(&outcome, 0).map(|e| e.render()))
    });

    group.bench_function("suggest", |b| b.iter(|| system.suggest(&outcome)));

    group.bench_function("autocomplete", |b| b.iter(|| system.complete("Alb", 8)));

    group.finish();
}

criterion_group!(benches, bench_interactive);
criterion_main!(benches);
