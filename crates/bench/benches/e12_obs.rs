//! E12 bench: observability overhead — instrumented vs `ObsConfig::off`.
//!
//! The tracing layer promises "within noise" on the serve paths, and
//! this bench is the proof: the E5 query set runs through the governed
//! monolithic engine (the E5 serve path) and through the sharded
//! work-stealing batch scheduler (the E9 serve path), each twice —
//! once with the default instrumentation (per-query span ring, stage
//! windows, registry observation) and once with [`ObsConfig::off`]
//! (every record site reduces to one branch, the clock is never read).
//! Span batching is what makes this hold: rank-join pulls and merge
//! elections are windowed 64 events per clock read, so the instrumented
//! run adds two `Instant::now` calls per window, not per pull.
//!
//! `E12_SPANS` lines report how many spans the instrumented runs
//! actually record (the off runs record zero, pinning the A/B as
//! real). `E12_ORDER=rev` reverses the on/off order so two runs cancel
//! warm-up bias in BENCH_e12.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::Engine;
use trinit_eval::{
    build_full_system, build_sharded_system, build_world, generate_benchmark, BenchmarkConfig,
    EvalConfig,
};
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::{ObsConfig, Query};

fn modes() -> Vec<(&'static str, ObsConfig)> {
    let mut modes = vec![
        ("on", ObsConfig::default()),
        ("off", ObsConfig::off()),
    ];
    if std::env::var("E12_ORDER").as_deref() == Ok("rev") {
        modes.reverse();
    }
    modes
}

fn bench_obs_overhead(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );

    let mut group = c.benchmark_group("e12_obs");
    group.sample_size(10);

    // E5 serve path: governed monolithic top-k, k = 10.
    let system = build_full_system(&world, &cfg);
    let store = system.store();
    let rules = system.rules();
    let parsed: Vec<Query> = queries
        .iter()
        .filter_map(|q| system.parse(&q.text).ok())
        .map(|mut q| {
            q.k = 10;
            q
        })
        .collect();

    // Interleaved A/B: rounds of (on-sweep, off-sweep) with the order
    // flipped every round, so warm-up and clock-frequency drift hit
    // both modes symmetrically. The per-mode medians are the
    // overhead-within-noise evidence; the criterion groups below give
    // the conventional per-mode timings.
    {
        let on_cfg = TopkConfig::default();
        let off_cfg = TopkConfig {
            obs: ObsConfig::off(),
            ..TopkConfig::default()
        };
        let sweep = |cfg: &TopkConfig| -> u64 {
            let t0 = std::time::Instant::now();
            let total: usize = parsed
                .iter()
                .map(|q| topk::run_governed(store, q, rules, cfg, None).answers.len())
                .sum();
            std::hint::black_box(total);
            t0.elapsed().as_nanos() as u64
        };
        // Warm both paths before sampling.
        sweep(&on_cfg);
        sweep(&off_cfg);
        let rounds = 51usize;
        let (mut on_ns, mut off_ns) = (Vec::new(), Vec::new());
        for round in 0..rounds {
            if round % 2 == 0 {
                on_ns.push(sweep(&on_cfg));
                off_ns.push(sweep(&off_cfg));
            } else {
                off_ns.push(sweep(&off_cfg));
                on_ns.push(sweep(&on_cfg));
            }
        }
        let median = |v: &mut Vec<u64>| -> u64 {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (on_med, off_med) = (median(&mut on_ns), median(&mut off_ns));
        println!(
            "E12_AB {{\"path\": \"mono\", \"rounds\": {rounds}, \"queries\": {}, \
             \"on_median_ns\": {on_med}, \"off_median_ns\": {off_med}, \
             \"overhead_pct\": {:.2}}}",
            parsed.len(),
            (on_med as f64 / off_med as f64 - 1.0) * 100.0
        );
    }

    for (mode, obs) in modes() {
        let topk_cfg = TopkConfig {
            obs,
            ..TopkConfig::default()
        };
        let (mut spans, mut dropped) = (0u64, 0u64);
        for q in &parsed {
            let run = topk::run_governed(store, q, rules, &topk_cfg, None);
            spans += run.trace.recorded();
            dropped += run.trace.dropped;
        }
        println!(
            "E12_SPANS {{\"path\": \"mono\", \"mode\": \"{mode}\", \"queries\": {}, \
             \"spans\": {spans}, \"dropped\": {dropped}}}",
            parsed.len()
        );
        group.bench_function(BenchmarkId::new("mono", mode), |b| {
            b.iter(|| {
                parsed
                    .iter()
                    .map(|q| {
                        topk::run_governed(store, q, rules, &topk_cfg, None)
                            .answers
                            .len()
                    })
                    .sum::<usize>()
            })
        });
    }

    // E9 serve path: sharded work-stealing batch scheduler (includes
    // worker-local recorder merge-at-join and registry observation).
    let shards = 4;
    let mut sharded = build_sharded_system(&world, &cfg, shards);
    let batch: Vec<Query> = queries
        .iter()
        .filter_map(|q| sharded.parse(&q.text).ok())
        .map(|mut q| {
            q.k = 10;
            q
        })
        .collect();
    // Same interleaved A/B over the batch scheduler.
    {
        let mut sweep = |on: bool| -> u64 {
            sharded.set_obs(if on { ObsConfig::default() } else { ObsConfig::off() });
            let t0 = std::time::Instant::now();
            let total: usize = sharded
                .run_batch_stealing(batch.clone(), Engine::IncrementalTopK, shards)
                .into_iter()
                .map(|o| o.expect("no worker panicked").answers.len())
                .sum();
            std::hint::black_box(total);
            t0.elapsed().as_nanos() as u64
        };
        sweep(true);
        sweep(false);
        let rounds = 51usize;
        let (mut on_ns, mut off_ns) = (Vec::new(), Vec::new());
        for round in 0..rounds {
            if round % 2 == 0 {
                on_ns.push(sweep(true));
                off_ns.push(sweep(false));
            } else {
                off_ns.push(sweep(false));
                on_ns.push(sweep(true));
            }
        }
        let median = |v: &mut Vec<u64>| -> u64 {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let (on_med, off_med) = (median(&mut on_ns), median(&mut off_ns));
        println!(
            "E12_AB {{\"path\": \"sharded\", \"rounds\": {rounds}, \"queries\": {}, \
             \"on_median_ns\": {on_med}, \"off_median_ns\": {off_med}, \
             \"overhead_pct\": {:.2}}}",
            batch.len(),
            (on_med as f64 / off_med as f64 - 1.0) * 100.0
        );
    }

    for (mode, obs) in modes() {
        sharded.set_obs(obs);
        let outcomes = sharded.run_batch_stealing(batch.clone(), Engine::IncrementalTopK, shards);
        let (mut spans, mut dropped) = (0u64, 0u64);
        for o in &outcomes {
            let o = o.as_ref().expect("no worker panicked");
            spans += o.trace().recorded();
            dropped += o.trace().dropped;
        }
        println!(
            "E12_SPANS {{\"path\": \"sharded\", \"mode\": \"{mode}\", \"queries\": {}, \
             \"spans\": {spans}, \"dropped\": {dropped}}}",
            batch.len()
        );
        group.bench_function(BenchmarkId::new("sharded_steal", mode), |b| {
            b.iter(|| {
                sharded
                    .run_batch_stealing(batch.clone(), Engine::IncrementalTopK, shards)
                    .into_iter()
                    .map(|o| o.expect("no worker panicked").answers.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
