//! E10 bench: budgeted execution — answers vs. deadline, with the
//! degradation ladder armed.
//!
//! Pushes the E5 query set (k = 50, the tail-draining regime) through
//! the governed monolithic engine under a wall-clock deadline sweep,
//! from unlimited down to 100 µs. Each point reports, as an
//! `E10_CURVE` JSON line, how many answers survived the budget and how
//! they are classified: exact runs, runs an ε / θ ladder rung retired
//! early (scores still exact), and truncated runs together with the sum
//! of their guaranteed ranks (leading answers that provably coincide
//! with the exact top-k). `deadline_cutoffs` and `degradation_steps`
//! expose which mechanism actually fired — the acceptance criterion is
//! that completeness degrades only when a cutoff really fired, never
//! spuriously at generous deadlines.
//!
//! `E10_ORDER=rev` reverses the sweep so two runs cancel warm-up bias
//! in BENCH_e10.json.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_eval::{build_full_system, build_world, generate_benchmark, BenchmarkConfig, EvalConfig};
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::{Completeness, DegradationRung, ExecBudget, Query};

fn bench_budget_curve(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );
    let system = build_full_system(&world, &cfg);
    let store = system.store();
    let rules = system.rules();
    let parsed: Vec<Query> = queries
        .iter()
        .filter_map(|q| system.parse(&q.text).ok())
        .map(|mut q| {
            q.k = 50;
            q
        })
        .collect();

    // Unlimited first, then tightening deadlines (µs). 0 = unlimited.
    let mut deadlines_us: Vec<u64> = vec![0, 20_000, 2_000, 500, 100, 50, 20];
    if std::env::var("E10_ORDER").as_deref() == Ok("rev") {
        deadlines_us.reverse();
    }

    let mut group = c.benchmark_group("e10_budget");
    group.sample_size(10);
    for &us in &deadlines_us {
        let topk_cfg = TopkConfig {
            budget: ExecBudget {
                deadline: (us > 0).then(|| Duration::from_micros(us)),
                soft_fraction: 0.5,
                ladder: vec![
                    DegradationRung {
                        epsilon: 0.02,
                        theta: 0.0,
                    },
                    DegradationRung {
                        epsilon: 0.05,
                        theta: 0.02,
                    },
                ],
                ..ExecBudget::default()
            },
            ..TopkConfig::default()
        };
        let (mut answers, mut pulls) = (0usize, 0usize);
        let (mut exact, mut approx, mut truncated, mut guaranteed) = (0usize, 0usize, 0usize, 0usize);
        let (mut cutoffs, mut steps) = (0usize, 0usize);
        for q in &parsed {
            let run = topk::run_governed(store, q, rules, &topk_cfg, None);
            answers += run.answers.len();
            pulls += run.metrics.pulls;
            cutoffs += run.metrics.deadline_cutoffs;
            steps += run.metrics.degradation_steps;
            match run.completeness {
                Completeness::Exact => exact += 1,
                Completeness::Approx { .. } => approx += 1,
                Completeness::Truncated { guaranteed_rank, .. } => {
                    truncated += 1;
                    guaranteed += guaranteed_rank;
                }
            }
        }
        println!(
            "E10_CURVE {{\"deadline_us\": {us}, \"answers\": {answers}, \"pulls\": {pulls}, \
             \"exact\": {exact}, \"approx\": {approx}, \"truncated\": {truncated}, \
             \"guaranteed_rank_sum\": {guaranteed}, \"deadline_cutoffs\": {cutoffs}, \
             \"degradation_steps\": {steps}}}"
        );
        group.bench_function(BenchmarkId::new("deadline_us", us), |b| {
            b.iter(|| {
                parsed
                    .iter()
                    .map(|q| topk::run_governed(store, q, rules, &topk_cfg, None).answers.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget_curve);
criterion_main!(benches);
