//! E7 bench: the sharding scaling curve — E5-style top-k batch
//! throughput over the benchmark query set, swept across shard counts.
//!
//! Each shard count builds the same world into a system whose store is
//! hash-partitioned into that many shards; the workload pushes the full
//! E5 query set (at the E5 k sweep) through [`Trinit::run_batch`],
//! which executes queries concurrently across a worker pool sized to
//! the shard count. Shard count 1 is the monolithic reference: its pool
//! has one worker and its engine is the unsharded top-k path, so the
//! curve reads directly as "what does adding shards buy".
//!
//! The sweep order is reversible (`E7_ORDER=rev`) so repeated runs can
//! alternate direction and cancel thermal/frequency drift when
//! recording `BENCH_e7.json`. Note that the curve only rises on a
//! multi-core runner — on one core the pool serializes and the bench
//! measures pure sharding overhead instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::Engine;
use trinit_eval::{
    build_sharded_system, build_world, generate_benchmark, BenchmarkConfig, EvalConfig,
};

fn bench_shard_scaling(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );

    let mut counts = vec![1usize, 2, 4, 8];
    if std::env::var("E7_ORDER").as_deref() == Ok("rev") {
        counts.reverse();
    }

    let mut group = c.benchmark_group("e7_shard_batch");
    group.sample_size(10);
    for &shards in &counts {
        let system = build_sharded_system(&world, &cfg, shards);
        // The E5 k sweep over the whole benchmark set, as one batch.
        let batch: Vec<_> = [1usize, 5, 10, 50]
            .into_iter()
            .flat_map(|k| {
                queries.iter().map(move |q| (q, k)).map(|(q, k)| {
                    let mut parsed = system.parse(&q.text).expect("benchmark queries parse");
                    parsed.k = k;
                    parsed
                })
            })
            .collect();
        // Pool pinned to the shard count: the 1-shard point is the
        // monolithic engine on one worker, so the curve reads as "what
        // does each added shard (and its worker) buy".
        group.bench_function(BenchmarkId::new("batch_topk", shards), |b| {
            b.iter(|| {
                let outcomes = system.run_batch_with_workers(
                    batch.clone(),
                    Engine::IncrementalTopK,
                    shards,
                );
                outcomes
                    .iter()
                    .map(|o| o.as_ref().expect("no worker panicked").answers.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
