//! E5 bench: the paper's efficiency claim — incremental top-k vs full
//! expansion vs exact evaluation, sweeping k.
//!
//! "It is crucial to avoid exploring the entire space of possible
//! rewritings, as this can be prohibitively expensive" (§4). The series
//! regenerated here is the runtime companion of the work-counter table
//! printed by `reproduce -- e5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::Engine;
use trinit_eval::{build_full_system, build_world, generate_benchmark, BenchmarkConfig, EvalConfig};

fn bench_topk(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let system = build_full_system(&world, &cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );
    let parsed: Vec<_> = queries
        .iter()
        .map(|q| system.parse(&q.text).expect("parses"))
        .collect();

    let mut group = c.benchmark_group("e5_topk_vs_expansion");
    group.sample_size(10);
    for k in [1usize, 5, 10, 50] {
        for (name, engine) in [
            ("incremental_topk", Engine::IncrementalTopK),
            ("full_expansion", Engine::FullExpansion),
            ("exact", Engine::Exact),
        ] {
            group.bench_function(BenchmarkId::new(name, k), |b| {
                b.iter(|| {
                    let mut answers = 0usize;
                    for q in &parsed {
                        let mut q = q.clone();
                        q.k = k;
                        answers += system.run(q, engine).answers.len();
                    }
                    answers
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
