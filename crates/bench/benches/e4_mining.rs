//! E4 bench: relaxation-rule mining — the §3 co-occurrence/inversion
//! miner and the granularity miner, against built stores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trinit_core::relax::{
    mine_cooccurrence, mine_granularity, GranularityMinerConfig, MinerConfig,
};
use trinit_core::worldgen::{CorpusConfig, KgConfig, World, WorldConfig};
use trinit_core::TrinitBuilder;

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mining");
    group.sample_size(10);

    for scale in [0.05f64, 0.1] {
        let world = World::generate(WorldConfig::demo(11).scaled(scale));
        let mut corpus = CorpusConfig::tiny(3);
        corpus.documents = (600.0 * scale / 0.05) as usize;
        let system = TrinitBuilder::from_world(&world, &KgConfig::default(), &corpus).build();
        let store = system.store();

        group.bench_function(
            BenchmarkId::new("cooccurrence", format!("{scale}")),
            |b| b.iter(|| mine_cooccurrence(store, &MinerConfig::default())),
        );

        let type_pred = store.resource("type").expect("type predicate");
        let via = store.resource("locatedIn").expect("locatedIn predicate");
        group.bench_function(
            BenchmarkId::new("granularity", format!("{scale}")),
            |b| {
                b.iter(|| {
                    mine_granularity(store, type_pred, via, &GranularityMinerConfig::default())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mining);
criterion_main!(benches);
