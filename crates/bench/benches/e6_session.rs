//! E6 bench: session-level interactive workload — one user re-issuing
//! related queries within a [`Session`], the access pattern the
//! store-level posting cache targets (paper §5/E6: exploratory sessions
//! return to the same predicates and entity anchors again and again).
//!
//! Two shapes over the same query set:
//!
//! * `repeated_workload_one_session` — a single session runs the whole
//!   set three times; canonical patterns recur across consecutive
//!   queries, so cross-query posting-list reuse pays.
//! * `fresh_session_per_query` — a new session per query; no state can
//!   carry over, bounding what per-query work costs without reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use trinit_core::Session;
use trinit_eval::{build_full_system, build_world, generate_benchmark, BenchmarkConfig, EvalConfig};

fn bench_session(c: &mut Criterion) {
    let cfg = EvalConfig {
        seed: 42,
        scale: 0.08,
        per_category: 3,
    };
    let (world, kg) = build_world(&cfg);
    let system = build_full_system(&world, &cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: 2,
            per_category: cfg.per_category,
        },
    );
    let texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();

    let mut group = c.benchmark_group("e6_session");
    group.sample_size(10);

    group.bench_function("repeated_workload_one_session", |b| {
        b.iter(|| {
            let session = Session::new(&system);
            let mut answers = 0usize;
            for _round in 0..3 {
                for t in &texts {
                    answers += session.query(t).expect("benchmark queries parse").answers.len();
                }
            }
            answers
        })
    });

    group.bench_function("fresh_session_per_query", |b| {
        b.iter(|| {
            let mut answers = 0usize;
            for _round in 0..3 {
                for t in &texts {
                    let session = Session::new(&system);
                    answers += session.query(t).expect("benchmark queries parse").answers.len();
                }
            }
            answers
        })
    });

    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
