//! Benchmark-only crate; see `benches/` for the E1–E6 series.
