//! Part-of-speech tags and a compact English lexicon.
//!
//! The extractor does not need full-coverage POS tagging — ReVerb itself
//! uses a fast shallow tagger. We ship a closed-class lexicon (complete
//! for determiners, prepositions, auxiliaries, pronouns) plus an open-class
//! verb/noun list covering common web-text vocabulary; everything else is
//! resolved by the heuristics in [`crate::tagger`].

use std::collections::HashMap;

/// Shallow part-of-speech categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// Determiner (the, a, an, ...).
    Det,
    /// Preposition (in, at, of, for, ...).
    Prep,
    /// Auxiliary / copula (is, was, were, has, ...).
    Aux,
    /// Main verb.
    Verb,
    /// Common noun.
    Noun,
    /// Proper noun (part of an entity name).
    ProperNoun,
    /// Adjective.
    Adj,
    /// Possessive or personal pronoun (his, her, its, ...).
    Pronoun,
    /// Number or date literal.
    Number,
    /// Anything else.
    Other,
}

impl Tag {
    /// True if the tag can appear *inside* a ReVerb relation phrase
    /// between the verb and the final preposition (the `W` class).
    pub fn is_relation_filler(self) -> bool {
        matches!(
            self,
            Tag::Noun | Tag::Adj | Tag::Pronoun | Tag::Det | Tag::Other
        )
    }

    /// True if the tag can be part of a noun phrase.
    pub fn is_np_part(self) -> bool {
        matches!(
            self,
            Tag::Det | Tag::Adj | Tag::Noun | Tag::ProperNoun | Tag::Number
        )
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "several", "some", "any", "each", "every",
    "no", "both",
];
const PREPOSITIONS: &[&str] = &[
    "in", "at", "of", "for", "on", "from", "with", "by", "under", "near", "into", "about",
    "through", "after", "before", "against", "during",
];
const AUXILIARIES: &[&str] = &[
    "is", "was", "are", "were", "be", "been", "being", "has", "have", "had", "will", "would",
    "can", "could", "may", "might", "do", "does", "did",
];
const PRONOUNS: &[&str] = &[
    "he", "she", "it", "they", "his", "her", "its", "their", "him", "them", "who", "which",
];
const VERBS: &[&str] = &[
    "born", "died", "won", "received", "lectured", "taught", "gave", "worked", "works",
    "supervised", "studied", "graduated", "housed", "located", "lies", "passed", "honored",
    "employed", "headquartered", "opened", "closed", "admired", "postponed", "recovered", "met",
    "discovered", "founded", "moved", "joined", "wrote", "published", "awarded", "visited",
    "became", "led", "directed", "established",
];
const NOUNS: &[&str] = &[
    "town", "city", "cities", "lecture", "lectures", "student", "students", "prize", "award",
    "work", "discovery", "campus", "member", "members", "committee", "meeting", "hall", "river",
    "library", "observatory", "visitors", "manuscript", "archive", "renovation", "teacher",
    "professor", "university", "institute", "league", "corp", "company", "doctoral", "father",
    "mother", "studies",
];
const ADJECTIVES: &[&str] = &[
    "old", "new", "ancient", "annual", "early", "famous", "late", "young", "former",
];
const CONJUNCTIONS: &[&str] = &["and", "or", "but", "while", "whereas", "also", "then", "as"];

/// A word → tag lookup table.
#[derive(Debug)]
pub struct Lexicon {
    table: HashMap<&'static str, Tag>,
}

impl Lexicon {
    /// Builds the default English mini-lexicon.
    pub fn english() -> Lexicon {
        let mut table = HashMap::new();
        for &w in DETERMINERS {
            table.insert(w, Tag::Det);
        }
        for &w in PREPOSITIONS {
            table.insert(w, Tag::Prep);
        }
        for &w in AUXILIARIES {
            table.insert(w, Tag::Aux);
        }
        for &w in PRONOUNS {
            table.insert(w, Tag::Pronoun);
        }
        for &w in VERBS {
            table.insert(w, Tag::Verb);
        }
        for &w in NOUNS {
            table.insert(w, Tag::Noun);
        }
        for &w in ADJECTIVES {
            table.insert(w, Tag::Adj);
        }
        for &w in CONJUNCTIONS {
            table.insert(w, Tag::Other);
        }
        Lexicon { table }
    }

    /// Looks up the tag of a lowercased word.
    pub fn get(&self, lower: &str) -> Option<Tag> {
        self.table.get(lower).copied()
    }

    /// Number of lexicon entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the lexicon is empty (never for [`Lexicon::english`]).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl Default for Lexicon {
    fn default() -> Self {
        Lexicon::english()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_classes_resolve() {
        let lex = Lexicon::english();
        assert_eq!(lex.get("the"), Some(Tag::Det));
        assert_eq!(lex.get("in"), Some(Tag::Prep));
        assert_eq!(lex.get("was"), Some(Tag::Aux));
        assert_eq!(lex.get("his"), Some(Tag::Pronoun));
    }

    #[test]
    fn open_classes_resolve() {
        let lex = Lexicon::english();
        assert_eq!(lex.get("lectured"), Some(Tag::Verb));
        assert_eq!(lex.get("prize"), Some(Tag::Noun));
        assert_eq!(lex.get("ancient"), Some(Tag::Adj));
    }

    #[test]
    fn unknown_words_are_none() {
        let lex = Lexicon::english();
        assert_eq!(lex.get("velmora"), None);
    }

    #[test]
    fn filler_class_excludes_preps_and_verbs() {
        assert!(Tag::Noun.is_relation_filler());
        assert!(Tag::Pronoun.is_relation_filler());
        assert!(!Tag::Prep.is_relation_filler());
        assert!(!Tag::Verb.is_relation_filler());
    }

    #[test]
    fn np_parts() {
        assert!(Tag::ProperNoun.is_np_part());
        assert!(Tag::Det.is_np_part());
        assert!(!Tag::Verb.is_np_part());
        assert!(!Tag::Prep.is_np_part());
    }

    #[test]
    fn lexicon_is_nonempty() {
        let lex = Lexicon::english();
        assert!(!lex.is_empty());
        assert!(lex.len() > 80);
    }
}
