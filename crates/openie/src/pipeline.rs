//! End-to-end extraction pipeline: documents → XKG extension triples.
//!
//! For each sentence: tokenize → tag → chunk → extract → link arguments →
//! emit a triple into the [`XkgBuilder`]. Linked arguments become KG
//! resources; unlinked arguments stay textual tokens; numeric arguments
//! become literals; relation phrases are always tokens. Duplicate
//! extractions accumulate support in the store, which drives the tf-like
//! component of answer scoring.

use trinit_xkg::{TermId, XkgBuilder};

use crate::extractor::{extract_sentence, Extraction};
use crate::lexicon::Lexicon;
use crate::ned::Linker;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Extractions below this confidence are discarded.
    pub min_confidence: f32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            min_confidence: 0.3,
        }
    }
}

/// Counters describing one ingestion run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Sentences processed.
    pub sentences: usize,
    /// Raw extractions produced.
    pub extractions: usize,
    /// Extractions kept (above the confidence floor).
    pub kept: usize,
    /// Argument slots linked to KG resources.
    pub linked_args: usize,
    /// Argument slots left as textual tokens.
    pub token_args: usize,
    /// Argument slots stored as literals.
    pub literal_args: usize,
}

impl IngestStats {
    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &IngestStats) {
        self.sentences += other.sentences;
        self.extractions += other.extractions;
        self.kept += other.kept;
        self.linked_args += other.linked_args;
        self.token_args += other.token_args;
        self.literal_args += other.literal_args;
    }

    /// Fraction of argument slots that were linked to resources.
    pub fn link_rate(&self) -> f64 {
        let total = self.linked_args + self.token_args + self.literal_args;
        if total == 0 {
            0.0
        } else {
            self.linked_args as f64 / total as f64
        }
    }
}

/// The Open IE ingestion pipeline.
#[derive(Debug)]
pub struct OpenIePipeline {
    lexicon: Lexicon,
    linker: Linker,
    config: PipelineConfig,
}

impl OpenIePipeline {
    /// Creates a pipeline with the default English lexicon and config.
    pub fn new(linker: Linker) -> OpenIePipeline {
        OpenIePipeline {
            lexicon: Lexicon::english(),
            linker,
            config: PipelineConfig::default(),
        }
    }

    /// Overrides the pipeline configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> OpenIePipeline {
        self.config = config;
        self
    }

    /// Extracts triples from a single sentence (no store interaction).
    pub fn extract(&self, sentence: &str) -> Vec<Extraction> {
        extract_sentence(&self.lexicon, sentence)
    }

    fn arg_term(
        &self,
        builder: &mut XkgBuilder,
        phrase: &str,
        numeric: bool,
        stats: &mut IngestStats,
    ) -> TermId {
        if numeric {
            stats.literal_args += 1;
            return builder.dict_mut().literal(phrase);
        }
        if let Some(resource) = self.linker.link_resource(phrase) {
            let resource = resource.to_string();
            stats.linked_args += 1;
            return builder.dict_mut().resource(&resource);
        }
        stats.token_args += 1;
        builder.dict_mut().token(&phrase.to_lowercase())
    }

    /// Ingests one document's sentences into `builder`.
    pub fn ingest(
        &self,
        doc_id: &str,
        sentences: &[String],
        builder: &mut XkgBuilder,
    ) -> IngestStats {
        let mut stats = IngestStats::default();
        let source = builder.intern_source(doc_id);
        for sentence in sentences {
            stats.sentences += 1;
            for ex in self.extract(sentence) {
                stats.extractions += 1;
                if ex.confidence < self.config.min_confidence {
                    continue;
                }
                stats.kept += 1;
                let s = self.arg_term(builder, &ex.arg1, false, &mut stats);
                let p = builder.dict_mut().token(&ex.rel);
                let o = self.arg_term(builder, &ex.arg2, ex.arg2_is_numeric, &mut stats);
                builder.add_extracted(s, p, o, ex.confidence, source);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::{GraphTag, SlotPattern};

    fn pipeline() -> OpenIePipeline {
        OpenIePipeline::new(Linker::with_default_dominance(vec![
            ("Ada Lum".to_string(), "AdaLum".to_string(), 5.0),
            ("Velmora University".to_string(), "VelmoraUniversity".to_string(), 3.0),
        ]))
    }

    #[test]
    fn linked_arguments_become_resources() {
        let p = pipeline();
        let mut b = XkgBuilder::new();
        let stats = p.ingest(
            "doc-1",
            &["Ada Lum lectured at Velmora University.".to_string()],
            &mut b,
        );
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.linked_args, 2);
        let store = b.build();
        let pred = store.token("lectured at").expect("relation token interned");
        let ids = store.lookup(&SlotPattern::with_p(pred));
        assert_eq!(ids.len(), 1);
        let t = store.triple(ids[0]);
        assert!(t.s.is_resource());
        assert!(t.p.is_token());
        assert!(t.o.is_resource());
        assert_eq!(store.provenance(ids[0]).graph, GraphTag::Xkg);
    }

    #[test]
    fn unlinked_arguments_stay_tokens() {
        let p = pipeline();
        let mut b = XkgBuilder::new();
        let stats = p.ingest(
            "doc-2",
            &["Ada Lum was honored for quantum flane theory.".to_string()],
            &mut b,
        );
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.token_args, 1);
        let store = b.build();
        assert!(store.token("quantum flane theory").is_some());
    }

    #[test]
    fn numeric_objects_become_literals() {
        let p = pipeline();
        let mut b = XkgBuilder::new();
        let stats = p.ingest(
            "doc-3",
            &["Ada Lum was born on 1854-02-12.".to_string()],
            &mut b,
        );
        assert_eq!(stats.literal_args, 1);
        let store = b.build();
        assert!(store.literal("1854-02-12").is_some());
    }

    #[test]
    fn repeated_extractions_accumulate_support() {
        let p = pipeline();
        let mut b = XkgBuilder::new();
        let sentence = "Ada Lum lectured at Velmora University.".to_string();
        p.ingest("doc-a", std::slice::from_ref(&sentence), &mut b);
        p.ingest("doc-b", &[sentence], &mut b);
        let store = b.build();
        let pred = store.token("lectured at").unwrap();
        let ids = store.lookup(&SlotPattern::with_p(pred));
        assert_eq!(ids.len(), 1, "deduplicated");
        let prov = store.provenance(ids[0]);
        assert_eq!(prov.support, 2);
        assert_eq!(prov.sources.len(), 2);
    }

    #[test]
    fn confidence_floor_filters() {
        let p = pipeline().with_config(PipelineConfig {
            min_confidence: 0.99,
        });
        let mut b = XkgBuilder::new();
        let stats = p.ingest(
            "doc-4",
            &["Ada Lum lectured at Velmora University.".to_string()],
            &mut b,
        );
        assert_eq!(stats.kept, 0);
        assert!(stats.extractions > 0);
    }

    #[test]
    fn stats_merge_and_link_rate() {
        let mut a = IngestStats {
            sentences: 1,
            extractions: 2,
            kept: 2,
            linked_args: 3,
            token_args: 1,
            literal_args: 0,
        };
        let b = IngestStats {
            sentences: 1,
            extractions: 1,
            kept: 1,
            linked_args: 1,
            token_args: 1,
            literal_args: 2,
        };
        a.merge(&b);
        assert_eq!(a.sentences, 2);
        assert_eq!(a.linked_args, 4);
        assert!((a.link_rate() - 4.0 / 8.0).abs() < 1e-9);
        assert_eq!(IngestStats::default().link_rate(), 0.0);
    }
}
