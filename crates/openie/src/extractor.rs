//! ReVerb-style relation extraction.
//!
//! Implements the syntactic constraint of ReVerb (Fader et al., EMNLP
//! 2011), the Open IE tool the paper cites (§2): a relation phrase between
//! two noun phrases must match
//!
//! ```text
//! [Aux]* V | [Aux]* V P | [Aux]* V W* P
//! ```
//!
//! where `V` is a verb, `P` a preposition, and `W` a filler word (noun,
//! adjective, pronoun, determiner). The phrase must cover *all* tokens
//! between the argument phrases. Leading auxiliaries are stripped during
//! normalization (`was housed in` → `housed in`), matching the token
//! predicates in the paper's Figure 3.

use crate::chunker::{chunk, NounPhrase};
use crate::lexicon::{Lexicon, Tag};
use crate::tagger::{tag, Tagged};
use crate::token::tokenize;

/// One extracted textual triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Extraction {
    /// Left argument phrase (determiner-stripped).
    pub arg1: String,
    /// Normalized relation phrase (auxiliaries stripped, lowercased).
    pub rel: String,
    /// Right argument phrase (determiner-stripped).
    pub arg2: String,
    /// Extraction confidence in `[0, 1]`.
    pub confidence: f32,
    /// True if the right argument is a number/date literal.
    pub arg2_is_numeric: bool,
    /// True if the left argument is headed by a proper noun.
    pub arg1_is_proper: bool,
    /// True if the right argument is headed by a proper noun.
    pub arg2_is_proper: bool,
}

/// Attempts to match the relation-phrase constraint over
/// `tagged[from..to]`. Returns the normalized phrase if it matches.
fn match_relation(tagged: &[Tagged], from: usize, to: usize) -> Option<String> {
    if from >= to {
        return None;
    }
    let mut i = from;
    // [Aux]* — leading auxiliaries / copulas.
    while i < to && tagged[i].tag == Tag::Aux {
        i += 1;
    }
    let verb_start = if i < to && tagged[i].tag == Tag::Verb {
        // Passive/periphrastic: strip the auxiliaries ("was housed in" →
        // "housed in", matching the paper's Figure 3 tokens).
        let v = i;
        i += 1;
        v
    } else if i > from {
        // Copula as main verb ("is a member of"): keep it in the phrase.
        from
    } else {
        return None;
    };
    if i == to {
        // Bare V.
        return Some(normalize(tagged, verb_start, to));
    }
    // V (W | P)* P — everything after the verb must be filler or
    // preposition, and the final token must be a preposition.
    for (j, tag_entry) in tagged.iter().enumerate().take(to).skip(i) {
        let t = tag_entry.tag;
        let is_last = j + 1 == to;
        if is_last {
            if t != Tag::Prep {
                return None;
            }
        } else if !(t.is_relation_filler() || t == Tag::Prep || t == Tag::Verb) {
            return None;
        }
    }
    Some(normalize(tagged, verb_start, to))
}

fn normalize(tagged: &[Tagged], from: usize, to: usize) -> String {
    tagged[from..to]
        .iter()
        .map(|t| t.token.lower.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// ReVerb-style confidence function: a deterministic score from shallow
/// features of the extraction, mimicking the shape of ReVerb's logistic
/// regression confidence (short, preposition-terminated phrases with
/// proper-noun arguments score high; long filler-heavy phrases score low).
pub fn confidence(
    rel_words: usize,
    arg1_proper: bool,
    arg2_proper: bool,
    sentence_len: usize,
) -> f32 {
    let mut c: f32 = 0.55;
    if rel_words <= 2 {
        c += 0.15;
    } else {
        c -= 0.04 * (rel_words as f32 - 2.0);
    }
    if arg1_proper {
        c += 0.1;
    }
    if arg2_proper {
        c += 0.1;
    }
    if sentence_len > 14 {
        c -= 0.05;
    }
    c.clamp(0.05, 0.95)
}

/// Extracts all (NP, VP, NP) triples from one sentence.
///
/// Adjacent noun-phrase pairs are considered; a pair yields an extraction
/// iff the tokens between them match the relation constraint.
pub fn extract_sentence(lexicon: &Lexicon, sentence: &str) -> Vec<Extraction> {
    let tokens = tokenize(sentence);
    let tagged = tag(lexicon, &tokens);
    let nps = chunk(&tagged);
    extract_tagged(&tagged, &nps)
}

fn extract_tagged(tagged: &[Tagged], nps: &[NounPhrase]) -> Vec<Extraction> {
    let mut out = Vec::new();
    for (i, left) in nps.iter().enumerate() {
        // ReVerb prefers the longest relation-phrase match: a phrase may
        // span intermediate common-noun chunks ("housed on the campus of"),
        // so scan rightward for the furthest argument whose gap still
        // satisfies the constraint.
        let mut best: Option<(&NounPhrase, String)> = None;
        for right in &nps[i + 1..] {
            if let Some(rel) = match_relation(tagged, left.end, right.start) {
                best = Some((right, rel));
            }
        }
        let Some((right, rel)) = best else {
            continue;
        };
        let rel_words = rel.split(' ').count();
        let arg1_is_proper = left.is_proper(tagged);
        let arg2_is_proper = right.is_proper(tagged);
        out.push(Extraction {
            arg1: left.text(tagged),
            arg2: right.text(tagged),
            confidence: confidence(rel_words, arg1_is_proper, arg2_is_proper, tagged.len()),
            arg2_is_numeric: right.is_numeric(tagged),
            arg1_is_proper,
            arg2_is_proper,
            rel,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(sentence: &str) -> Extraction {
        let lex = Lexicon::english();
        let mut ex = extract_sentence(&lex, sentence);
        assert_eq!(ex.len(), 1, "expected one extraction from {sentence:?}");
        ex.pop().unwrap()
    }

    #[test]
    fn simple_verb_prep() {
        let e = one("Brusa Klinberg lectured at Velmora University.");
        assert_eq!(e.arg1, "Brusa Klinberg");
        assert_eq!(e.rel, "lectured at");
        assert_eq!(e.arg2, "Velmora University");
        assert!(e.confidence > 0.5);
    }

    #[test]
    fn auxiliary_is_stripped() {
        let e = one("Institute for Drona Studies was housed on the campus of Kloue University.");
        assert_eq!(e.rel, "housed on the campus of");
    }

    #[test]
    fn passive_born_in() {
        let e = one("Ada Lum was born in Velmora.");
        assert_eq!(e.rel, "born in");
        assert_eq!(e.arg2, "Velmora");
    }

    #[test]
    fn long_filler_phrase() {
        let e = one("Ada Lum won the prize for his discovery of quantum flane theory.");
        assert_eq!(e.rel, "won the prize for his discovery of");
        assert_eq!(e.arg2, "quantum flane theory");
        // Long phrases get attenuated confidence.
        assert!(e.confidence < 0.75);
    }

    #[test]
    fn date_object_is_numeric() {
        let e = one("Ada Lum was born on 1854-02-12.");
        assert!(e.arg2_is_numeric);
        assert_eq!(e.rel, "born on");
    }

    #[test]
    fn bare_verb_between_nps() {
        let e = one("Prof. Drat supervised Velma Kord.");
        assert_eq!(e.rel, "supervised");
        assert_eq!(e.arg1, "Prof. Drat");
        assert_eq!(e.arg2, "Velma Kord");
    }

    #[test]
    fn no_relation_no_extraction() {
        let lex = Lexicon::english();
        // No verb between the phrases.
        let ex = extract_sentence(&lex, "Velmora Trastenia");
        assert!(ex.is_empty());
    }

    #[test]
    fn noise_sentences_extract_little_of_value() {
        let lex = Lexicon::english();
        let ex = extract_sentence(&lex, "The committee postponed its annual meeting.");
        // May extract ("committee", "postponed", "its annual meeting") —
        // fine; it is a low-value triple with common-noun args.
        for e in ex {
            assert!(!e.arg1_is_proper);
        }
    }

    #[test]
    fn confidence_bounds() {
        assert!(confidence(1, true, true, 5) <= 0.95);
        assert!(confidence(12, false, false, 30) >= 0.05);
        assert!(confidence(2, true, true, 8) > confidence(7, false, false, 20));
    }

    #[test]
    fn multiple_extractions_from_conjoined_sentence() {
        let lex = Lexicon::english();
        let ex = extract_sentence(
            &lex,
            "Ada Lum worked at Kloue University and Prof. Drat worked at Velmora University.",
        );
        assert!(ex.len() >= 2);
    }
}
