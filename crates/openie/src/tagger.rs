//! Shallow POS tagging over tokenized sentences.
//!
//! Lexicon lookup first; unknown words fall back to heuristics tuned for
//! entity-rich web sentences: capitalized unknowns are proper nouns,
//! numeric tokens are numbers, `-ed`-suffixed unknowns after a proper noun
//! are verbs, everything else defaults to common noun.

use crate::lexicon::{Lexicon, Tag};
use crate::token::{is_numeric_like, Token};

/// A token paired with its assigned tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Tagged {
    /// The token.
    pub token: Token,
    /// Its shallow POS tag.
    pub tag: Tag,
}

/// Tags a tokenized sentence.
pub fn tag(lexicon: &Lexicon, tokens: &[Token]) -> Vec<Tagged> {
    let mut out = Vec::with_capacity(tokens.len());
    for (i, tok) in tokens.iter().enumerate() {
        let tag = if is_numeric_like(&tok.text) {
            Tag::Number
        } else if let Some(t) = lexicon.get(&tok.lower) {
            // A capitalized lexicon word mid-sentence is usually part of a
            // name ("Velmora University", "Kloue League", "Drona Prize").
            if tok.capitalized && i > 0 && matches!(t, Tag::Noun | Tag::Adj) {
                Tag::ProperNoun
            } else {
                t
            }
        } else if tok.capitalized {
            Tag::ProperNoun
        } else if tok.lower.ends_with("ed") && i > 0 {
            // Unknown -ed form after something: treat as verb.
            Tag::Verb
        } else {
            Tag::Noun
        };
        out.push(Tagged {
            token: tok.clone(),
            tag,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags_of(sentence: &str) -> Vec<Tag> {
        let lex = Lexicon::english();
        tag(&lex, &tokenize(sentence)).into_iter().map(|t| t.tag).collect()
    }

    #[test]
    fn simple_svo_sentence() {
        let tags = tags_of("Brusa Klinberg lectured at Velmora University.");
        assert_eq!(
            tags,
            vec![
                Tag::ProperNoun,
                Tag::ProperNoun,
                Tag::Verb,
                Tag::Prep,
                Tag::ProperNoun,
                Tag::ProperNoun, // "University" capitalized mid-sentence
            ]
        );
    }

    #[test]
    fn copula_and_passive() {
        let tags = tags_of("The institute was housed in Drona University.");
        assert_eq!(tags[0], Tag::Det);
        assert_eq!(tags[1], Tag::Noun);
        assert_eq!(tags[2], Tag::Aux);
        assert_eq!(tags[3], Tag::Verb);
        assert_eq!(tags[4], Tag::Prep);
    }

    #[test]
    fn dates_are_numbers() {
        let tags = tags_of("She was born on 1879-03-14.");
        assert_eq!(*tags.last().unwrap(), Tag::Number);
    }

    #[test]
    fn unknown_capitalized_is_proper_noun() {
        let tags = tags_of("Velmora lies in Trastenia.");
        assert_eq!(tags[0], Tag::ProperNoun);
        assert_eq!(tags[2], Tag::Prep);
        assert_eq!(tags[3], Tag::ProperNoun);
    }

    #[test]
    fn unknown_ed_word_is_verb() {
        let tags = tags_of("Kloue Corp sponsored the event.");
        assert_eq!(tags[2], Tag::Verb);
    }
}
