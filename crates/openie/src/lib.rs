//! # trinit-openie — Open Information Extraction pipeline
//!
//! Reproduces the extraction stack the paper uses to extend a KG into an
//! XKG (§2): a ReVerb-style extractor (Fader et al., EMNLP 2011) over raw
//! sentences, plus dictionary-based entity linking in the role of
//! AIDA/Spotlight/FACC1. The output is textual token triples — two noun
//! phrases connected by a verbal phrase — with confidences, fed into a
//! [`trinit_xkg::XkgBuilder`].
//!
//! Stages: [`token`] → [`tagger`] (over [`lexicon`]) → [`chunker`] →
//! [`extractor`] → [`ned`] → [`pipeline`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chunker;
pub mod extractor;
pub mod lexicon;
pub mod ned;
pub mod pipeline;
pub mod tagger;
pub mod token;

pub use extractor::{extract_sentence, Extraction};
pub use lexicon::{Lexicon, Tag};
pub use ned::{Candidate, LinkOutcome, Linker};
pub use pipeline::{IngestStats, OpenIePipeline, PipelineConfig};
