//! Noun-phrase chunking.
//!
//! Finds maximal noun phrases: contiguous runs of NP-part tags
//! (determiner, adjective, noun, proper noun, number) containing at least
//! one nominal head. These become the argument candidates of extractions.

use crate::lexicon::Tag;
use crate::tagger::Tagged;

/// A chunked noun phrase: a token index range within the sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NounPhrase {
    /// Start token index (inclusive).
    pub start: usize,
    /// End token index (exclusive).
    pub end: usize,
}

impl NounPhrase {
    /// The surface text of the phrase, with any leading determiner
    /// stripped (determiners are not part of entity surface forms).
    pub fn text(&self, tagged: &[Tagged]) -> String {
        let mut start = self.start;
        while start < self.end && tagged[start].tag == Tag::Det {
            start += 1;
        }
        tagged[start..self.end]
            .iter()
            .map(|t| t.token.text.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// True if every token in the phrase is a number/date literal.
    pub fn is_numeric(&self, tagged: &[Tagged]) -> bool {
        tagged[self.start..self.end]
            .iter()
            .all(|t| t.tag == Tag::Number)
    }

    /// True if the phrase head (last token) is a proper noun.
    pub fn is_proper(&self, tagged: &[Tagged]) -> bool {
        self.end > self.start && tagged[self.end - 1].tag == Tag::ProperNoun
    }
}

/// Chunks a tagged sentence into maximal noun phrases.
pub fn chunk(tagged: &[Tagged]) -> Vec<NounPhrase> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tagged.len() {
        if tagged[i].tag.is_np_part() {
            let start = i;
            while i < tagged.len() && tagged[i].tag.is_np_part() {
                i += 1;
            }
            let has_head = tagged[start..i]
                .iter()
                .any(|t| matches!(t.tag, Tag::Noun | Tag::ProperNoun | Tag::Number));
            if has_head {
                out.push(NounPhrase { start, end: i });
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;
    use crate::tagger::tag;
    use crate::token::tokenize;

    fn chunks_of(sentence: &str) -> (Vec<Tagged>, Vec<NounPhrase>) {
        let lex = Lexicon::english();
        let tagged = tag(&lex, &tokenize(sentence));
        let nps = chunk(&tagged);
        (tagged, nps)
    }

    #[test]
    fn finds_subject_and_object_phrases() {
        let (tagged, nps) = chunks_of("Brusa Klinberg lectured at Velmora University.");
        assert_eq!(nps.len(), 2);
        assert_eq!(nps[0].text(&tagged), "Brusa Klinberg");
        assert_eq!(nps[1].text(&tagged), "Velmora University");
    }

    #[test]
    fn strips_leading_determiner() {
        let (tagged, nps) = chunks_of("The Institute for Drona Studies is housed in Kloue University.");
        assert!(nps[0].text(&tagged).starts_with("Institute"));
    }

    #[test]
    fn numeric_phrase_detection() {
        let (tagged, nps) = chunks_of("Ada Lum was born on 1854-02-12.");
        assert_eq!(nps.len(), 2);
        assert!(nps[1].is_numeric(&tagged));
        assert!(!nps[0].is_numeric(&tagged));
    }

    #[test]
    fn proper_head_detection() {
        let (tagged, nps) = chunks_of("Brusa Klinberg admired the ancient library.");
        assert!(nps[0].is_proper(&tagged));
        assert!(!nps[1].is_proper(&tagged));
    }

    #[test]
    fn determiner_only_run_is_not_a_phrase() {
        let lex = Lexicon::english();
        let tagged = tag(&lex, &tokenize("the of in"));
        // "the" alone has no nominal head.
        assert!(chunk(&tagged).is_empty());
    }
}
