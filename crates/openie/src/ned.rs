//! Named-entity disambiguation (entity linking).
//!
//! Links argument phrases of extractions to canonical KG resources, the
//! role played by AIDA/Spotlight/TagMe or the FACC1 annotations in the
//! paper (§2). The linker is dictionary-based: an alias catalog maps
//! surface forms to candidate resources with popularity priors; a mention
//! links to the most popular candidate if its prior is sufficiently
//! dominant, otherwise the phrase stays a textual token — exactly the
//! paper's behaviour ("in some cases, tools ... can link the S or O
//! phrases to entities in the KG").

use std::collections::HashMap;

/// One candidate resource for a surface form.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Canonical resource name.
    pub resource: String,
    /// Popularity prior (unnormalized).
    pub prior: f64,
}

/// Outcome of linking one mention.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkOutcome {
    /// Confidently linked to a resource.
    Linked(String),
    /// Known surface form, but no candidate is dominant enough.
    Ambiguous(Vec<Candidate>),
    /// Surface form not in the catalog.
    Unlinked,
}

/// Dictionary-based entity linker.
#[derive(Debug, Default)]
pub struct Linker {
    catalog: HashMap<String, Vec<Candidate>>,
    /// A candidate must hold at least this fraction of the total prior
    /// mass of its surface form to be linked.
    dominance: f64,
}

impl Linker {
    /// Builds a linker from `(alias, resource, prior)` entries.
    ///
    /// `dominance` in `[0, 1]` controls how conservative linking is:
    /// `0.0` always links to the top candidate; `1.0` links only
    /// unambiguous mentions. The paper's pipeline sits in between; our
    /// default ([`Linker::with_default_dominance`]) is `0.6`.
    pub fn new<I>(entries: I, dominance: f64) -> Linker
    where
        I: IntoIterator<Item = (String, String, f64)>,
    {
        let mut catalog: HashMap<String, Vec<Candidate>> = HashMap::new();
        for (alias, resource, prior) in entries {
            let cands = catalog.entry(alias).or_default();
            match cands.iter_mut().find(|c| c.resource == resource) {
                Some(c) => c.prior = c.prior.max(prior),
                None => cands.push(Candidate { resource, prior }),
            }
        }
        for cands in catalog.values_mut() {
            cands.sort_by(|a, b| {
                b.prior
                    .total_cmp(&a.prior)
                    .then_with(|| a.resource.cmp(&b.resource))
            });
        }
        Linker {
            catalog,
            dominance: dominance.clamp(0.0, 1.0),
        }
    }

    /// Builds a linker with the default dominance threshold (0.6).
    pub fn with_default_dominance<I>(entries: I) -> Linker
    where
        I: IntoIterator<Item = (String, String, f64)>,
    {
        Linker::new(entries, 0.6)
    }

    /// Number of distinct surface forms in the catalog.
    pub fn surface_forms(&self) -> usize {
        self.catalog.len()
    }

    /// Links a mention phrase.
    pub fn link(&self, phrase: &str) -> LinkOutcome {
        let Some(cands) = self.catalog.get(phrase) else {
            return LinkOutcome::Unlinked;
        };
        let total: f64 = cands.iter().map(|c| c.prior).sum();
        let best = &cands[0];
        if cands.len() == 1 || (total > 0.0 && best.prior / total >= self.dominance) {
            LinkOutcome::Linked(best.resource.clone())
        } else {
            LinkOutcome::Ambiguous(cands.clone())
        }
    }

    /// Links a mention, returning the resource only on a confident link.
    pub fn link_resource(&self, phrase: &str) -> Option<&str> {
        let cands = self.catalog.get(phrase)?;
        let total: f64 = cands.iter().map(|c| c.prior).sum();
        let best = cands.first()?;
        if cands.len() == 1 || (total > 0.0 && best.prior / total >= self.dominance) {
            Some(&best.resource)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linker() -> Linker {
        Linker::with_default_dominance(vec![
            ("Ada Lum".to_string(), "AdaLum".to_string(), 5.0),
            ("Lum".to_string(), "AdaLum".to_string(), 5.0),
            ("Lum".to_string(), "BorLum".to_string(), 1.0),
            ("Prof. Drat".to_string(), "KelDrat".to_string(), 2.0),
            ("Prof. Drat".to_string(), "MosDrat".to_string(), 2.0),
        ])
    }

    #[test]
    fn unique_alias_links() {
        let l = linker();
        assert_eq!(l.link("Ada Lum"), LinkOutcome::Linked("AdaLum".into()));
        assert_eq!(l.link_resource("Ada Lum"), Some("AdaLum"));
    }

    #[test]
    fn dominant_candidate_wins() {
        let l = linker();
        // AdaLum holds 5/6 ≈ 0.83 ≥ 0.6 of the mass for "Lum".
        assert_eq!(l.link("Lum"), LinkOutcome::Linked("AdaLum".into()));
    }

    #[test]
    fn balanced_candidates_stay_ambiguous() {
        let l = linker();
        match l.link("Prof. Drat") {
            LinkOutcome::Ambiguous(cands) => assert_eq!(cands.len(), 2),
            other => panic!("expected ambiguity, got {other:?}"),
        }
        assert_eq!(l.link_resource("Prof. Drat"), None);
    }

    #[test]
    fn unknown_phrase_is_unlinked() {
        let l = linker();
        assert_eq!(l.link("the old observatory"), LinkOutcome::Unlinked);
    }

    #[test]
    fn zero_dominance_always_links() {
        let l = Linker::new(
            vec![
                ("X".to_string(), "A".to_string(), 1.0),
                ("X".to_string(), "B".to_string(), 1.0),
            ],
            0.0,
        );
        // Ties break deterministically by resource name.
        assert_eq!(l.link("X"), LinkOutcome::Linked("A".into()));
    }

    #[test]
    fn duplicate_entries_collapse() {
        let l = Linker::with_default_dominance(vec![
            ("X".to_string(), "A".to_string(), 1.0),
            ("X".to_string(), "A".to_string(), 3.0),
        ]);
        assert_eq!(l.surface_forms(), 1);
        assert_eq!(l.link("X"), LinkOutcome::Linked("A".into()));
    }
}
