//! Sentence tokenization.
//!
//! A small, deterministic tokenizer sufficient for web-style declarative
//! sentences: splits on whitespace, detaches trailing punctuation, and
//! keeps abbreviations (`Prof.`) and date-like literals (`1879-03-14`)
//! intact.

/// A single token with its original surface form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Surface form as written.
    pub text: String,
    /// Lowercased form for lexicon lookup.
    pub lower: String,
    /// True if the first character is uppercase.
    pub capitalized: bool,
}

impl Token {
    fn new(text: &str) -> Token {
        Token {
            lower: text.to_lowercase(),
            capitalized: text.chars().next().is_some_and(|c| c.is_uppercase()),
            text: text.to_string(),
        }
    }
}

/// Abbreviations whose trailing period belongs to the token.
const ABBREVIATIONS: &[&str] = &["prof.", "dr.", "mr.", "ms.", "st."];

/// True if `word` looks like a date or number literal (kept whole).
pub fn is_numeric_like(word: &str) -> bool {
    !word.is_empty()
        && word
            .chars()
            .all(|c| c.is_ascii_digit() || c == '-' || c == '.' || c == ',')
        && word.chars().any(|c| c.is_ascii_digit())
}

/// Tokenizes one sentence.
pub fn tokenize(sentence: &str) -> Vec<Token> {
    let mut out = Vec::new();
    for raw in sentence.split_whitespace() {
        let mut word = raw;
        // Strip leading punctuation.
        word = word.trim_start_matches(|c: char| !c.is_alphanumeric());
        if word.is_empty() {
            continue;
        }
        // Strip trailing punctuation, except for abbreviations and numerics.
        let lower = word.to_lowercase();
        if ABBREVIATIONS.contains(&lower.as_str()) {
            out.push(Token::new(word));
            continue;
        }
        if is_numeric_like(word.trim_end_matches('.')) {
            out.push(Token::new(word.trim_end_matches('.')));
            continue;
        }
        let trimmed = word.trim_end_matches(|c: char| !c.is_alphanumeric());
        if !trimmed.is_empty() {
            out.push(Token::new(trimmed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_strips_punctuation() {
        let toks = tokenize("Brusa Klinberg lectured at Velmora University.");
        let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            words,
            vec!["Brusa", "Klinberg", "lectured", "at", "Velmora", "University"]
        );
    }

    #[test]
    fn keeps_abbreviations() {
        let toks = tokenize("Prof. Klinberg taught here.");
        assert_eq!(toks[0].text, "Prof.");
        assert!(toks[0].capitalized);
    }

    #[test]
    fn keeps_dates_whole() {
        let toks = tokenize("She was born on 1879-03-14.");
        assert_eq!(toks.last().unwrap().text, "1879-03-14");
        assert!(is_numeric_like("1879-03-14"));
        assert!(!is_numeric_like("abc"));
        assert!(!is_numeric_like("-"));
    }

    #[test]
    fn lowercase_forms() {
        let toks = tokenize("The Committee met.");
        assert_eq!(toks[0].lower, "the");
        assert_eq!(toks[1].lower, "committee");
        assert!(toks[1].capitalized);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ...  ").is_empty());
    }
}
