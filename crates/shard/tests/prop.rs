//! Property tests for partitioned execution.
//!
//! The headline property — the acceptance bar of the sharding subsystem:
//! **sharded execution returns answers score-equal to the single-store
//! engine** on arbitrary stores, multi-pattern (join) queries, and
//! relaxation rule sets, at 1, 2, 4, and 7 shards, with and without the
//! parallel per-shard seed phase. Both sides run the *same* top-k
//! configuration, so the comparison is exact (no rewriting-budget
//! mismatch to tolerate); only membership of a trailing tied-score group
//! is tie-break detail.

use proptest::prelude::*;

use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::Query;
use trinit_relax::{QPattern, QTerm, Rule, RuleProvenance, RuleSet, VarId};
use trinit_shard::{SeedMode, ShardedExecutor, ShardedStore};
use trinit_xkg::{Provenance, SourceId, TermId, TermKind, Triple, XkgBuilder};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

/// A random store over a small universe: up to `max_triples` triples
/// with random confidences and supports.
fn store_strategy(
    universe: u32,
    max_triples: usize,
) -> impl Strategy<Value = Vec<(u32, u32, u32, f32, u8)>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0..universe, 0.05f32..1.0, 0u8..4),
        1..max_triples,
    )
}

fn builder_from(rows: &[(u32, u32, u32, f32, u8)]) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    for &(s, p, o, conf, support) in rows {
        let mut prov = Provenance::extraction(conf, SourceId(0));
        prov.support = u32::from(support) + 1;
        b.add(Triple::new(tid(s), tid(p), tid(o)), prov);
    }
    b
}

fn query_from(patterns: Vec<QPattern>, k: usize) -> Query {
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);
    Query {
        patterns,
        projection: Vec::new(),
        k,
        var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
        unknown_terms: Vec::new(),
    }
}

fn qterm(vars: u16, universe: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn pattern_strategy(vars: u16, universe: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, universe),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, universe),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rules_strategy(universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0.15f64..1.0, proptest::bool::ANY).prop_map(
            |(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            },
        ),
        0..4,
    )
}

use trinit_shard::testkit::assert_answers_score_equivalent as assert_answers_equivalent;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sharded ≡ single-store on multi-pattern queries with relaxation,
    /// across shard counts and seed modes.
    #[test]
    fn sharded_execution_equals_single_store(
        rows in store_strategy(6, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 6), 1..4),
        rules in rules_strategy(6),
        k in 1usize..12,
    ) {
        let single = builder_from(&rows).build();
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let query = query_from(patterns, k);
        let (mono, _) = topk::run(&single, &query, &set, &cfg);
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            let exec = ShardedExecutor::new(&sharded);
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let run = exec.run(&query, &set, &cfg, mode);
                assert_answers_equivalent(&run.answers, &mono);
            }
        }
    }

    /// The tightened threshold stays answer-invisible under sharding,
    /// exactly as it is on the monolith.
    #[test]
    fn sharded_tightening_preserves_answers(
        rows in store_strategy(5, 30),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let set: RuleSet = rules.into_iter().collect();
        let query = query_from(patterns, k);
        let sharded = ShardedStore::build(builder_from(&rows), 3);
        let exec = ShardedExecutor::new(&sharded);
        let tight = exec.run(
            &query,
            &set,
            &TopkConfig { tighten_threshold: true, ..TopkConfig::default() },
            SeedMode::Off,
        );
        let loose = exec.run(
            &query,
            &set,
            &TopkConfig { tighten_threshold: false, ..TopkConfig::default() },
            SeedMode::Off,
        );
        assert_answers_equivalent(&tight.answers, &loose.answers);
    }
}
