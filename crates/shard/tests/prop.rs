//! Property tests for partitioned execution.
//!
//! The headline property — the acceptance bar of the sharding subsystem:
//! **sharded execution returns answers score-equal to the single-store
//! engine** on arbitrary stores, multi-pattern (join) queries, and
//! relaxation rule sets, at 1, 2, 4, and 7 shards, with and without the
//! parallel per-shard seed phase. Both sides run the *same* top-k
//! configuration, so the comparison is exact (no rewriting-budget
//! mismatch to tolerate); only membership of a trailing tied-score group
//! is tie-break detail.

use proptest::prelude::*;

use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::{Completeness, ExecBudget, Query};
use trinit_relax::{QPattern, QTerm, Rule, RuleProvenance, RuleSet, VarId};
use trinit_shard::{SeedMode, ShardedExecutor, ShardedStore};
use trinit_xkg::{PostingList, Provenance, SlotPattern, SourceId, TermId, TermKind, Triple, XkgBuilder};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

/// A random store over a small universe: up to `max_triples` triples
/// with random confidences and supports.
fn store_strategy(
    universe: u32,
    max_triples: usize,
) -> impl Strategy<Value = Vec<(u32, u32, u32, f32, u8)>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0..universe, 0.05f32..1.0, 0u8..4),
        1..max_triples,
    )
}

fn builder_from(rows: &[(u32, u32, u32, f32, u8)]) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    for &(s, p, o, conf, support) in rows {
        let mut prov = Provenance::extraction(conf, SourceId(0));
        prov.support = u32::from(support) + 1;
        b.add(Triple::new(tid(s), tid(p), tid(o)), prov);
    }
    b
}

fn query_from(patterns: Vec<QPattern>, k: usize) -> Query {
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);
    Query {
        patterns,
        projection: Vec::new(),
        k,
        var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
        unknown_terms: Vec::new(),
    }
}

fn qterm(vars: u16, universe: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn pattern_strategy(vars: u16, universe: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, universe),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, universe),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rules_strategy(universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0.15f64..1.0, proptest::bool::ANY).prop_map(
            |(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            },
        ),
        0..4,
    )
}

use trinit_shard::testkit::assert_answers_score_equivalent as assert_answers_equivalent;

/// Zero-mass match sets under sharding: a repeated-variable (masked)
/// pattern whose filtered matches all weigh 0 gets a global total of 0,
/// so the tightened engine's 0 head bound skips the stream outright.
/// That skip is only sound because masked zero-mass lists serve empty —
/// tightened, untightened, and the monolithic engine must agree.
#[test]
fn sharded_zero_mass_repeated_variable_agrees_with_monolith() {
    let build = || {
        let mut b = XkgBuilder::new();
        // Positive-weight background facts plus zero-weight self-loops
        // spread across subjects (hence shards).
        for i in 0..8u32 {
            b.add(
                Triple::new(tid(100 + i), tid(0), tid(200 + i)),
                Provenance::extraction(0.5, SourceId(0)),
            );
            b.add(
                Triple::new(tid(300 + i), tid(1), tid(300 + i)),
                Provenance::extraction(0.0, SourceId(0)),
            );
        }
        b
    };
    let single = build().build();
    let v = QTerm::Var(VarId(0));
    // `?x p1 ?x` filters to the zero-weight self-loops only.
    let query = query_from(vec![QPattern::new(v, QTerm::Term(tid(1)), v)], 10);
    let cfg_tight = TopkConfig::default();
    let cfg_loose = TopkConfig {
        tighten_threshold: false,
        ..TopkConfig::default()
    };
    let (mono, _) = topk::run(&single, &query, &RuleSet::new(), &cfg_tight);
    assert!(mono.is_empty(), "zero-mass sets emit nothing");
    for shards in [2usize, 4] {
        let sharded = ShardedStore::build(build(), shards);
        let exec = ShardedExecutor::new(&sharded);
        for cfg in [&cfg_tight, &cfg_loose] {
            let run = exec.run(&query, &RuleSet::new(), cfg, SeedMode::Off);
            assert_answers_equivalent(&run.answers, &mono);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Sharded ≡ single-store on multi-pattern queries with relaxation,
    /// across shard counts and seed modes.
    #[test]
    fn sharded_execution_equals_single_store(
        rows in store_strategy(6, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 6), 1..4),
        rules in rules_strategy(6),
        k in 1usize..12,
    ) {
        let single = builder_from(&rows).build();
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let query = query_from(patterns, k);
        let (mono, _) = topk::run(&single, &query, &set, &cfg);
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            let exec = ShardedExecutor::new(&sharded);
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let run = exec.run(&query, &set, &cfg, mode);
                assert_answers_equivalent(&run.answers, &mono);
            }
        }
    }

    /// Anchored-index-served posting lists are entry-for-entry equal to
    /// the materialize-and-sort reference on **every shard slice** —
    /// all 8 pattern shapes, monolithic and at 1/2/4/7 shards. (The
    /// monolithic variant lives in `crates/xkg/tests/prop.rs`; this one
    /// pins that per-shard stores built by the partitioner behave
    /// identically on their slices.)
    #[test]
    fn anchored_lists_equal_scan_reference_on_every_shard(
        rows in store_strategy(6, 40),
        s in 0u32..6,
        p in 0u32..6,
        o in 0u32..6,
    ) {
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            for shard in sharded.shards() {
                for mask in 0u8..8 {
                    let pattern = SlotPattern::new(
                        (mask & 1 != 0).then_some(tid(s)),
                        (mask & 2 != 0).then_some(tid(p)),
                        (mask & 4 != 0).then_some(tid(o)),
                    );
                    let indexed = PostingList::build(shard, &pattern);
                    let reference = PostingList::build_by_scan(shard, &pattern);
                    prop_assert_eq!(indexed.len(), reference.len(), "shape {:#05b}", mask);
                    for (a, b) in indexed.entries().iter().zip(reference.entries()) {
                        prop_assert_eq!(a.triple, b.triple, "order, shape {:#05b}", mask);
                        prop_assert_eq!(a.weight, b.weight);
                        prop_assert!((a.prob - b.prob).abs() <= 1e-12);
                    }
                    for upto in 0..=indexed.len() {
                        prop_assert!(
                            (indexed.prefix_weight(upto) - reference.prefix_weight(upto)).abs()
                                < 1e-9
                        );
                    }
                }
            }
        }
    }

    /// Cross-shard tie order is pinned to the deterministic
    /// (score desc, key asc) order `into_top_k` promises: with no k-cut,
    /// answers with bit-equal scores from *different shards* interleave
    /// in exactly the monolith's key order (never shard-major emission
    /// order); with a cut inside a tied group, everything above the
    /// boundary matches the monolith exactly and the returned tied run
    /// is still key-ascending. Weights are small integers (conf 1.0) so
    /// every normalization total and probability is computed on
    /// identical operands mono and sharded, making scores bit-equal and
    /// the assertions exact. (Which members of the boundary tie survive
    /// the cut is emission-order tie-break detail, documented in
    /// `testkit::assert_answers_score_equivalent`.)
    #[test]
    fn cross_shard_ties_keep_deterministic_key_order(
        supports in proptest::collection::vec(1u8..4, 8..24),
        k in 1usize..10,
    ) {
        let build = |supports: &[u8]| {
            let mut b = XkgBuilder::new();
            for (i, &sup) in supports.iter().enumerate() {
                // Many subjects → different shards; one shared object so
                // an op-bound pattern spans every shard. Repeating
                // support values manufactures exact score ties.
                let mut prov = Provenance::kg();
                prov.support = u32::from(sup);
                b.add(
                    Triple::new(tid(100 + i as u32), tid(0), tid(50)),
                    prov,
                );
            }
            b
        };
        let single = build(&supports).build();
        let pattern = QPattern::new(
            QTerm::Var(VarId(0)),
            QTerm::Term(tid(0)),
            QTerm::Term(tid(50)),
        );
        let cfg = TopkConfig::default();

        // No cut (k ≥ distinct answers): the full sequences must be
        // identical — cross-shard ties interleave by key, not by shard.
        let full_query = query_from(vec![pattern], 1000);
        let (mono_full, _) = topk::run(&single, &full_query, &RuleSet::new(), &cfg);
        // Cut inside ties: the prefix above the boundary score is exact.
        let cut_query = query_from(vec![pattern], k);
        let (mono_cut, _) = topk::run(&single, &cut_query, &RuleSet::new(), &cfg);

        for shards in [2usize, 4, 7] {
            let sharded = ShardedStore::build(build(&supports), shards);
            let exec = ShardedExecutor::new(&sharded);
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let full = exec.run(&full_query, &RuleSet::new(), &cfg, mode);
                prop_assert_eq!(full.answers.len(), mono_full.len());
                for (a, b) in full.answers.iter().zip(&mono_full) {
                    prop_assert_eq!(
                        &a.key, &b.key,
                        "uncut tie order diverged at {} shards ({:?})", shards, mode
                    );
                    prop_assert_eq!(a.score, b.score, "scores must be bit-equal");
                }

                let cut = exec.run(&cut_query, &RuleSet::new(), &cfg, mode);
                prop_assert_eq!(cut.answers.len(), mono_cut.len());
                let boundary = mono_cut.last().map(|a| a.score);
                for (a, b) in cut.answers.iter().zip(&mono_cut) {
                    prop_assert_eq!(a.score, b.score, "scores must be bit-equal");
                    if Some(a.score) != boundary {
                        prop_assert_eq!(&a.key, &b.key, "order above the tie boundary");
                    }
                }
                // Within the returned ranking, every tied run is in
                // ascending key order — the promise `into_top_k` makes.
                for w in cut.answers.windows(2) {
                    if w[0].score == w[1].score {
                        prop_assert!(w[0].key < w[1].key, "tied run not key-sorted");
                    }
                }
            }
        }
    }

    /// The tightened threshold stays answer-invisible under sharding,
    /// exactly as it is on the monolith.
    #[test]
    fn sharded_tightening_preserves_answers(
        rows in store_strategy(5, 30),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let set: RuleSet = rules.into_iter().collect();
        let query = query_from(patterns, k);
        let sharded = ShardedStore::build(builder_from(&rows), 3);
        let exec = ShardedExecutor::new(&sharded);
        let tight = exec.run(
            &query,
            &set,
            &TopkConfig { tighten_threshold: true, ..TopkConfig::default() },
            SeedMode::Off,
        );
        let loose = exec.run(
            &query,
            &set,
            &TopkConfig { tighten_threshold: false, ..TopkConfig::default() },
            SeedMode::Off,
        );
        assert_answers_equivalent(&tight.answers, &loose.answers);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ε-approximate guarantee under sharding, at 1/2/4/7 shards
    /// and both seed modes: rank-wise the sharded approximate ranking
    /// is within ε of the *monolithic exact* ranking in probability
    /// space, and ε = 0 stays answer-identical (bit-equal scores) and
    /// pull-count-identical to the sharded exact engine.
    #[test]
    fn sharded_epsilon_within_eps_of_exact_monolith(
        rows in store_strategy(5, 32),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
        eps_pick in proptest::bool::ANY,
    ) {
        let eps = if eps_pick { 0.05 } else { 0.01 };
        let single = builder_from(&rows).build();
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let query = query_from(patterns, k);
        let (mono, _) = topk::run(&single, &query, &set, &cfg);
        let approx_cfg = TopkConfig { epsilon: eps, ..cfg.clone() };
        let eps0_cfg = TopkConfig { epsilon: 0.0, ..cfg.clone() };
        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            let exec = ShardedExecutor::new(&sharded);
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let exact_run = exec.run(&query, &set, &cfg, mode);
                let approx_run = exec.run(&query, &set, &approx_cfg, mode);
                for (r, e) in mono.iter().enumerate() {
                    let pe = e.score.exp();
                    let pa = approx_run.answers.get(r).map_or(0.0, |a| a.score.exp());
                    prop_assert!(
                        pa >= pe - eps - 1e-9,
                        "{} shards ({:?}), rank {}: approx {} not within ε={} of exact {}",
                        shards, mode, r, pa, eps, pe
                    );
                }
                prop_assert!(
                    approx_run.metrics.pulls <= exact_run.metrics.pulls,
                    "{} shards ({:?}): ε pulled more ({} > {})",
                    shards, mode, approx_run.metrics.pulls, exact_run.metrics.pulls
                );
                // ε = 0: bit-identical to the sharded exact engine.
                let eps0_run = exec.run(&query, &set, &eps0_cfg, mode);
                prop_assert_eq!(eps0_run.answers.len(), exact_run.answers.len());
                for (a, b) in eps0_run.answers.iter().zip(&exact_run.answers) {
                    prop_assert_eq!(&a.key, &b.key);
                    prop_assert_eq!(a.score, b.score, "ε=0 changed a sharded score");
                }
                prop_assert_eq!(
                    eps0_run.metrics.pulls, exact_run.metrics.pulls,
                    "ε=0 changed sharded pull counts"
                );
                prop_assert_eq!(eps0_run.metrics.approx_cutoffs, 0);
            }
        }
    }

    /// The work-stealing batch scheduler is answer-invisible: for
    /// arbitrary stores, rule sets, and query batches, stolen execution
    /// returns exactly what per-query execution returns, at every
    /// worker count.
    #[test]
    fn stolen_batches_equal_per_query_execution(
        rows in store_strategy(5, 32),
        patterns_a in pattern_strategy(3, 5),
        patterns_b in pattern_strategy(3, 5),
        rules in rules_strategy(5),
        k in 1usize..8,
        workers in 1usize..5,
    ) {
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let queries = vec![
            query_from(vec![patterns_a], k),
            query_from(vec![patterns_b], k + 1),
            query_from(vec![patterns_a, patterns_b], k),
        ];
        for shards in [2usize, 3] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            let exec = ShardedExecutor::new(&sharded);
            let runs = exec.run_batch_stealing(&queries, &set, &cfg, workers);
            prop_assert_eq!(runs.len(), queries.len());
            for (run, q) in runs.iter().zip(&queries) {
                let run = run.as_ref().expect("no worker panicked");
                let want = exec.run(q, &set, &cfg, SeedMode::Off);
                assert_answers_equivalent(&run.answers, &want.answers);
            }
        }
    }

    /// Budget governance is free when nothing binds: ε = 0 under an
    /// effectively infinite budget is **bit-identical** to the
    /// ungoverned exact path — same answers, same scores, same pull
    /// counts — monolithic and at 1/2/4/7 shards in both seed modes,
    /// and every run is labeled [`Completeness::Exact`].
    #[test]
    fn governed_unlimited_budget_is_bit_identical_to_exact(
        rows in store_strategy(5, 32),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        // Limits present (the governed code path is exercised) but
        // unreachable: one hour and half the address space of pulls.
        let governed_cfg = TopkConfig {
            epsilon: 0.0,
            budget: ExecBudget {
                deadline: Some(std::time::Duration::from_secs(3600)),
                max_pulls: Some(usize::MAX / 2),
                ..ExecBudget::default()
            },
            ..cfg.clone()
        };
        let query = query_from(patterns, k);

        let single = builder_from(&rows).build();
        let (mono, m_mono) = topk::run(&single, &query, &set, &cfg);
        let governed = topk::run_governed(&single, &query, &set, &governed_cfg, None);
        prop_assert_eq!(governed.answers.len(), mono.len());
        for (a, b) in governed.answers.iter().zip(&mono) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(a.score, b.score, "governed run changed a monolithic score");
        }
        prop_assert_eq!(
            governed.metrics.pulls, m_mono.pulls,
            "governed run changed monolithic pull counts"
        );
        prop_assert_eq!(governed.completeness, Completeness::Exact);
        prop_assert_eq!(governed.metrics.degradation_steps, 0);

        for shards in [1usize, 2, 4, 7] {
            let sharded = ShardedStore::build(builder_from(&rows), shards);
            let exec = ShardedExecutor::new(&sharded);
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let exact_run = exec.run(&query, &set, &cfg, mode);
                let gov_run = exec.run(&query, &set, &governed_cfg, mode);
                prop_assert_eq!(gov_run.answers.len(), exact_run.answers.len());
                for (a, b) in gov_run.answers.iter().zip(&exact_run.answers) {
                    prop_assert_eq!(&a.key, &b.key);
                    prop_assert_eq!(
                        a.score, b.score,
                        "budget changed a sharded score at {} shards ({:?})", shards, mode
                    );
                }
                prop_assert_eq!(
                    gov_run.metrics.pulls, exact_run.metrics.pulls,
                    "budget changed sharded pull counts at {} shards ({:?})", shards, mode
                );
                prop_assert_eq!(gov_run.completeness, Completeness::Exact);
            }
        }
    }
}
