//! Fault-injection robustness suite (feature `faults`).
//!
//! Drives the deterministic harness in `trinit_query::faults` against
//! the work-stealing batch scheduler: any single task's panic must be
//! isolated to its own query, deterministic seeds must replay, and
//! budgeted runs must hold their deadline under injected latency.

#![cfg(feature = "faults")]

use std::time::{Duration, Instant};

use trinit_query::exec::topk::TopkConfig;
use trinit_query::faults::{FaultPlan, FaultScope};
use trinit_query::{Completeness, CutoffReason, ExecBudget, ExecError, Query, QueryBuilder};
use trinit_relax::{Rule, RuleProvenance, RuleSet};
use trinit_shard::{SeedMode, ShardedExecutor, ShardedStore};
use trinit_xkg::XkgBuilder;

fn builder() -> XkgBuilder {
    let mut b = XkgBuilder::new();
    for i in 0..24u32 {
        b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
        b.add_kg_resources(&format!("y{i}"), "q", &format!("z{}", i % 5));
    }
    let src = b.intern_source("doc");
    for i in 0..10u32 {
        let s = b.dict_mut().resource(&format!("x{i}"));
        let p = b.dict_mut().token("close to");
        let o = b.dict_mut().resource(&format!("y{}", (i + 5) % 24));
        b.add_extracted(s, p, o, 0.6, src);
    }
    b
}

fn rules(store: &trinit_xkg::XkgStore) -> RuleSet {
    let p = store.resource("p").unwrap();
    let close = store.token("close to").unwrap();
    let mut rules = RuleSet::new();
    rules.add(Rule::predicate_rewrite(
        "p ~ close to",
        p,
        close,
        0.7,
        RuleProvenance::UserDefined,
    ));
    rules
}

/// Open (variable-subject) queries, so every query seeds every shard
/// and any (query, shard) pair is a live injection target.
fn open_queries(single: &trinit_xkg::XkgStore, n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            QueryBuilder::new(single)
                .pattern_v_r_v("a", "p", "b")
                .limit(3 + i)
                .build()
        })
        .collect()
}

#[test]
fn batch_survives_any_single_seed_task_panic() {
    let single = builder().build();
    let rules = rules(&single);
    let shards = 3;
    let sharded = ShardedStore::build(builder(), shards);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 4);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| exec.run(q, &rules, &cfg, SeedMode::Off).answers)
        .collect();

    // Exhaustive: panic every single (query, shard) seed task in turn.
    for victim_q in 0..queries.len() {
        for victim_shard in 0..shards {
            let _scope = FaultScope::install(FaultPlan {
                seed_panics: vec![(victim_q, victim_shard)],
                ..FaultPlan::default()
            });
            let runs = exec.run_batch_stealing(&queries, &rules, &cfg, 3);
            assert_eq!(runs.len(), queries.len());
            for (qi, run) in runs.iter().enumerate() {
                if qi == victim_q {
                    let err = run.as_ref().expect_err("victim query must error");
                    let ExecError::WorkerPanicked { context, payload } = err;
                    assert!(
                        context.contains(&format!("query {victim_q}, shard {victim_shard}")),
                        "context was: {context}"
                    );
                    assert!(payload.contains("injected fault"), "payload was: {payload}");
                } else {
                    let run = run.as_ref().expect("bystander query must complete");
                    trinit_shard::testkit::assert_answers_score_equivalent(
                        &run.answers,
                        &expected[qi],
                    );
                }
            }
        }
    }
}

#[test]
fn merge_panic_poisons_only_its_query() {
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 2);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 3);
    let _scope = FaultScope::install(FaultPlan {
        merge_panics: vec![1],
        ..FaultPlan::default()
    });
    let runs = exec.run_batch_stealing(&queries, &rules, &cfg, 2);
    let err = runs[1].as_ref().expect_err("merge victim must error");
    let ExecError::WorkerPanicked { context, .. } = err;
    assert!(context.contains("merge phase (query 1)"), "context: {context}");
    for qi in [0, 2] {
        let run = runs[qi].as_ref().expect("bystanders complete");
        assert!(!run.answers.is_empty());
    }
}

#[test]
fn probabilistic_injection_replays_from_its_seed() {
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 3);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 5);
    let outcome_shape = |seed: u64| -> Vec<bool> {
        let _scope = FaultScope::install(FaultPlan {
            seed_panic_seed: seed,
            seed_panic_prob: 0.4,
            ..FaultPlan::default()
        });
        exec.run_batch_stealing(&queries, &rules, &cfg, 2)
            .iter()
            .map(Result::is_ok)
            .collect()
    };
    let first = outcome_shape(7);
    assert!(
        first.iter().any(|ok| !ok),
        "prob 0.4 over 15 tasks should poison something"
    );
    assert_eq!(first, outcome_shape(7), "same seed must replay identically");
}

#[test]
fn deadline_holds_under_injected_pull_latency() {
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 2);
    let exec = ShardedExecutor::new(&sharded);
    let deadline = Duration::from_millis(25);
    let cfg = TopkConfig {
        budget: ExecBudget {
            deadline: Some(deadline),
            ..ExecBudget::default()
        },
        ..TopkConfig::default()
    };
    let q = QueryBuilder::new(&single)
        .pattern_v_r_v("a", "p", "b")
        .limit(50)
        .build();
    let _scope = FaultScope::install(FaultPlan {
        pull_delay: Some(Duration::from_millis(3)),
        alloc_pressure: 1 << 16,
        ..FaultPlan::default()
    });
    let started = Instant::now();
    let run = exec.run(&q, &rules, &cfg, SeedMode::Off);
    let elapsed = started.elapsed();
    // The cutoff is checked per pull, so the run overshoots by at most
    // one injected pull plus scheduling noise — far below the exact
    // run's demand (dozens of 3 ms pulls).
    assert!(
        elapsed < deadline + Duration::from_millis(250),
        "run must respect its deadline: took {elapsed:?}"
    );
    assert!(
        matches!(
            run.completeness,
            Completeness::Truncated { reason: CutoffReason::Deadline, .. }
        ),
        "latency must trip the deadline: {:?}",
        run.completeness
    );
    assert!(run.metrics.deadline_cutoffs >= 1, "{:?}", run.metrics);
}

/// Injected per-pull latency must surface in the stage histograms: the
/// faulted batch's query-span p99 sits above the clean batch's by at
/// least the injected delay (order-insensitive — each batch records
/// into its own registry).
#[test]
fn injected_pull_latency_shifts_stage_histogram_p99() {
    use trinit_obs::{MetricsRegistry, Stage};
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 2);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 3);

    let record_batch = |faulted: bool| -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        let _scope = faulted.then(|| {
            FaultScope::install(FaultPlan {
                pull_delay: Some(Duration::from_millis(2)),
                ..FaultPlan::default()
            })
        });
        for run in exec.run_batch_stealing(&queries, &rules, &cfg, 2) {
            registry.record_trace(&run.expect("no panics planned").trace);
        }
        registry
    };

    // The seed tasks do the bulk of the pulls (the merge phase starts
    // from their preloaded collectors), so the injected delay lands in
    // the seed-task spans — one per (query, shard).
    let clean = record_batch(false);
    let slow = record_batch(true);
    assert_eq!(clean.stage(Stage::SeedTask).count(), 6);
    let clean_p99 = clean.stage(Stage::SeedTask).quantile(0.99);
    let slow_p99 = slow.stage(Stage::SeedTask).quantile(0.99);
    assert!(
        slow_p99 >= clean_p99 + 1_000_000,
        "2 ms per pull must lift the seed-span p99 by at least 1 ms: \
         clean {clean_p99} ns vs faulted {slow_p99} ns"
    );
}

/// A query that dies mid-merge still flushes the spans it completed:
/// the scheduler records the partial trace into the registry, so seed
/// work is never silently lost to a panic.
#[test]
fn panicked_queries_flush_partial_traces_to_the_registry() {
    use trinit_obs::{MetricsRegistry, Stage};
    let single = builder().build();
    let rules = rules(&single);
    let shards = 3;
    let sharded = ShardedStore::build(builder(), shards);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 1);
    let registry = MetricsRegistry::new();
    let _scope = FaultScope::install(FaultPlan {
        merge_panics: vec![0],
        ..FaultPlan::default()
    });
    let runs = exec.run_batch_stealing_observed(&queries, &rules, &cfg, 2, Some(&registry));
    assert!(runs[0].is_err(), "merge panic must poison the query");
    assert_eq!(
        registry.stage(Stage::SeedTask).count(),
        shards as u64,
        "every completed seed span flushes despite the merge panic"
    );
    assert_eq!(
        registry.stage(Stage::Merge).count(),
        0,
        "the merge span never completed"
    );
}

/// A budget-truncated run still carries a full trace, ending in the
/// cutoff event that explains *why* it stopped.
#[test]
fn truncated_runs_trace_their_cutoff() {
    use trinit_obs::Stage;
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 2);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig {
        budget: ExecBudget {
            deadline: Some(Duration::from_millis(10)),
            ..ExecBudget::default()
        },
        ..TopkConfig::default()
    };
    let q = QueryBuilder::new(&single)
        .pattern_v_r_v("a", "p", "b")
        .limit(50)
        .build();
    let _scope = FaultScope::install(FaultPlan {
        pull_delay: Some(Duration::from_millis(3)),
        ..FaultPlan::default()
    });
    let run = exec.run(&q, &rules, &cfg, SeedMode::Off);
    assert!(
        matches!(run.completeness, Completeness::Truncated { .. }),
        "latency must trip the deadline: {:?}",
        run.completeness
    );
    assert!(!run.trace.is_empty(), "truncated runs still trace");
    assert!(
        run.trace.stage_count(Stage::Cutoff) >= 1,
        "the trace records the cutoff: {:?}",
        run.trace
    );
    assert_eq!(run.trace.stage_count(Stage::Query), 1);
}

#[test]
fn unfaulted_runs_are_unaffected_by_a_cleared_plan() {
    let single = builder().build();
    let rules = rules(&single);
    let sharded = ShardedStore::build(builder(), 2);
    let exec = ShardedExecutor::new(&sharded);
    let cfg = TopkConfig::default();
    let queries = open_queries(&single, 2);
    {
        let _scope = FaultScope::install(FaultPlan {
            seed_panics: vec![(0, 0)],
            ..FaultPlan::default()
        });
        let runs = exec.run_batch_stealing(&queries, &rules, &cfg, 2);
        assert!(runs[0].is_err());
    }
    // Scope dropped: the same batch now completes cleanly.
    let runs = exec.run_batch_stealing(&queries, &rules, &cfg, 2);
    assert!(runs.iter().all(Result::is_ok), "cleared plan must not leak");
}
