//! Property tests for segmented (base + live delta) execution.
//!
//! The acceptance bar of live ingestion: **serving queries over the
//! frozen base plus the freshly ingested delta returns answers
//! score-equal to rebuilding the whole store from scratch** — on
//! arbitrary stores and batches, multi-pattern queries, and relaxation
//! rules, monolithic and at 1/2/4/7 shards — and **compacting the
//! delta changes nothing** but the serving topology. A second suite
//! pins the semi-naive delta-query seam: restricted runs surface
//! exactly the answers that use fresh evidence.

use std::collections::{BTreeMap, HashSet};

use proptest::prelude::*;

use trinit_query::exec::segmented::SegmentedExec;
use trinit_query::exec::sharded::run_partitioned;
use trinit_query::exec::topk::{self, TopkConfig};
use trinit_query::{Answer, BudgetTracker, Governor, Query};
use trinit_relax::{ConditionOracle, QPattern, QTerm, Rule, RuleProvenance, RuleSet, VarId};
use trinit_shard::{SeedMode, ShardedExecutor, ShardedStore};
use trinit_xkg::{
    Provenance, SegmentedStore, SlotPattern, SourceId, TermId, TermKind, Triple, XkgBuilder,
};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

type Row = (u32, u32, u32, f32, u8);

fn store_strategy(universe: u32, max_triples: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0..universe, 0.05f32..1.0, 0u8..4),
        1..max_triples,
    )
}

fn add_rows(b: &mut XkgBuilder, rows: &[Row]) {
    for &(s, p, o, conf, support) in rows {
        let mut prov = Provenance::extraction(conf, SourceId(0));
        prov.support = u32::from(support) + 1;
        b.add(Triple::new(tid(s), tid(p), tid(o)), prov);
    }
}

fn builder_from(rows: &[Row]) -> XkgBuilder {
    let mut b = XkgBuilder::new();
    add_rows(&mut b, rows);
    b
}

/// Delta rows that are genuinely new facts: re-observations of base
/// triples queue pending provenance absorbs (applied at compaction, by
/// design *not* reflected before it), so weight-equality with an
/// immediate from-scratch rebuild only holds for fresh facts.
fn fresh_rows(base: &[Row], delta: &[Row]) -> Vec<Row> {
    let seen: HashSet<(u32, u32, u32)> = base.iter().map(|r| (r.0, r.1, r.2)).collect();
    delta
        .iter()
        .filter(|r| !seen.contains(&(r.0, r.1, r.2)))
        .copied()
        .collect()
}

fn query_from(patterns: Vec<QPattern>, k: usize) -> Query {
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);
    Query {
        patterns,
        projection: Vec::new(),
        k,
        var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
        unknown_terms: Vec::new(),
    }
}

fn qterm(vars: u16, universe: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn pattern_strategy(vars: u16, universe: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, universe),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, universe),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rules_strategy(universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0.15f64..1.0, proptest::bool::ANY).prop_map(
            |(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            },
        ),
        0..4,
    )
}

use trinit_shard::testkit::assert_answers_score_equivalent as assert_answers_equivalent;

/// Monolithic segmented execution: the base and the delta view as two
/// slices of the partitioned pipeline, normalized by [`SegmentedExec`].
fn run_mono_segmented(
    seg: &SegmentedStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> Vec<Answer> {
    let Some(delta) = seg.delta_view() else {
        return topk::run(seg.base(), query, rules, cfg).0;
    };
    let base = seg.base();
    let slices = [base, delta];
    let offsets = [0u32, base.len() as u32];
    let exec = SegmentedExec::new(&slices, &offsets);
    let tracker = BudgetTracker::new(cfg);
    run_partitioned(
        &slices,
        &offsets,
        &exec,
        &exec,
        Some(&exec as &dyn ConditionOracle),
        query,
        rules,
        cfg,
        None,
        Vec::new(),
        Governor::primary(&tracker),
        None,
        &mut trinit_query::TraceRecorder::off(),
    )
    .answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ingest-then-serve ≡ rebuild-from-scratch, monolithic and at
    /// 1/2/4/7 shards with every seed mode — and compacting the delta
    /// preserves the answers bit-for-bit (modulo tie-break detail).
    #[test]
    fn segmented_serve_equals_from_scratch_rebuild(
        base_rows in store_strategy(6, 30),
        delta_rows in store_strategy(6, 12),
        patterns in proptest::collection::vec(pattern_strategy(3, 6), 1..3),
        rules in rules_strategy(6),
        k in 1usize..12,
    ) {
        let fresh = fresh_rows(&base_rows, &delta_rows);
        let mut union_rows = base_rows.clone();
        union_rows.extend(fresh.iter().copied());
        let union = builder_from(&union_rows).build();
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let query = query_from(patterns, k);
        let (want, _) = topk::run(&union, &query, &set, &cfg);

        // Monolithic segmented store.
        let mut seg = SegmentedStore::new(builder_from(&base_rows).build());
        seg.ingest(|b| add_rows(b, &fresh));
        assert_answers_equivalent(&run_mono_segmented(&seg, &query, &set, &cfg), &want);
        seg.compact();
        prop_assert!(seg.delta_view().is_none());
        assert_answers_equivalent(&run_mono_segmented(&seg, &query, &set, &cfg), &want);

        // Sharded store with live per-shard delta views.
        for shards in [1usize, 2, 4, 7] {
            let mut sharded = ShardedStore::build(builder_from(&base_rows), shards);
            sharded.ingest(|b| add_rows(b, &fresh));
            prop_assert_eq!(sharded.len(), union.len());
            for mode in [SeedMode::Off, SeedMode::Parallel] {
                let run = ShardedExecutor::new(&sharded).run(&query, &set, &cfg, mode);
                assert_answers_equivalent(&run.answers, &want);
            }
            sharded.compact();
            prop_assert!(!sharded.has_delta());
            let run = ShardedExecutor::new(&sharded).run(&query, &set, &cfg, SeedMode::Off);
            assert_answers_equivalent(&run.answers, &want);
        }
    }

    /// The slice union (base shards + delta views) serves exactly the
    /// rebuilt store's match set — triples *and* weights — for all 8
    /// pattern shapes, and the cross-slice aggregates (`count`,
    /// `pattern_total`) agree with direct sums over the rebuilt store.
    #[test]
    fn slice_union_matches_rebuild_for_all_shapes(
        base_rows in store_strategy(6, 30),
        delta_rows in store_strategy(6, 12),
        s in 0u32..6,
        p in 0u32..6,
        o in 0u32..6,
    ) {
        use trinit_query::GlobalTotals;
        let fresh = fresh_rows(&base_rows, &delta_rows);
        let mut union_rows = base_rows.clone();
        union_rows.extend(fresh.iter().copied());
        let union = builder_from(&union_rows).build();
        for shards in [1usize, 2, 4, 7] {
            let mut sharded = ShardedStore::build(builder_from(&base_rows), shards);
            sharded.ingest(|b| add_rows(b, &fresh));
            for mask in 0u8..8 {
                let pattern = SlotPattern::new(
                    (mask & 1 != 0).then_some(tid(s)),
                    (mask & 2 != 0).then_some(tid(p)),
                    (mask & 4 != 0).then_some(tid(o)),
                );
                let mut got: Vec<(Triple, u64)> = sharded
                    .shards()
                    .iter()
                    .chain(sharded.delta_slices().map(|(v, _)| v))
                    .flat_map(|slice| {
                        slice.lookup(&pattern).iter().map(|&id| {
                            (slice.triple(id), slice.provenance(id).weight().to_bits())
                        }).collect::<Vec<_>>()
                    })
                    .collect();
                got.sort();
                let mut want: Vec<(Triple, u64)> = union
                    .lookup(&pattern)
                    .iter()
                    .map(|&id| (union.triple(id), union.provenance(id).weight().to_bits()))
                    .collect();
                want.sort();
                prop_assert_eq!(&got, &want, "shape {:#05b} at {} shards", mask, shards);
                prop_assert_eq!(sharded.count(&pattern), want.len());
                // Cross-slice totals are explicit for every shape while
                // a delta is live (subject co-location is broken), and
                // equal the rebuilt store's direct sums.
                if sharded.has_delta() {
                    let total = sharded
                        .pattern_total(&(pattern, 0))
                        .expect("explicit totals under a live delta");
                    let direct: f64 =
                        want.iter().map(|(_, w)| f64::from_bits(*w)).sum();
                    prop_assert!((total - direct).abs() < 1e-9, "shape {:#05b}", mask);
                }
            }
        }
    }

    /// The semi-naive delta-query seam: every answer of a
    /// delta-restricted run carries at least one freshly ingested
    /// triple in its derivation, and every full-run answer whose
    /// derivation uses fresh evidence is surfaced — with its full-run
    /// score — by the union of the per-pattern restricted runs.
    #[test]
    fn delta_restricted_runs_surface_exactly_the_fresh_answers(
        base_rows in store_strategy(6, 30),
        delta_rows in store_strategy(6, 12),
        patterns in proptest::collection::vec(pattern_strategy(3, 6), 1..3),
        rules in rules_strategy(6),
    ) {
        let mut fresh = fresh_rows(&base_rows, &delta_rows);
        // Guarantee at least one genuinely new fact (term 50 is outside
        // the generated universe) so every case exercises the seam.
        fresh.push((50, 0, 1, 0.5, 1));
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        // k large enough to hold every answer of the tiny universe, so
        // no comparison trips over the k-cut.
        let query = query_from(patterns, 400);
        for shards in [2usize, 4] {
            let mut sharded = ShardedStore::build(builder_from(&base_rows), shards);
            sharded.ingest(|b| add_rows(b, &fresh));
            prop_assert!(sharded.has_delta());
            let base_total = (sharded.len() - sharded.delta_len()) as u32;
            let exec = ShardedExecutor::new(&sharded);
            let full = exec.run(&query, &set, &cfg, SeedMode::Off);
            let mut introduced: BTreeMap<Vec<(VarId, Option<TermId>)>, f64> = BTreeMap::new();
            for j in 0..query.patterns.len() {
                let tracker = BudgetTracker::new(&cfg);
                let run = exec.run_delta_restricted(&query, &set, &cfg, j, &tracker);
                for a in run.answers {
                    prop_assert!(
                        a.derivation.triples.iter().any(|(_, id)| id.0 >= base_total),
                        "restricted answer must use a delta triple"
                    );
                    let entry = introduced.entry(a.key.clone()).or_insert(f64::NEG_INFINITY);
                    *entry = entry.max(a.score);
                }
            }
            for a in &full.answers {
                if a.derivation.triples.iter().any(|(_, id)| id.0 >= base_total) {
                    let got = introduced
                        .get(&a.key)
                        .expect("fresh-evidence answer missing from restricted union");
                    prop_assert!(
                        (got - a.score).abs() < 1e-9,
                        "restricted score diverges: {} vs {}",
                        got,
                        a.score
                    );
                }
            }
        }
    }
}

/// Re-observing a frozen base triple queues a pending provenance
/// absorb (no delta entry, no index rebuild); compaction applies it.
#[test]
fn reobserved_base_triple_absorbs_at_compaction() {
    let rows: Vec<Row> = (0..12).map(|i| (i, 0, i % 4, 0.8, 1)).collect();
    let mut sharded = ShardedStore::build(builder_from(&rows), 3);
    let frozen_len = sharded.len();
    let appended = sharded.ingest(|b| {
        b.add(
            Triple::new(tid(5), tid(0), tid(1)),
            Provenance::extraction(0.9, SourceId(0)),
        );
    });
    assert_eq!(appended, 0, "re-observation must not enter the delta");
    assert!(!sharded.has_delta());
    assert_eq!(sharded.pending_absorbs(), 1);
    assert_eq!(sharded.len(), frozen_len);
    assert_eq!(sharded.generation(), 1);
    sharded.compact();
    assert_eq!(sharded.generation(), 2);
    assert_eq!(sharded.pending_absorbs(), 0);
    assert_eq!(sharded.len(), frozen_len, "absorb adds no triple");
    let slot = SlotPattern::new(Some(tid(5)), Some(tid(0)), Some(tid(1)));
    let home = tid(5).shard_of(3);
    let ids = sharded.shards()[home].lookup(&slot);
    // Base row carried support 2; the re-observation adds its own 1.
    assert_eq!(sharded.shards()[home].provenance(ids[0]).support, 3);
}

/// Terms first interned by an ingest batch resolve through the delta's
/// superset vocabulary, and their global ids resolve to real triples.
#[test]
fn delta_vocabulary_and_global_ids_extend_the_base() {
    let rows: Vec<Row> = (0..10).map(|i| (i, 0, i % 3, 0.7, 1)).collect();
    let mut sharded = ShardedStore::build(builder_from(&rows), 2);
    let frozen_len = sharded.len();
    let appended = sharded.ingest(|b| {
        // Subject 77 is outside the frozen universe.
        b.add(
            Triple::new(tid(77), tid(0), tid(1)),
            Provenance::extraction(0.6, SourceId(0)),
        );
    });
    assert_eq!(appended, 1);
    assert!(sharded.has_delta());
    assert_eq!(sharded.len(), frozen_len + 1);
    let (view, offset) = sharded
        .delta_slices()
        .next()
        .expect("one non-empty delta view");
    assert_eq!(view.len(), 1);
    let (local, t) = view.iter().next().unwrap();
    assert_eq!(t.s, tid(77));
    let gid = trinit_xkg::TripleId(offset + local.0);
    assert_eq!(sharded.triple(gid), t);
    assert!(sharded.ground_holds(tid(77), tid(0), tid(1)));
    assert!(!sharded.ground_holds(tid(77), tid(0), tid(2)));
}
