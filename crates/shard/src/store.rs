//! The sharded store: N subject-hash-partitioned [`XkgStore`] slices
//! behind one global façade.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use trinit_query::exec::TripleLookup;
use trinit_query::{satisfies_mask, CanonicalPattern, GlobalTotals};
use trinit_relax::ConditionOracle;
use trinit_xkg::{
    GraphTag, Provenance, SegmentLayout, SlotPattern, SourceId, TermDict, TermId, TermKind, Triple,
    TripleId, XkgBuilder, XkgStore,
};

/// N subject-hash-partitioned store shards sharing one term dictionary,
/// plus the global aggregates partitioned execution needs: per-predicate
/// and whole-store emission-weight totals (frozen at build time) and a
/// memo of scanned totals for pattern shapes that span shards.
///
/// Triple ids exposed by this type are **global**: shard `i`'s local id
/// `t` maps to `offsets[i] + t`. Term and source ids need no mapping —
/// the shards share one dictionary and source table.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<XkgStore>,
    /// Shard `i`'s base in the global triple-id space.
    offsets: Vec<u32>,
    /// Emission-weight total per predicate over the *base* shards
    /// (frozen at build time; delta contributions live in
    /// [`ShardedStore::delta_pred_totals`]).
    pred_totals: HashMap<TermId, f64>,
    /// Emission-weight total of the base shards.
    global_total: f64,
    /// Union of the base shards' predicates, ascending by term id.
    predicates: Vec<TermId>,
    len: usize,
    kg_len: usize,
    /// Memoized cross-shard totals for non-precomputed shapes
    /// (object-bound and repeated-variable patterns). Cleared on every
    /// mutation — memoized totals span the delta slices.
    totals_memo: Mutex<HashMap<CanonicalPattern, f64>>,
    /// Accumulates ingested triples between compactions. Its dictionary
    /// and source table are supersets of the shards' (same ids).
    delta: XkgBuilder,
    /// The delta re-frozen into subject-hash-partitioned views (same
    /// partitioning as the base shards, so subject co-location holds
    /// per segment pair); empty while the delta is empty.
    delta_views: Vec<XkgStore>,
    /// Delta view `i`'s base in the global triple-id space (delta ids
    /// follow every base id).
    delta_offsets: Vec<u32>,
    /// Emission-weight total per predicate over the delta views.
    delta_pred_totals: HashMap<TermId, f64>,
    /// Emission-weight total of the delta views.
    delta_global_total: f64,
    /// Distinct triples in the delta, and how many are KG-stratum.
    delta_len: usize,
    delta_kg_len: usize,
    /// Provenance merges for re-observed *base* triples, keyed by the
    /// global base id; applied at the next compaction.
    pending: Vec<(TripleId, Provenance)>,
    /// Bumped on every mutation (ingest or compact). Caches stamp
    /// entries with this and drop them when it moves.
    generation: u64,
    /// Wall time of the most recent ingest batch, in nanoseconds (`0`
    /// before the first ingest).
    last_ingest_ns: u64,
    /// Wall time of the most recent compaction, in nanoseconds (`0`
    /// before the first compaction).
    last_compact_ns: u64,
}

impl ShardedStore {
    /// Freezes `builder` into `shards` subject-hash-partitioned slices
    /// (see [`XkgBuilder::build_sharded`]) and aggregates the global
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build(builder: XkgBuilder, shards: usize) -> ShardedStore {
        ShardedStore::build_with(builder, shards, SegmentLayout::Flat)
    }

    /// [`ShardedStore::build`] with an explicit physical layout for the
    /// frozen base shards (`Packed` trades decode work for ~3–4× fewer
    /// index bytes; answers are identical bit for bit). The layout
    /// survives compaction; delta views are always rebuilt `Flat`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build_with(builder: XkgBuilder, shards: usize, layout: SegmentLayout) -> ShardedStore {
        ShardedStore::from_shards(builder.build_sharded_with(shards, layout))
    }

    /// Wraps already-built shards. They must share one term dictionary —
    /// i.e. come from one [`XkgBuilder::build_sharded`] call.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the shards do not share a
    /// dictionary.
    pub fn from_shards(shards: Vec<XkgStore>) -> ShardedStore {
        assert!(!shards.is_empty(), "at least one shard required");
        let dict = shards[0].dict_handle();
        for shard in &shards[1..] {
            assert!(
                Arc::ptr_eq(&dict, &shard.dict_handle()),
                "shards must share one term dictionary"
            );
        }
        let mut offsets = Vec::with_capacity(shards.len());
        let mut base: u64 = 0;
        for shard in &shards {
            // lint:allow(no-panic-hot-path): construction-time capacity guard — the global triple-id space is u32 by design
            offsets.push(u32::try_from(base).expect("global triple-id overflow"));
            base += shard.len() as u64;
        }
        let mut pred_totals: HashMap<TermId, f64> = HashMap::new();
        let mut global_total = 0.0;
        for shard in &shards {
            let index = shard.posting_index();
            for &p in shard.predicates() {
                *pred_totals.entry(p).or_insert(0.0) += index.predicate_total_weight(p);
            }
            global_total += index.total_weight();
        }
        let mut predicates: Vec<TermId> = pred_totals.keys().copied().collect();
        predicates.sort_unstable();
        let len = shards.iter().map(XkgStore::len).sum();
        let kg_len = shards.iter().map(|s| s.len_of(GraphTag::Kg)).sum();
        let delta = XkgBuilder::with_context(shards[0].dict().clone(), shards[0].sources());
        ShardedStore {
            shards,
            offsets,
            pred_totals,
            global_total,
            predicates,
            len,
            kg_len,
            totals_memo: Mutex::new(HashMap::new()),
            delta,
            delta_views: Vec::new(),
            delta_offsets: Vec::new(),
            delta_pred_totals: HashMap::new(),
            delta_global_total: 0.0,
            delta_len: 0,
            delta_kg_len: 0,
            pending: Vec::new(),
            generation: 0,
            last_ingest_ns: 0,
            last_compact_ns: 0,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard slices.
    #[inline]
    pub fn shards(&self) -> &[XkgStore] {
        &self.shards
    }

    /// One shard slice.
    #[inline]
    pub fn shard(&self, i: usize) -> &XkgStore {
        &self.shards[i]
    }

    /// Per-shard bases in the global triple-id space.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total number of distinct triples across shards and the delta.
    #[inline]
    pub fn len(&self) -> usize {
        self.len + self.delta_len
    }

    /// True if neither the shards nor the delta hold a triple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct triples in a stratum, across shards and the
    /// delta.
    pub fn len_of(&self, graph: GraphTag) -> usize {
        match graph {
            GraphTag::Kg => self.kg_len + self.delta_kg_len,
            GraphTag::Xkg => (self.len - self.kg_len) + (self.delta_len - self.delta_kg_len),
        }
    }

    /// The shared term dictionary of the frozen base shards. Terms
    /// interned by ingestion live only in the delta's superset
    /// dictionary — resolve vocabulary through
    /// [`ShardedStore::vocab`] instead when a delta may be live.
    #[inline]
    pub fn dict(&self) -> &TermDict {
        self.shards[0].dict()
    }

    /// The store to resolve vocabulary against: a delta view when the
    /// delta is non-empty (its dictionary is a superset of the base's,
    /// with identical ids for shared terms), base shard 0 otherwise.
    #[inline]
    pub fn vocab(&self) -> &XkgStore {
        self.delta_views.first().unwrap_or(&self.shards[0])
    }

    /// Looks up an existing resource term by name (either segment's
    /// vocabulary).
    pub fn resource(&self, name: &str) -> Option<TermId> {
        self.vocab().dict().get(TermKind::Resource, name)
    }

    /// Looks up an existing token term by phrase (either segment's
    /// vocabulary).
    pub fn token(&self, phrase: &str) -> Option<TermId> {
        self.vocab().dict().get(TermKind::Token, phrase)
    }

    /// Looks up an existing literal term by value (either segment's
    /// vocabulary).
    pub fn literal(&self, value: &str) -> Option<TermId> {
        self.vocab().dict().get(TermKind::Literal, value)
    }

    /// Union of the *base* shards' predicates, ascending by term id
    /// (predicates introduced by ingestion join at compaction).
    #[inline]
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// Global emission-weight total of one predicate's match set,
    /// across the base shards and the delta.
    pub fn predicate_total_weight(&self, p: TermId) -> f64 {
        self.pred_totals.get(&p).copied().unwrap_or(0.0)
            + self.delta_pred_totals.get(&p).copied().unwrap_or(0.0)
    }

    /// Resolves a *base-segment* global triple id to
    /// `(shard index, local id)`. Delta ids (at and above the base
    /// total) resolve through the triple accessors instead.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range of the base segment.
    pub fn resolve(&self, id: TripleId) -> (usize, TripleId) {
        let shard = self.offsets.partition_point(|&base| base <= id.0) - 1;
        let local = TripleId(id.0 - self.offsets[shard]);
        assert!(
            local.idx() < self.shards[shard].len(),
            "triple id {id:?} not issued by this store's base segment"
        );
        (shard, local)
    }

    /// Resolves any global triple id — base or delta — to its slice and
    /// slice-local id.
    fn slice_of(&self, id: TripleId) -> (&XkgStore, TripleId) {
        if (id.0 as usize) < self.len {
            let (shard, local) = self.resolve(id);
            return (&self.shards[shard], local);
        }
        assert!(
            !self.delta_views.is_empty(),
            "triple id {id:?} not issued by this store"
        );
        let i = self.delta_offsets.partition_point(|&base| base <= id.0) - 1;
        let local = TripleId(id.0 - self.delta_offsets[i]);
        assert!(
            local.idx() < self.delta_views[i].len(),
            "triple id {id:?} not issued by this store"
        );
        (&self.delta_views[i], local)
    }

    /// The global id of shard `i`'s local triple `t`.
    #[inline]
    pub fn global_id(&self, shard: usize, local: TripleId) -> TripleId {
        TripleId(self.offsets[shard] + local.0)
    }

    /// The triple with the given global id (base or delta).
    pub fn triple(&self, id: TripleId) -> Triple {
        let (slice, local) = self.slice_of(id);
        slice.triple(local)
    }

    /// Provenance of the triple with the given global id (base or
    /// delta).
    pub fn provenance(&self, id: TripleId) -> &Provenance {
        let (slice, local) = self.slice_of(id);
        slice.provenance(local)
    }

    /// Resolves a source id to its document identifier (the delta's
    /// source table is a superset of the shared base table).
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.vocab().source_name(id)
    }

    /// Renders a term for display (superset delta dictionary when one
    /// is live).
    pub fn display_term(&self, id: TermId) -> String {
        self.vocab().display_term(id)
    }

    /// Renders a triple with a global id in `S P O` form.
    pub fn display_triple(&self, id: TripleId) -> String {
        let (slice, local) = self.slice_of(id);
        slice.display_triple(local)
    }

    /// Exact number of triples matching `pattern`, across shards and
    /// the delta.
    pub fn count(&self, pattern: &SlotPattern) -> usize {
        match pattern.s {
            // Subject-bound patterns are co-located per segment: the
            // home base shard plus the home delta view.
            Some(s) => {
                let home = s.shard_of(self.shards.len());
                self.shards[home].count(pattern)
                    + self.delta_views.get(home).map_or(0, |v| v.count(pattern))
            }
            None => {
                self.shards.iter().map(|sh| sh.count(pattern)).sum::<usize>()
                    + self.delta_views.iter().map(|v| v.count(pattern)).sum::<usize>()
            }
        }
    }

    /// One slice's total emission weight for a (mask-filtered) pattern:
    /// the reference scan of lookup + repetition mask + provenance
    /// weights.
    fn slice_total(slice: &XkgStore, slot: &SlotPattern, mask: u8) -> f64 {
        slice
            .lookup(slot)
            .iter()
            .filter(|&&id| mask == 0 || satisfies_mask(slice, id, mask))
            .map(|&id| slice.provenance(id).weight())
            .sum()
    }

    /// Cross-shard total emission weight of a canonical pattern's
    /// (mask-filtered) match set — the slow path behind
    /// [`GlobalTotals::pattern_total`], memoized per store generation
    /// (the memo is cleared on every mutation). Spans the delta views.
    fn scan_total(&self, key: &CanonicalPattern) -> f64 {
        let (slot, mask) = *key;
        self.shards
            .iter()
            .chain(&self.delta_views)
            .map(|slice| ShardedStore::slice_total(slice, &slot, mask))
            .sum()
    }

    /// True if an ingested, not-yet-compacted delta is live. While it
    /// is, execution unions the delta views into the merge and global
    /// totals are explicit for every shape (subject matches split
    /// between a subject's home base shard and its home delta view).
    #[inline]
    pub fn has_delta(&self) -> bool {
        !self.delta_views.is_empty()
    }

    /// Number of triples currently in the delta segment.
    #[inline]
    pub fn delta_len(&self) -> usize {
        self.delta_len
    }

    /// Number of provenance merges queued for the next compaction.
    #[inline]
    pub fn pending_absorbs(&self) -> usize {
        self.pending.len()
    }

    /// The store generation: bumped by every [`ShardedStore::ingest`]
    /// and [`ShardedStore::compact`]. Two reads under the same
    /// generation observe an identical store.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The non-empty delta views with their global-id bases, in
    /// global-id order — the extra merge slices partitioned execution
    /// appends after the base shards.
    pub fn delta_slices(&self) -> impl Iterator<Item = (&XkgStore, u32)> {
        self.delta_views
            .iter()
            .zip(self.delta_offsets.iter().copied())
            .filter(|(view, _)| !view.is_empty())
    }

    /// Ingests a batch of triples: `fill` appends into a scratch
    /// builder whose dictionary/source table extend the current
    /// vocabulary, and the batch lands in the delta, which is re-frozen
    /// into subject-hash-partitioned views (the base shards are never
    /// rebuilt). Returns the number of *new* triples appended;
    /// re-observations of base triples are queued as pending provenance
    /// absorbs (applied at the next [`ShardedStore::compact`]), and
    /// re-observations of delta triples merge in place.
    pub fn ingest(&mut self, fill: impl FnOnce(&mut XkgBuilder)) -> usize {
        let ingest_start = trinit_obs::now_ns();
        let mut scratch = XkgBuilder::with_context(self.delta.dict().clone(), self.delta.sources());
        fill(&mut scratch);
        // Rebuild the delta under the scratch's (possibly grown)
        // dictionary so batch-interned terms resolve in the delta views.
        let mut next = XkgBuilder::with_context(scratch.dict().clone(), scratch.sources());
        for (t, p) in self.delta.triples().iter().zip(self.delta.provenances()) {
            next.add(*t, p.clone());
        }
        let n = self.shards.len();
        let mut appended = 0;
        for (t, p) in scratch.triples().iter().zip(scratch.provenances()) {
            let home = t.s.shard_of(n);
            let ground = SlotPattern::new(Some(t.s), Some(t.p), Some(t.o));
            if let Some(&local) = self.shards[home].lookup(&ground).first() {
                self.pending
                    .push((TripleId(self.offsets[home] + local.0), p.clone()));
            } else if next.add(*t, p.clone()).idx() == next.len() - 1 {
                appended += 1;
            }
        }
        self.delta = next;
        self.rebuild_delta_views();
        self.invalidate_memo();
        self.generation += 1;
        self.last_ingest_ns = trinit_obs::now_ns().saturating_sub(ingest_start);
        appended
    }

    /// Re-freezes the delta into the base shards: base triples, pending
    /// provenance absorbs, and delta triples merge into fresh
    /// subject-hash-partitioned shards with rebuilt strata and
    /// aggregates, and the delta empties. Global triple ids are
    /// reassigned.
    pub fn compact(&mut self) {
        let compact_start = trinit_obs::now_ns();
        let n = self.shards.len();
        let mut merged = XkgBuilder::with_context(self.delta.dict().clone(), self.delta.sources());
        for shard in &self.shards {
            for (id, t) in shard.iter() {
                merged.add(t, shard.provenance(id).clone());
            }
        }
        for (gid, prov) in std::mem::take(&mut self.pending) {
            let (shard, local) = self.resolve(gid);
            merged.add(self.shards[shard].triple(local), prov);
        }
        for (t, p) in self.delta.triples().iter().zip(self.delta.provenances()) {
            merged.add(*t, p.clone());
        }
        let generation = self.generation + 1;
        let last_ingest_ns = self.last_ingest_ns;
        // Compaction re-freezes into the base shards' configured layout
        // (delta views stay Flat — see `rebuild_delta_views`).
        let layout = self.shards[0].layout();
        *self = ShardedStore::from_shards(merged.build_sharded_with(n, layout));
        self.generation = generation;
        self.last_ingest_ns = last_ingest_ns;
        self.last_compact_ns = trinit_obs::now_ns().saturating_sub(compact_start);
    }

    /// Wall time of the most recent ingest batch, in nanoseconds (`0`
    /// before the first ingest).
    #[inline]
    pub fn last_ingest_ns(&self) -> u64 {
        self.last_ingest_ns
    }

    /// Wall time of the most recent compaction, in nanoseconds (`0`
    /// before the first compaction).
    #[inline]
    pub fn last_compact_ns(&self) -> u64 {
        self.last_compact_ns
    }

    /// Re-freezes the delta builder into partitioned views and
    /// recomputes the delta-side aggregates.
    fn rebuild_delta_views(&mut self) {
        self.delta_views.clear();
        self.delta_offsets.clear();
        self.delta_pred_totals.clear();
        self.delta_global_total = 0.0;
        self.delta_len = self.delta.len();
        self.delta_kg_len = self
            .delta
            .provenances()
            .iter()
            .filter(|p| p.graph == GraphTag::Kg)
            .count();
        if self.delta.is_empty() {
            return;
        }
        let views = self.delta.clone().build_sharded(self.shards.len());
        let mut base = self.len as u64;
        for view in &views {
            // lint:allow(no-panic-hot-path): ingestion-time capacity guard — the global triple-id space is u32 by design
            let offset = u32::try_from(base).expect("global triple-id overflow");
            self.delta_offsets.push(offset);
            base += view.len() as u64;
            let index = view.posting_index();
            for &p in view.predicates() {
                *self.delta_pred_totals.entry(p).or_insert(0.0) +=
                    index.predicate_total_weight(p);
            }
            self.delta_global_total += index.total_weight();
        }
        self.delta_views = views;
    }

    /// Drops every memoized cross-shard total — they embed delta mass,
    /// which just changed. Poison is cleared the same way
    /// [`GlobalTotals::pattern_total`] recovers it.
    fn invalidate_memo(&mut self) {
        match self.totals_memo.get_mut() {
            Ok(memo) => memo.clear(),
            Err(poisoned) => {
                poisoned.into_inner().clear();
                self.totals_memo.clear_poison();
            }
        }
    }
}

impl GlobalTotals for ShardedStore {
    fn pattern_total(&self, key: &CanonicalPattern) -> Option<f64> {
        let (slot, mask) = *key;
        if let Some(s) = slot.s {
            if self.delta_views.is_empty() {
                // Subject-bound, frozen: all matches are co-located, so
                // the shard's local total is already the global total.
                return None;
            }
            // With a live delta the subject's matches split between its
            // home base shard and its home delta view, so the total
            // must be explicit.
            let home = s.shard_of(self.shards.len());
            let delta_view = &self.delta_views[home];
            if mask == 0 && slot.p.is_none() && slot.o.is_none() {
                return Some(
                    self.shards[home].subject_total_weight(s)
                        + delta_view.subject_total_weight(s),
                );
            }
            return Some(
                ShardedStore::slice_total(&self.shards[home], &slot, mask)
                    + ShardedStore::slice_total(delta_view, &slot, mask),
            );
        }
        if mask == 0 {
            match (slot.p, slot.o) {
                (Some(p), None) => return Some(self.predicate_total_weight(p)),
                (None, None) => return Some(self.global_total + self.delta_global_total),
                // Object-anchored: each slice's object-group total is an
                // O(log n) prefix-sum read, so the global total is a sum
                // over slices instead of a memoized cross-shard scan —
                // and the shard-local lists themselves stay borrowed
                // slices (no per-shard materialization for anchored
                // lookups).
                (None, Some(o)) => {
                    return Some(
                        self.shards
                            .iter()
                            .chain(&self.delta_views)
                            .map(|sh| sh.object_total_weight(o))
                            .sum(),
                    )
                }
                _ => {}
            }
        }
        // Poison recovery: a panicking holder can at worst have left a
        // partially inserted memo entry; entries are immutable once
        // written and derived purely from the frozen store, so the memo
        // is dropped wholesale (totals recompute on demand) rather than
        // trusted — a cache-warmth loss, never an abort.
        let mut memo = match self.totals_memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.totals_memo.clear_poison();
                guard
            }
        };
        if let Some(&t) = memo.get(key) {
            return Some(t);
        }
        let t = self.scan_total(key);
        memo.insert(*key, t);
        Some(t)
    }
}

impl ConditionOracle for ShardedStore {
    fn ground_holds(&self, s: TermId, p: TermId, o: TermId) -> bool {
        // Subject-hash partitioning: a ground triple can only live in
        // its subject's base shard or its subject's delta view.
        let shard = s.shard_of(self.shards.len());
        let slot = SlotPattern::new(Some(s), Some(p), Some(o));
        self.shards[shard].count(&slot) > 0
            || self
                .delta_views
                .get(shard)
                .is_some_and(|v| v.count(&slot) > 0)
    }
}

impl TripleLookup for ShardedStore {
    #[inline]
    fn triple_of(&self, id: TripleId) -> Triple {
        self.triple(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_query::QPattern;
    use trinit_relax::{QTerm, VarId};

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..30u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
            b.add_kg_resources(&format!("s{i}"), "q", "hub");
        }
        let src = b.intern_source("doc");
        for i in 0..10u32 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let p = b.dict_mut().token("linked to");
            let o = b.dict_mut().resource(&format!("s{}", (i + 1) % 10));
            b.add_extracted(s, p, o, 0.5 + (i % 4) as f32 * 0.1, src);
        }
        // A self-loop for repeated-variable totals.
        b.add_kg_resources("loop", "p", "loop");
        b
    }

    #[test]
    fn global_aggregates_match_monolith() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 4);
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.len_of(GraphTag::Kg), single.len_of(GraphTag::Kg));
        assert_eq!(sharded.predicates(), single.predicates());
        let idx = single.posting_index();
        assert!((sharded.global_total - idx.total_weight()).abs() < 1e-9);
        for &p in single.predicates() {
            assert!(
                (sharded.predicate_total_weight(p) - idx.predicate_total_weight(p)).abs() < 1e-9,
                "predicate total diverges"
            );
        }
    }

    #[test]
    fn global_ids_resolve_across_shards() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 3);
        let mut seen = 0usize;
        for shard_idx in 0..sharded.shard_count() {
            for (local, t) in sharded.shard(shard_idx).iter().collect::<Vec<_>>() {
                let gid = sharded.global_id(shard_idx, local);
                assert_eq!(sharded.resolve(gid), (shard_idx, local));
                assert_eq!(sharded.triple(gid), t);
                assert_eq!(sharded.triple_of(gid), t);
                // Display and provenance agree with the monolith.
                let slot = SlotPattern::new(Some(t.s), Some(t.p), Some(t.o));
                let mono_id = single.lookup(&slot)[0];
                assert_eq!(sharded.display_triple(gid), single.display_triple(mono_id));
                assert_eq!(
                    sharded.provenance(gid).weight(),
                    single.provenance(mono_id).weight()
                );
                seen += 1;
            }
        }
        assert_eq!(seen, single.len());
    }

    #[test]
    fn condition_oracle_agrees_with_monolith() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 5);
        let p = single.resource("p").unwrap();
        let q = single.resource("q").unwrap();
        for i in 0..30u32 {
            let s = single.resource(&format!("s{i}")).unwrap();
            let o = single.resource(&format!("o{i}")).unwrap();
            let hub = single.resource("hub").unwrap();
            assert!(sharded.ground_holds(s, p, o));
            assert!(sharded.ground_holds(s, q, hub));
            assert!(!sharded.ground_holds(s, q, o));
        }
    }

    #[test]
    fn pattern_totals_are_global() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 4);
        let p = single.resource("p").unwrap();
        let v0 = QTerm::Var(VarId(0));
        let v1 = QTerm::Var(VarId(1));
        // Predicate-only: O(1) precomputed aggregate.
        let key = trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(p), v1));
        let expected = single.posting_index().predicate_total_weight(p);
        assert!((sharded.pattern_total(&key).unwrap() - expected).abs() < 1e-9);
        // Object-bound: memoized cross-shard scan.
        let hub = single.resource("hub").unwrap();
        let q = single.resource("q").unwrap();
        let obj_key =
            trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(q), QTerm::Term(hub)));
        let direct: f64 = single
            .lookup(&SlotPattern::new(None, Some(q), Some(hub)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&obj_key).unwrap() - direct).abs() < 1e-9);
        // Memo hit returns the same value.
        assert_eq!(
            sharded.pattern_total(&obj_key),
            sharded.pattern_total(&obj_key)
        );
        // Object-anchored (o-only): summed from the shards' O(log n)
        // object-group prefix columns, no scan.
        let hub_only_key =
            trinit_query::canonical_pattern(&QPattern::new(v0, v1, QTerm::Term(hub)));
        let direct_o: f64 = single
            .lookup(&SlotPattern::new(None, None, Some(hub)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&hub_only_key).unwrap() - direct_o).abs() < 1e-9);
        // Repeated-variable (self-loop) shape: filtered scan.
        let rep_key = trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(p), v0));
        let loop_s = single.resource("loop").unwrap();
        let loop_weight: f64 = single
            .lookup(&SlotPattern::new(Some(loop_s), Some(p), Some(loop_s)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&rep_key).unwrap() - loop_weight).abs() < 1e-9);
        // Subject-bound: local is global.
        let s0 = single.resource("s0").unwrap();
        let sub_key =
            trinit_query::canonical_pattern(&QPattern::new(QTerm::Term(s0), QTerm::Term(p), v1));
        assert_eq!(sharded.pattern_total(&sub_key), None);
    }

    #[test]
    fn counts_aggregate_across_shards() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 3);
        let p = single.resource("p").unwrap();
        assert_eq!(
            sharded.count(&SlotPattern::with_p(p)),
            single.count(&SlotPattern::with_p(p))
        );
        let s3 = single.resource("s3").unwrap();
        assert_eq!(
            sharded.count(&SlotPattern::new(Some(s3), None, None)),
            single.count(&SlotPattern::new(Some(s3), None, None))
        );
        assert_eq!(sharded.count(&SlotPattern::any()), single.len());
    }
}
