//! The sharded store: N subject-hash-partitioned [`XkgStore`] slices
//! behind one global façade.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use trinit_query::exec::TripleLookup;
use trinit_query::{satisfies_mask, CanonicalPattern, GlobalTotals};
use trinit_relax::ConditionOracle;
use trinit_xkg::{
    GraphTag, Provenance, SlotPattern, SourceId, TermDict, TermId, TermKind, Triple, TripleId,
    XkgBuilder, XkgStore,
};

/// N subject-hash-partitioned store shards sharing one term dictionary,
/// plus the global aggregates partitioned execution needs: per-predicate
/// and whole-store emission-weight totals (frozen at build time) and a
/// memo of scanned totals for pattern shapes that span shards.
///
/// Triple ids exposed by this type are **global**: shard `i`'s local id
/// `t` maps to `offsets[i] + t`. Term and source ids need no mapping —
/// the shards share one dictionary and source table.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<XkgStore>,
    /// Shard `i`'s base in the global triple-id space.
    offsets: Vec<u32>,
    /// Global emission-weight total per predicate (Σ over shards).
    pred_totals: HashMap<TermId, f64>,
    /// Global emission-weight total of the whole store.
    global_total: f64,
    /// Union of the shards' predicates, ascending by term id.
    predicates: Vec<TermId>,
    len: usize,
    kg_len: usize,
    /// Memoized cross-shard totals for non-precomputed shapes
    /// (object-bound and repeated-variable patterns).
    totals_memo: Mutex<HashMap<CanonicalPattern, f64>>,
}

impl ShardedStore {
    /// Freezes `builder` into `shards` subject-hash-partitioned slices
    /// (see [`XkgBuilder::build_sharded`]) and aggregates the global
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn build(builder: XkgBuilder, shards: usize) -> ShardedStore {
        ShardedStore::from_shards(builder.build_sharded(shards))
    }

    /// Wraps already-built shards. They must share one term dictionary —
    /// i.e. come from one [`XkgBuilder::build_sharded`] call.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the shards do not share a
    /// dictionary.
    pub fn from_shards(shards: Vec<XkgStore>) -> ShardedStore {
        assert!(!shards.is_empty(), "at least one shard required");
        let dict = shards[0].dict_handle();
        for shard in &shards[1..] {
            assert!(
                Arc::ptr_eq(&dict, &shard.dict_handle()),
                "shards must share one term dictionary"
            );
        }
        let mut offsets = Vec::with_capacity(shards.len());
        let mut base: u64 = 0;
        for shard in &shards {
            offsets.push(u32::try_from(base).expect("global triple-id overflow"));
            base += shard.len() as u64;
        }
        let mut pred_totals: HashMap<TermId, f64> = HashMap::new();
        let mut global_total = 0.0;
        for shard in &shards {
            let index = shard.posting_index();
            for &p in shard.predicates() {
                *pred_totals.entry(p).or_insert(0.0) += index.predicate_total_weight(p);
            }
            global_total += index.total_weight();
        }
        let mut predicates: Vec<TermId> = pred_totals.keys().copied().collect();
        predicates.sort_unstable();
        let len = shards.iter().map(XkgStore::len).sum();
        let kg_len = shards.iter().map(|s| s.len_of(GraphTag::Kg)).sum();
        ShardedStore {
            shards,
            offsets,
            pred_totals,
            global_total,
            predicates,
            len,
            kg_len,
            totals_memo: Mutex::new(HashMap::new()),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard slices.
    #[inline]
    pub fn shards(&self) -> &[XkgStore] {
        &self.shards
    }

    /// One shard slice.
    #[inline]
    pub fn shard(&self, i: usize) -> &XkgStore {
        &self.shards[i]
    }

    /// Per-shard bases in the global triple-id space.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total number of distinct triples across shards.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no shard holds a triple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct triples in a stratum, across shards.
    pub fn len_of(&self, graph: GraphTag) -> usize {
        match graph {
            GraphTag::Kg => self.kg_len,
            GraphTag::Xkg => self.len - self.kg_len,
        }
    }

    /// The shared term dictionary.
    #[inline]
    pub fn dict(&self) -> &TermDict {
        self.shards[0].dict()
    }

    /// Looks up an existing resource term by name.
    pub fn resource(&self, name: &str) -> Option<TermId> {
        self.dict().get(TermKind::Resource, name)
    }

    /// Looks up an existing token term by phrase.
    pub fn token(&self, phrase: &str) -> Option<TermId> {
        self.dict().get(TermKind::Token, phrase)
    }

    /// Looks up an existing literal term by value.
    pub fn literal(&self, value: &str) -> Option<TermId> {
        self.dict().get(TermKind::Literal, value)
    }

    /// Union of the shards' predicates, ascending by term id.
    #[inline]
    pub fn predicates(&self) -> &[TermId] {
        &self.predicates
    }

    /// Global emission-weight total of one predicate's match set.
    pub fn predicate_total_weight(&self, p: TermId) -> f64 {
        self.pred_totals.get(&p).copied().unwrap_or(0.0)
    }

    /// Resolves a global triple id to `(shard index, local id)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn resolve(&self, id: TripleId) -> (usize, TripleId) {
        let shard = self.offsets.partition_point(|&base| base <= id.0) - 1;
        let local = TripleId(id.0 - self.offsets[shard]);
        assert!(
            local.idx() < self.shards[shard].len(),
            "triple id {id:?} not issued by this store"
        );
        (shard, local)
    }

    /// The global id of shard `i`'s local triple `t`.
    #[inline]
    pub fn global_id(&self, shard: usize, local: TripleId) -> TripleId {
        TripleId(self.offsets[shard] + local.0)
    }

    /// The triple with the given global id.
    pub fn triple(&self, id: TripleId) -> Triple {
        let (shard, local) = self.resolve(id);
        self.shards[shard].triple(local)
    }

    /// Provenance of the triple with the given global id.
    pub fn provenance(&self, id: TripleId) -> &Provenance {
        let (shard, local) = self.resolve(id);
        self.shards[shard].provenance(local)
    }

    /// Resolves a source id to its document identifier (the source table
    /// is shared, so any shard answers).
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.shards[0].source_name(id)
    }

    /// Renders a term for display (shared dictionary).
    pub fn display_term(&self, id: TermId) -> String {
        self.shards[0].display_term(id)
    }

    /// Renders a triple with a global id in `S P O` form.
    pub fn display_triple(&self, id: TripleId) -> String {
        let (shard, local) = self.resolve(id);
        self.shards[shard].display_triple(local)
    }

    /// Exact number of triples matching `pattern`, across shards.
    pub fn count(&self, pattern: &SlotPattern) -> usize {
        match pattern.s {
            // Subject-bound patterns are co-located.
            Some(s) => self.shards[s.shard_of(self.shards.len())].count(pattern),
            None => self.shards.iter().map(|sh| sh.count(pattern)).sum(),
        }
    }

    /// Cross-shard total emission weight of a canonical pattern's
    /// (mask-filtered) match set — the slow path behind
    /// [`GlobalTotals::pattern_total`], memoized per store.
    fn scan_total(&self, key: &CanonicalPattern) -> f64 {
        let (slot, mask) = *key;
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lookup(&slot)
                    .iter()
                    .filter(|&&id| mask == 0 || satisfies_mask(shard, id, mask))
                    .map(|&id| shard.provenance(id).weight())
                    .sum::<f64>()
            })
            .sum()
    }
}

impl GlobalTotals for ShardedStore {
    fn pattern_total(&self, key: &CanonicalPattern) -> Option<f64> {
        let (slot, mask) = *key;
        if slot.s.is_some() {
            // Subject-bound: all matches are co-located, so the shard's
            // local total is already the global total.
            return None;
        }
        if mask == 0 {
            match (slot.p, slot.o) {
                (Some(p), None) => return Some(self.predicate_total_weight(p)),
                (None, None) => return Some(self.global_total),
                // Object-anchored: each shard's object-group total is an
                // O(log n) prefix-sum read, so the global total is a sum
                // over shards instead of a memoized cross-shard scan —
                // and the shard-local lists themselves stay borrowed
                // slices (no per-shard materialization for anchored
                // lookups).
                (None, Some(o)) => {
                    return Some(
                        self.shards
                            .iter()
                            .map(|sh| sh.object_total_weight(o))
                            .sum(),
                    )
                }
                _ => {}
            }
        }
        // Poison recovery: a panicking holder can at worst have left a
        // partially inserted memo entry; entries are immutable once
        // written and derived purely from the frozen store, so the memo
        // is dropped wholesale (totals recompute on demand) rather than
        // trusted — a cache-warmth loss, never an abort.
        let mut memo = match self.totals_memo.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.clear();
                self.totals_memo.clear_poison();
                guard
            }
        };
        if let Some(&t) = memo.get(key) {
            return Some(t);
        }
        let t = self.scan_total(key);
        memo.insert(*key, t);
        Some(t)
    }
}

impl ConditionOracle for ShardedStore {
    fn ground_holds(&self, s: TermId, p: TermId, o: TermId) -> bool {
        // Subject-hash partitioning: a ground triple can only live in
        // its subject's shard.
        let shard = s.shard_of(self.shards.len());
        self.shards[shard].count(&SlotPattern::new(Some(s), Some(p), Some(o))) > 0
    }
}

impl TripleLookup for ShardedStore {
    #[inline]
    fn triple_of(&self, id: TripleId) -> Triple {
        self.triple(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_query::QPattern;
    use trinit_relax::{QTerm, VarId};

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..30u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
            b.add_kg_resources(&format!("s{i}"), "q", "hub");
        }
        let src = b.intern_source("doc");
        for i in 0..10u32 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let p = b.dict_mut().token("linked to");
            let o = b.dict_mut().resource(&format!("s{}", (i + 1) % 10));
            b.add_extracted(s, p, o, 0.5 + (i % 4) as f32 * 0.1, src);
        }
        // A self-loop for repeated-variable totals.
        b.add_kg_resources("loop", "p", "loop");
        b
    }

    #[test]
    fn global_aggregates_match_monolith() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 4);
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.len_of(GraphTag::Kg), single.len_of(GraphTag::Kg));
        assert_eq!(sharded.predicates(), single.predicates());
        let idx = single.posting_index();
        assert!((sharded.global_total - idx.total_weight()).abs() < 1e-9);
        for &p in single.predicates() {
            assert!(
                (sharded.predicate_total_weight(p) - idx.predicate_total_weight(p)).abs() < 1e-9,
                "predicate total diverges"
            );
        }
    }

    #[test]
    fn global_ids_resolve_across_shards() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 3);
        let mut seen = 0usize;
        for shard_idx in 0..sharded.shard_count() {
            for (local, t) in sharded.shard(shard_idx).iter().collect::<Vec<_>>() {
                let gid = sharded.global_id(shard_idx, local);
                assert_eq!(sharded.resolve(gid), (shard_idx, local));
                assert_eq!(sharded.triple(gid), t);
                assert_eq!(sharded.triple_of(gid), t);
                // Display and provenance agree with the monolith.
                let slot = SlotPattern::new(Some(t.s), Some(t.p), Some(t.o));
                let mono_id = single.lookup(&slot)[0];
                assert_eq!(sharded.display_triple(gid), single.display_triple(mono_id));
                assert_eq!(
                    sharded.provenance(gid).weight(),
                    single.provenance(mono_id).weight()
                );
                seen += 1;
            }
        }
        assert_eq!(seen, single.len());
    }

    #[test]
    fn condition_oracle_agrees_with_monolith() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 5);
        let p = single.resource("p").unwrap();
        let q = single.resource("q").unwrap();
        for i in 0..30u32 {
            let s = single.resource(&format!("s{i}")).unwrap();
            let o = single.resource(&format!("o{i}")).unwrap();
            let hub = single.resource("hub").unwrap();
            assert!(sharded.ground_holds(s, p, o));
            assert!(sharded.ground_holds(s, q, hub));
            assert!(!sharded.ground_holds(s, q, o));
        }
    }

    #[test]
    fn pattern_totals_are_global() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 4);
        let p = single.resource("p").unwrap();
        let v0 = QTerm::Var(VarId(0));
        let v1 = QTerm::Var(VarId(1));
        // Predicate-only: O(1) precomputed aggregate.
        let key = trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(p), v1));
        let expected = single.posting_index().predicate_total_weight(p);
        assert!((sharded.pattern_total(&key).unwrap() - expected).abs() < 1e-9);
        // Object-bound: memoized cross-shard scan.
        let hub = single.resource("hub").unwrap();
        let q = single.resource("q").unwrap();
        let obj_key =
            trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(q), QTerm::Term(hub)));
        let direct: f64 = single
            .lookup(&SlotPattern::new(None, Some(q), Some(hub)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&obj_key).unwrap() - direct).abs() < 1e-9);
        // Memo hit returns the same value.
        assert_eq!(
            sharded.pattern_total(&obj_key),
            sharded.pattern_total(&obj_key)
        );
        // Object-anchored (o-only): summed from the shards' O(log n)
        // object-group prefix columns, no scan.
        let hub_only_key =
            trinit_query::canonical_pattern(&QPattern::new(v0, v1, QTerm::Term(hub)));
        let direct_o: f64 = single
            .lookup(&SlotPattern::new(None, None, Some(hub)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&hub_only_key).unwrap() - direct_o).abs() < 1e-9);
        // Repeated-variable (self-loop) shape: filtered scan.
        let rep_key = trinit_query::canonical_pattern(&QPattern::new(v0, QTerm::Term(p), v0));
        let loop_s = single.resource("loop").unwrap();
        let loop_weight: f64 = single
            .lookup(&SlotPattern::new(Some(loop_s), Some(p), Some(loop_s)))
            .iter()
            .map(|&id| single.provenance(id).weight())
            .sum();
        assert!((sharded.pattern_total(&rep_key).unwrap() - loop_weight).abs() < 1e-9);
        // Subject-bound: local is global.
        let s0 = single.resource("s0").unwrap();
        let sub_key =
            trinit_query::canonical_pattern(&QPattern::new(QTerm::Term(s0), QTerm::Term(p), v1));
        assert_eq!(sharded.pattern_total(&sub_key), None);
    }

    #[test]
    fn counts_aggregate_across_shards() {
        let single = builder().build();
        let sharded = ShardedStore::build(builder(), 3);
        let p = single.resource("p").unwrap();
        assert_eq!(
            sharded.count(&SlotPattern::with_p(p)),
            single.count(&SlotPattern::with_p(p))
        );
        let s3 = single.resource("s3").unwrap();
        assert_eq!(
            sharded.count(&SlotPattern::new(Some(s3), None, None)),
            single.count(&SlotPattern::new(Some(s3), None, None))
        );
        assert_eq!(sharded.count(&SlotPattern::any()), single.len());
    }
}
