//! # trinit-shard — sharded store and parallel batch execution
//!
//! Scales the TriniT reproduction past one monolithic store: an
//! [`XkgStore`](trinit_xkg::XkgStore) is hash-partitioned into N
//! independent shards at build time, queries execute over the shards
//! through the partitioned top-k engine, and independent queries run
//! concurrently across a pool of worker threads sized to the shard
//! count.
//!
//! ## Partition scheme
//!
//! Triples are partitioned by **subject term**:
//! `shard(t) = t.s.shard_of(N)` (a deterministic multiplicative hash,
//! [`trinit_xkg::TermId::shard_of`]). Shards share one term dictionary
//! and one provenance-source table (`Arc`), so term and source ids are
//! global; each shard freezes its own permutation and posting indexes
//! over its slice. Subject hashing gives two structural guarantees the
//! executor leans on:
//!
//! * **Co-location** — every triple of a given subject lives in exactly
//!   one shard, so subject-bound patterns (and ground-fact existence
//!   checks for structural-rule data conditions) touch a single shard,
//!   and a shard-local match-set total *is* the global total for those
//!   shapes.
//! * **Disjoint totality** — the shards' match sets for any pattern
//!   partition the monolithic match set, so per-predicate (and
//!   whole-store) emission-weight totals aggregate by simple summation
//!   ([`ShardedStore`] freezes them at build time), and the union of
//!   per-shard score-sorted streams is exactly the monolithic stream.
//!
//! ## Global-threshold soundness
//!
//! Per-shard execution normalizes every emission probability by the
//! **global** match-set total ([`trinit_query::GlobalTotals`]), so a
//! shard's emissions carry exactly the probabilities the single-store
//! engine would assign. The cross-shard merge
//! ([`trinit_query::exec::sharded::ShardedMerge`]) emits the union of
//! the shards' streams in globally descending order: a shard's head is
//! emitted only after it is *exact* (its unopened alternatives are
//! resolved) and no other shard's upper bound exceeds it. The rank
//! join, threshold, and stream capping on top are literally the
//! monolithic engine's code (generic over the stream source), with each
//! shard's posting-index head bounds and prefix-sum remaining mass
//! feeding the bound exactly as the single store's do. Hence every
//! termination argument of the monolithic engine carries over, and the
//! sharded engine returns the same answers with the same scores — a
//! property pinned by this crate's equivalence tests at 1, 2, 4, and 7
//! shards.
//!
//! ## Execution phases
//!
//! [`ShardedExecutor::run`] optionally *seeds* the global run: each
//! shard first answers the query against its own slice alone (all
//! patterns shard-local, globally normalized scores) on scoped threads
//! — [`SeedMode::Parallel`]. Every seed answer is a true answer of the
//! global query (its scores are exact, the collector keeps the max per
//! key), so the global merge starts with a tight k-th score and prunes
//! hopeless variants and streams from the first pull. Cross-shard join
//! combinations are then recovered by the merge phase, which is always
//! complete. Batch workloads ([`QueryPool`]) skip the seed phase and
//! spend the parallelism across queries instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod schedule;
pub mod store;

pub use exec::{QueryPool, SeedMode, ShardedExecutor, ShardedRun};
pub use store::ShardedStore;

/// Test support: the tie-group-aware answer comparator shared by this
/// crate's unit, property, and downstream equivalence tests.
pub mod testkit {
    use trinit_query::Answer;

    /// Asserts two top-k rankings are score-equivalent: scores equal
    /// positionally everywhere, and within each maximal tied-score
    /// group the key *sets* agree. Order inside a tie group, and
    /// membership of the trailing group the k-cut lands in, are
    /// tie-break detail both engines resolve arbitrarily.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any divergence.
    pub fn assert_answers_score_equivalent(got: &[Answer], want: &[Answer]) {
        assert_eq!(got.len(), want.len(), "answer counts differ");
        for (x, y) in got.iter().zip(want) {
            assert!(
                (x.score - y.score).abs() < 1e-9,
                "scores differ: {} vs {}",
                x.score,
                y.score
            );
        }
        let mut i = 0;
        while i < want.len() {
            let mut j = i + 1;
            while j < want.len() && (want[j].score - want[i].score).abs() < 1e-9 {
                j += 1;
            }
            if j < want.len() {
                // Interior tie group: both engines hold its full
                // membership, in some order.
                let mut ka: Vec<_> = got[i..j].iter().map(|a| a.key.clone()).collect();
                let mut kb: Vec<_> = want[i..j].iter().map(|a| a.key.clone()).collect();
                ka.sort();
                kb.sort();
                assert_eq!(ka, kb, "tie-group keys differ");
            }
            i = j;
        }
    }
}
