//! Work-stealing batch scheduler: per-shard **seed tasks** as the unit
//! of stolen work.
//!
//! The fixed [`QueryPool`](crate::exec::QueryPool) assigns one whole
//! query per worker and, to keep the parallelism budget spent across
//! queries, skips the per-shard seed phase entirely — so a batch gets
//! throughput, but each query inside it runs at single-worker latency
//! and its merge phase starts with an empty collector. This scheduler
//! closes that gap by making the unit of scheduling one *(query,
//! shard)* seed task instead of one query:
//!
//! * every query in the batch contributes `shard_count` seed tasks to a
//!   shared injector (an atomic cursor over the task space — lock-free
//!   claiming, no idle waiting);
//! * workers drain the injector: a query is nominally *owned* by the
//!   worker that claims its first task, and every one of its seed tasks
//!   executed by a different worker is a **steal** — idle workers
//!   naturally lift the remaining seed work of in-flight queries
//!   instead of parking ([`ExecMetrics::seed_steals`] counts them per
//!   query);
//! * the worker that completes a query's *last* seed task immediately
//!   drives its cross-shard merge phase
//!   ([`ShardedExecutor::merge_with_seeds`](crate::ShardedExecutor)),
//!   with the collector pre-loaded from every shard's seed answers — so
//!   the merge starts with a tight k-th score, exactly like the
//!   latency-oriented [`SeedMode::Parallel`](crate::SeedMode) path, and
//!   no barrier ever holds a finished query hostage to a straggler
//!   elsewhere in the batch.
//!
//! Answers are identical to every other execution mode (the merge phase
//! alone is complete and exact; seeding only changes where the work is
//! spent — a property the equivalence tests pin). Results land in input
//! order. Determinism: seed answers are collected *per shard slot* and
//! offered in shard order, so the merge phase sees the same seed
//! sequence no matter which worker ran which task.
//!
//! Robustness: every seed task and merge phase runs under
//! `catch_unwind`, so a panicking worker converts into a typed
//! [`ExecError`] for its own query and the rest of the batch finishes
//! untouched; subject-bound queries prune their seed fan-out to the
//! subject's home shard (adaptive seeding, counted in
//! [`ExecMetrics::seed_skips`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use trinit_obs::{MetricsRegistry, TraceRecorder};
use trinit_query::exec::topk::TopkConfig;
use trinit_query::{
    describe_panic, Answer, BudgetTracker, ExecError, ExecMetrics, QTerm, Query,
};
use trinit_relax::RuleSet;

use crate::exec::{ShardedExecutor, ShardedRun};

/// Sentinel: no worker has claimed this query yet.
const NO_OWNER: usize = usize::MAX;

/// Locks a scheduler slot, recovering from mutex poisoning. The slots
/// only ever hold whole-value `Option` writes, so a panicking holder
/// cannot leave them logically torn — and panic isolation (the
/// `catch_unwind` around every seed task and merge phase), not the
/// poison flag, is the correctness boundary here. Recovering keeps
/// bystander queries alive instead of cascading one panic through the
/// whole batch.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One shard's completed seed task: the answers it found (global ids,
/// globally normalized scores), the work it cost, and the worker-local
/// trace recorder (merged into the query's trace in shard order by the
/// worker that drives the merge phase).
type SeedResult = (Vec<Answer>, ExecMetrics, TraceRecorder);

/// Shared per-query scheduling state.
struct QueryState {
    /// Seed tasks still outstanding; the worker that takes this to zero
    /// drives the merge phase.
    remaining: AtomicUsize,
    /// The worker that claimed this query's first seed task.
    owner: AtomicUsize,
    /// Seed tasks executed by non-owner workers.
    steals: AtomicUsize,
    /// Per-shard seed results, slotted by shard index so the merge sees
    /// a deterministic seed order regardless of completion order.
    /// Adaptively skipped shards leave their slot empty.
    seeds: Mutex<Vec<Option<SeedResult>>>,
    /// The finished run — or the typed error of the first panic caught
    /// on this query's work — written under panic isolation.
    outcome: Mutex<Option<Result<ShardedRun, ExecError>>>,
}

impl QueryState {
    /// Records a caught panic as this query's outcome (first panic
    /// wins) without disturbing the rest of the batch.
    fn poison(&self, context: String, payload: &(dyn std::any::Any + Send)) {
        let mut outcome = lock_recover(&self.outcome);
        if outcome.is_none() {
            *outcome = Some(Err(ExecError::WorkerPanicked {
                context,
                payload: describe_panic(payload),
            }));
        }
    }
}

impl<'a> ShardedExecutor<'a> {
    /// The single home shard of a subject-bound query, if it has one:
    /// every pattern's subject is a ground term and all of them hash to
    /// the same shard. Subject-hash partitioning places those patterns'
    /// direct matches on that shard alone, so seeding elsewhere is
    /// wasted work *for the warm start* — relaxation may still surface
    /// cross-shard matches (an inversion rule swaps subject and
    /// object), which is safe precisely because seeding is advisory:
    /// the merge phase alone is complete and exact.
    fn single_shard_of(&self, query: &Query) -> Option<usize> {
        let n = self.store.shard_count();
        if n <= 1 {
            return None;
        }
        let mut home: Option<usize> = None;
        for pattern in &query.patterns {
            let QTerm::Term(s) = pattern.s else {
                return None;
            };
            let shard = s.shard_of(n);
            match home {
                None => home = Some(shard),
                Some(h) if h == shard => {}
                Some(_) => return None,
            }
        }
        home
    }

    /// Executes a batch of independent queries across `workers` threads
    /// with per-shard seed-task stealing, returning one result per
    /// query in input order.
    ///
    /// **Panic isolation.** Every seed task and merge phase runs under
    /// [`catch_unwind`]: a panicking worker poisons only the query it
    /// was serving — that query's slot becomes
    /// [`ExecError::WorkerPanicked`] and every other query completes
    /// normally.
    ///
    /// **Adaptive seeding.** Subject-bound queries (every pattern's
    /// subject ground, all on one home shard) contribute a single seed
    /// task instead of one per shard; the pruned tasks are counted in
    /// `metrics.seed_skips`.
    ///
    /// Each run's `metrics.seed_steals` reports how many of the query's
    /// seed tasks were lifted by workers other than its owner; the rest
    /// of the counters aggregate the seed and merge phases exactly like
    /// [`ShardedExecutor::run`] with [`SeedMode`](crate::SeedMode)
    /// seeding.
    pub fn run_batch_stealing(
        &self,
        queries: &[Query],
        rules: &RuleSet,
        cfg: &TopkConfig,
        workers: usize,
    ) -> Vec<Result<ShardedRun, ExecError>> {
        self.run_batch_stealing_observed(queries, rules, cfg, workers, None)
    }

    /// [`ShardedExecutor::run_batch_stealing`] with a metrics sink for
    /// queries that never produce a [`ShardedRun`]: when a seed task or
    /// merge phase panics, the worker-local recorder lives *outside*
    /// the `catch_unwind` boundary, so the spans completed before the
    /// panic survive — they are flushed into `registry`'s per-stage
    /// histograms instead of being lost with the poisoned query.
    /// Successful queries carry their trace on
    /// [`ShardedRun::trace`](crate::ShardedRun) as usual.
    pub fn run_batch_stealing_observed(
        &self,
        queries: &[Query],
        rules: &RuleSet,
        cfg: &TopkConfig,
        workers: usize,
        registry: Option<&MetricsRegistry>,
    ) -> Vec<Result<ShardedRun, ExecError>> {
        let n_shards = self.store.shard_count();
        let n_queries = queries.len();
        if n_queries == 0 {
            return Vec::new();
        }

        // The flat task space the injector's cursor walks: one (query,
        // shard) seed task per entry, subject-bound queries pruned to
        // their home shard.
        let mut tasks: Vec<(usize, usize)> = Vec::with_capacity(n_queries * n_shards);
        let mut task_counts = vec![0usize; n_queries];
        let mut skips = vec![0usize; n_queries];
        for (qi, query) in queries.iter().enumerate() {
            match self.single_shard_of(query) {
                Some(home) => {
                    tasks.push((qi, home));
                    task_counts[qi] = 1;
                    skips[qi] = n_shards - 1;
                }
                None => {
                    tasks.extend((0..n_shards).map(|shard| (qi, shard)));
                    task_counts[qi] = n_shards;
                }
            }
        }
        let total_tasks = tasks.len();
        let workers = workers.max(1).min(total_tasks);

        let trackers: Vec<BudgetTracker> =
            queries.iter().map(|_| BudgetTracker::new(cfg)).collect();
        let states: Vec<QueryState> = task_counts
            .iter()
            .map(|&count| QueryState {
                remaining: AtomicUsize::new(count),
                owner: AtomicUsize::new(NO_OWNER),
                steals: AtomicUsize::new(0),
                seeds: Mutex::new((0..n_shards).map(|_| None).collect()),
                outcome: Mutex::new(None),
            })
            .collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let states = &states;
                let trackers = &trackers;
                let tasks = &tasks;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    // Claim the next seed task off the shared injector.
                    let task = cursor.fetch_add(1, Ordering::Relaxed);
                    if task >= total_tasks {
                        break;
                    }
                    let (qi, shard) = tasks[task];
                    let state = &states[qi];
                    let claimed_first = state
                        .owner
                        .compare_exchange(NO_OWNER, worker, Ordering::AcqRel, Ordering::Acquire);
                    if let Err(owner) = claimed_first {
                        if owner != worker {
                            state.steals.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The recorder lives outside the unwind boundary so
                    // the spans a panicking seed task completed before
                    // dying are recoverable.
                    let mut task_recorder = cfg.obs.recorder();
                    let seeded = catch_unwind(AssertUnwindSafe(|| {
                        #[cfg(feature = "faults")]
                        trinit_query::faults::on_seed_task(qi, shard);
                        self.seed_shard(
                            shard,
                            &queries[qi],
                            rules,
                            cfg,
                            &trackers[qi],
                            &mut task_recorder,
                        )
                    }));
                    match seeded {
                        Ok((answers, metrics)) => {
                            lock_recover(&state.seeds)[shard] =
                                Some((answers, metrics, task_recorder));
                        }
                        Err(payload) => {
                            state.poison(
                                format!("seed task (query {qi}, shard {shard})"),
                                payload.as_ref(),
                            );
                            if let Some(registry) = registry {
                                registry.record_trace(&task_recorder.finish());
                            }
                        }
                    }
                    // The releases above (seed-slot or outcome mutex)
                    // pair with the acquires below: the last finisher
                    // observes every seed result and any poisoning.
                    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        if lock_recover(&state.outcome).is_some() {
                            // A seed panic already decided this query.
                            continue;
                        }
                        let slots = std::mem::take(&mut *lock_recover(&state.seeds));
                        let mut seeds: Vec<Answer> = Vec::new();
                        let mut per_shard = vec![ExecMetrics::default(); n_shards];
                        // The query's trace: worker-local seed recorders
                        // merged in shard order (deterministic regardless
                        // of which worker ran which task), then the merge
                        // phase recording directly.
                        let mut recorder = cfg.obs.recorder();
                        for (shard, slot) in slots.into_iter().enumerate() {
                            // Empty slots are adaptively skipped shards.
                            if let Some((answers, metrics, task_recorder)) = slot {
                                seeds.extend(answers);
                                per_shard[shard] = metrics;
                                recorder.merge(&task_recorder);
                            }
                        }
                        let merged = catch_unwind(AssertUnwindSafe(|| {
                            #[cfg(feature = "faults")]
                            trinit_query::faults::on_merge(qi);
                            self.merge_with_seeds(
                                &queries[qi],
                                rules,
                                cfg,
                                seeds,
                                per_shard,
                                &trackers[qi],
                                &mut recorder,
                            )
                        }));
                        match merged {
                            Ok(mut run) => {
                                run.trace = recorder.finish();
                                *lock_recover(&state.outcome) = Some(Ok(run));
                            }
                            Err(payload) => {
                                state.poison(
                                    format!("merge phase (query {qi})"),
                                    payload.as_ref(),
                                );
                                // The merge phase died, but every seed
                                // span already merged above survives.
                                if let Some(registry) = registry {
                                    registry.record_trace(&recorder.finish());
                                }
                            }
                        }
                    }
                });
            }
        });

        states
            .into_iter()
            .enumerate()
            .map(|(qi, state)| {
                let result = state
                    .outcome
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable by construction — the worker that
                        // takes `remaining` to zero always writes the
                        // slot. Typed rather than panicking, so even a
                        // scheduler bug degrades to one failed query.
                        Err(ExecError::WorkerPanicked {
                            context: format!("scheduler (query {qi}): outcome never resolved"),
                            payload: String::new(),
                        })
                    });
                result.map(|mut run| {
                    run.metrics.seed_steals = state.steals.into_inner();
                    run.metrics.seed_skips = skips[qi];
                    run
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SeedMode;
    use crate::store::ShardedStore;
    use crate::testkit::assert_answers_score_equivalent as assert_same_answers;
    use trinit_query::QueryBuilder;
    use trinit_relax::{Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..24u32 {
            b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("y{i}"), "q", &format!("z{}", i % 5));
        }
        let src = b.intern_source("doc");
        for i in 0..10u32 {
            let s = b.dict_mut().resource(&format!("x{i}"));
            let p = b.dict_mut().token("close to");
            let o = b.dict_mut().resource(&format!("y{}", (i + 5) % 24));
            b.add_extracted(s, p, o, 0.6, src);
        }
        b
    }

    fn rules(store: &trinit_xkg::XkgStore) -> RuleSet {
        let p = store.resource("p").unwrap();
        let close = store.token("close to").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "p ~ close to",
            p,
            close,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules
    }

    #[test]
    fn stolen_batches_match_per_query_runs() {
        let single = builder().build();
        let rules = rules(&single);
        let cfg = TopkConfig::default();
        let queries: Vec<Query> = (0..7)
            .map(|i| {
                QueryBuilder::new(&single)
                    .pattern_r_r_v(&format!("x{i}"), "p", "b")
                    .limit(4)
                    .build()
            })
            .chain(std::iter::once(
                QueryBuilder::new(&single)
                    .pattern_v_r_v("a", "p", "b")
                    .pattern_v_r_v("b", "q", "c")
                    .limit(9)
                    .build(),
            ))
            .collect();
        for shards in [2usize, 3] {
            let sharded = ShardedStore::build(builder(), shards);
            let exec = ShardedExecutor::new(&sharded);
            let expected: Vec<_> = queries
                .iter()
                .map(|q| exec.run(q, &rules, &cfg, SeedMode::Off).answers)
                .collect();
            for workers in [1usize, 2, 4] {
                let runs = exec.run_batch_stealing(&queries, &rules, &cfg, workers);
                assert_eq!(runs.len(), queries.len());
                for (run, want) in runs.iter().zip(&expected) {
                    let run = run.as_ref().expect("no worker panicked");
                    assert_same_answers(&run.answers, want);
                    assert_eq!(run.per_shard.len(), shards);
                    assert!(run.metrics.pulls > 0);
                }
            }
        }
    }

    #[test]
    fn single_worker_owns_every_task_and_steals_nothing() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 4);
        let exec = ShardedExecutor::new(&sharded);
        let queries: Vec<Query> = (0..3)
            .map(|i| {
                QueryBuilder::new(&single)
                    .pattern_r_r_v(&format!("x{i}"), "p", "b")
                    .limit(3)
                    .build()
            })
            .collect();
        let runs = exec.run_batch_stealing(&queries, &rules, &TopkConfig::default(), 1);
        for run in &runs {
            let run = run.as_ref().expect("no worker panicked");
            assert_eq!(run.metrics.seed_steals, 0, "one worker cannot steal from itself");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sharded = ShardedStore::build(builder(), 2);
        let exec = ShardedExecutor::new(&sharded);
        let runs = exec.run_batch_stealing(&[], &RuleSet::new(), &TopkConfig::default(), 4);
        assert!(runs.is_empty());
    }

    #[test]
    fn seed_metrics_fold_into_the_aggregate() {
        // The stolen batch's counters must match the equivalent
        // seed-then-merge execution: per-shard seed work plus the merge
        // phase's posting work, exactly like SeedMode::Sequential.
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 3);
        let exec = ShardedExecutor::new(&sharded);
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(8)
            .build();
        let runs = exec.run_batch_stealing(
            std::slice::from_ref(&q),
            &rules,
            &TopkConfig::default(),
            2,
        );
        let run = runs[0].as_ref().expect("no worker panicked");
        let reference = exec.run(&q, &rules, &TopkConfig::default(), SeedMode::Sequential);
        assert_same_answers(&run.answers, &reference.answers);
        assert_eq!(
            run.metrics.postings_scanned, reference.metrics.postings_scanned,
            "stolen seed + merge work must equal the sequential seed + merge work"
        );
        assert_eq!(run.metrics.pulls, reference.metrics.pulls);
    }

    #[test]
    fn stolen_batches_merge_worker_recorders_at_join() {
        use trinit_obs::Stage;
        let single = builder().build();
        let rules = rules(&single);
        let shards = 3;
        let sharded = ShardedStore::build(builder(), shards);
        let exec = ShardedExecutor::new(&sharded);
        let cfg = TopkConfig::default();
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(6)
            .build();
        for workers in [1usize, 2, 4] {
            let runs =
                exec.run_batch_stealing(std::slice::from_ref(&q), &rules, &cfg, workers);
            let run = runs[0].as_ref().expect("no worker panicked");
            let trace = &run.trace;
            // One SeedTask span per shard reached the joined trace no
            // matter which worker ran which task, and the merge phase
            // recorded on top of them.
            assert_eq!(
                trace.stage_count(Stage::SeedTask),
                shards,
                "workers={workers}"
            );
            assert_eq!(trace.stage_count(Stage::Merge), 1, "workers={workers}");
            assert_eq!(trace.dropped, 0, "default capacity must not overflow here");
        }
    }

    #[test]
    fn adaptive_seeding_prunes_subject_bound_queries_to_one_shard() {
        let single = builder().build();
        let rules = rules(&single);
        let shards = 4;
        let sharded = ShardedStore::build(builder(), shards);
        let exec = ShardedExecutor::new(&sharded);
        let cfg = TopkConfig::default();
        // A subject-bound query (ground subject on every pattern) and an
        // open one, in the same batch.
        let bound = QueryBuilder::new(&single)
            .pattern_r_r_v("x3", "p", "b")
            .limit(4)
            .build();
        let open = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(4)
            .build();
        let expected_bound = exec.run(&bound, &rules, &cfg, SeedMode::Off);
        let expected_open = exec.run(&open, &rules, &cfg, SeedMode::Off);
        let runs =
            exec.run_batch_stealing(&[bound, open], &rules, &cfg, 2);
        let bound_run = runs[0].as_ref().expect("no worker panicked");
        let open_run = runs[1].as_ref().expect("no worker panicked");
        assert_eq!(
            bound_run.metrics.seed_skips,
            shards - 1,
            "subject-bound query seeds only its home shard: {:?}",
            bound_run.metrics
        );
        assert_eq!(open_run.metrics.seed_skips, 0, "{:?}", open_run.metrics);
        // Pruned seeding is advisory: answers stay identical.
        assert_same_answers(&bound_run.answers, &expected_bound.answers);
        assert_same_answers(&open_run.answers, &expected_open.answers);
    }

    #[test]
    fn single_shard_store_never_prunes() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 1);
        let exec = ShardedExecutor::new(&sharded);
        let q = QueryBuilder::new(&single)
            .pattern_r_r_v("x2", "p", "b")
            .limit(3)
            .build();
        let runs = exec.run_batch_stealing(
            std::slice::from_ref(&q),
            &rules,
            &TopkConfig::default(),
            2,
        );
        let run = runs[0].as_ref().expect("no worker panicked");
        assert_eq!(run.metrics.seed_skips, 0, "nothing to skip at one shard");
    }
}
