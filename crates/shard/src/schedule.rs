//! Work-stealing batch scheduler: per-shard **seed tasks** as the unit
//! of stolen work.
//!
//! The fixed [`QueryPool`](crate::exec::QueryPool) assigns one whole
//! query per worker and, to keep the parallelism budget spent across
//! queries, skips the per-shard seed phase entirely — so a batch gets
//! throughput, but each query inside it runs at single-worker latency
//! and its merge phase starts with an empty collector. This scheduler
//! closes that gap by making the unit of scheduling one *(query,
//! shard)* seed task instead of one query:
//!
//! * every query in the batch contributes `shard_count` seed tasks to a
//!   shared injector (an atomic cursor over the task space — lock-free
//!   claiming, no idle waiting);
//! * workers drain the injector: a query is nominally *owned* by the
//!   worker that claims its first task, and every one of its seed tasks
//!   executed by a different worker is a **steal** — idle workers
//!   naturally lift the remaining seed work of in-flight queries
//!   instead of parking ([`ExecMetrics::seed_steals`] counts them per
//!   query);
//! * the worker that completes a query's *last* seed task immediately
//!   drives its cross-shard merge phase
//!   ([`ShardedExecutor::merge_with_seeds`](crate::ShardedExecutor)),
//!   with the collector pre-loaded from every shard's seed answers — so
//!   the merge starts with a tight k-th score, exactly like the
//!   latency-oriented [`SeedMode::Parallel`](crate::SeedMode) path, and
//!   no barrier ever holds a finished query hostage to a straggler
//!   elsewhere in the batch.
//!
//! Answers are identical to every other execution mode (the merge phase
//! alone is complete and exact; seeding only changes where the work is
//! spent — a property the equivalence tests pin). Results land in input
//! order. Determinism: seed answers are collected *per shard slot* and
//! offered in shard order, so the merge phase sees the same seed
//! sequence no matter which worker ran which task.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use trinit_query::exec::topk::TopkConfig;
use trinit_query::{Answer, ExecMetrics, Query};
use trinit_relax::RuleSet;

use crate::exec::{ShardedExecutor, ShardedRun};

/// Sentinel: no worker has claimed this query yet.
const NO_OWNER: usize = usize::MAX;

/// One shard's completed seed task: the answers it found (global ids,
/// globally normalized scores) and the work it cost.
type SeedResult = (Vec<Answer>, ExecMetrics);

/// Shared per-query scheduling state.
struct QueryState {
    /// Seed tasks still outstanding; the worker that takes this to zero
    /// drives the merge phase.
    remaining: AtomicUsize,
    /// The worker that claimed this query's first seed task.
    owner: AtomicUsize,
    /// Seed tasks executed by non-owner workers.
    steals: AtomicUsize,
    /// Per-shard seed results, slotted by shard index so the merge sees
    /// a deterministic seed order regardless of completion order.
    seeds: Mutex<Vec<Option<SeedResult>>>,
    /// The finished run, written by the merge-driving worker.
    outcome: Mutex<Option<ShardedRun>>,
}

impl<'a> ShardedExecutor<'a> {
    /// Executes a batch of independent queries across `workers` threads
    /// with per-shard seed-task stealing, returning one [`ShardedRun`]
    /// per query in input order.
    ///
    /// Each run's `metrics.seed_steals` reports how many of the query's
    /// seed tasks were lifted by workers other than its owner; the rest
    /// of the counters aggregate the seed and merge phases exactly like
    /// [`ShardedExecutor::run`] with [`SeedMode`](crate::SeedMode)
    /// seeding.
    pub fn run_batch_stealing(
        &self,
        queries: &[Query],
        rules: &RuleSet,
        cfg: &TopkConfig,
        workers: usize,
    ) -> Vec<ShardedRun> {
        let n_shards = self.store.shard_count();
        let n_queries = queries.len();
        if n_queries == 0 {
            return Vec::new();
        }
        let total_tasks = n_queries * n_shards;
        let workers = workers.max(1).min(total_tasks);

        let states: Vec<QueryState> = (0..n_queries)
            .map(|_| QueryState {
                remaining: AtomicUsize::new(n_shards),
                owner: AtomicUsize::new(NO_OWNER),
                steals: AtomicUsize::new(0),
                seeds: Mutex::new(vec![None; n_shards]),
                outcome: Mutex::new(None),
            })
            .collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let states = &states;
                let cursor = &cursor;
                scope.spawn(move || loop {
                    // Claim the next seed task off the shared injector.
                    let task = cursor.fetch_add(1, Ordering::Relaxed);
                    if task >= total_tasks {
                        break;
                    }
                    let (qi, shard) = (task / n_shards, task % n_shards);
                    let state = &states[qi];
                    let claimed_first = state
                        .owner
                        .compare_exchange(NO_OWNER, worker, Ordering::AcqRel, Ordering::Acquire);
                    if let Err(owner) = claimed_first {
                        if owner != worker {
                            state.steals.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let seeded = self.seed_shard(shard, &queries[qi], rules, cfg);
                    state.seeds.lock().expect("seed slots poisoned")[shard] = Some(seeded);
                    // The release of the mutex above pairs with the
                    // acquire below: the last finisher observes every
                    // shard's seed result.
                    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let slots = std::mem::take(
                            &mut *state.seeds.lock().expect("seed slots poisoned"),
                        );
                        let mut seeds: Vec<Answer> = Vec::new();
                        let mut per_shard = Vec::with_capacity(n_shards);
                        for slot in slots {
                            let (answers, metrics) = slot.expect("every seed task completed");
                            seeds.extend(answers);
                            per_shard.push(metrics);
                        }
                        let run =
                            self.merge_with_seeds(&queries[qi], rules, cfg, seeds, per_shard);
                        *state.outcome.lock().expect("outcome slot poisoned") = Some(run);
                    }
                });
            }
        });

        states
            .into_iter()
            .map(|state| {
                let mut run = state
                    .outcome
                    .into_inner()
                    .expect("outcome slot poisoned")
                    .expect("every query merged");
                run.metrics.seed_steals = state.steals.into_inner();
                run
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SeedMode;
    use crate::store::ShardedStore;
    use crate::testkit::assert_answers_score_equivalent as assert_same_answers;
    use trinit_query::QueryBuilder;
    use trinit_relax::{Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..24u32 {
            b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("y{i}"), "q", &format!("z{}", i % 5));
        }
        let src = b.intern_source("doc");
        for i in 0..10u32 {
            let s = b.dict_mut().resource(&format!("x{i}"));
            let p = b.dict_mut().token("close to");
            let o = b.dict_mut().resource(&format!("y{}", (i + 5) % 24));
            b.add_extracted(s, p, o, 0.6, src);
        }
        b
    }

    fn rules(store: &trinit_xkg::XkgStore) -> RuleSet {
        let p = store.resource("p").unwrap();
        let close = store.token("close to").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "p ~ close to",
            p,
            close,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules
    }

    #[test]
    fn stolen_batches_match_per_query_runs() {
        let single = builder().build();
        let rules = rules(&single);
        let cfg = TopkConfig::default();
        let queries: Vec<Query> = (0..7)
            .map(|i| {
                QueryBuilder::new(&single)
                    .pattern_r_r_v(&format!("x{i}"), "p", "b")
                    .limit(4)
                    .build()
            })
            .chain(std::iter::once(
                QueryBuilder::new(&single)
                    .pattern_v_r_v("a", "p", "b")
                    .pattern_v_r_v("b", "q", "c")
                    .limit(9)
                    .build(),
            ))
            .collect();
        for shards in [2usize, 3] {
            let sharded = ShardedStore::build(builder(), shards);
            let exec = ShardedExecutor::new(&sharded);
            let expected: Vec<_> = queries
                .iter()
                .map(|q| exec.run(q, &rules, &cfg, SeedMode::Off).answers)
                .collect();
            for workers in [1usize, 2, 4] {
                let runs = exec.run_batch_stealing(&queries, &rules, &cfg, workers);
                assert_eq!(runs.len(), queries.len());
                for (run, want) in runs.iter().zip(&expected) {
                    assert_same_answers(&run.answers, want);
                    assert_eq!(run.per_shard.len(), shards);
                    assert!(run.metrics.pulls > 0);
                }
            }
        }
    }

    #[test]
    fn single_worker_owns_every_task_and_steals_nothing() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 4);
        let exec = ShardedExecutor::new(&sharded);
        let queries: Vec<Query> = (0..3)
            .map(|i| {
                QueryBuilder::new(&single)
                    .pattern_r_r_v(&format!("x{i}"), "p", "b")
                    .limit(3)
                    .build()
            })
            .collect();
        let runs = exec.run_batch_stealing(&queries, &rules, &TopkConfig::default(), 1);
        for run in &runs {
            assert_eq!(run.metrics.seed_steals, 0, "one worker cannot steal from itself");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let sharded = ShardedStore::build(builder(), 2);
        let exec = ShardedExecutor::new(&sharded);
        let runs = exec.run_batch_stealing(&[], &RuleSet::new(), &TopkConfig::default(), 4);
        assert!(runs.is_empty());
    }

    #[test]
    fn seed_metrics_fold_into_the_aggregate() {
        // The stolen batch's counters must match the equivalent
        // seed-then-merge execution: per-shard seed work plus the merge
        // phase's posting work, exactly like SeedMode::Sequential.
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 3);
        let exec = ShardedExecutor::new(&sharded);
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(8)
            .build();
        let runs = exec.run_batch_stealing(
            std::slice::from_ref(&q),
            &rules,
            &TopkConfig::default(),
            2,
        );
        let reference = exec.run(&q, &rules, &TopkConfig::default(), SeedMode::Sequential);
        assert_same_answers(&runs[0].answers, &reference.answers);
        assert_eq!(
            runs[0].metrics.postings_scanned, reference.metrics.postings_scanned,
            "stolen seed + merge work must equal the sequential seed + merge work"
        );
        assert_eq!(runs[0].metrics.pulls, reference.metrics.pulls);
    }
}
