//! The sharded executor: per-shard seeding on scoped threads, the
//! cross-shard merge phase, and the batch query pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use trinit_obs::{QueryTrace, Stage, TraceRecorder};
use trinit_query::exec::sharded::run_partitioned;
use trinit_query::exec::topk::{run_scaled_traced, TopkConfig};
use trinit_query::{
    describe_panic, Answer, BudgetTracker, Completeness, ExecError, ExecMetrics, Governor, Query,
    SharedPostingCache,
};
use trinit_relax::{ConditionOracle, RuleSet};
use trinit_xkg::TripleId;

use crate::store::ShardedStore;

/// How [`ShardedExecutor::run`] seeds the global merge with per-shard
/// answers before the cross-shard phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Run every shard's local top-k on its own scoped thread — the
    /// latency-oriented mode: the seed phase takes one shard's time
    /// instead of the sum, and the merge phase starts with a tight
    /// k-th score.
    Parallel,
    /// Run the per-shard seeds one after another on the calling thread.
    /// Used inside batch pools, where the parallelism budget is already
    /// spent across queries.
    Sequential,
    /// Skip seeding: go straight to the cross-shard merge. Cheapest in
    /// total work — the merge phase alone is complete and exact.
    Off,
}

/// The outcome of one sharded execution.
#[derive(Debug)]
pub struct ShardedRun {
    /// Top-k answers, best first; derivation triple ids are global
    /// (resolve them with [`ShardedStore::resolve`]).
    pub answers: Vec<Answer>,
    /// Aggregate work counters across the seed and merge phases.
    pub metrics: ExecMetrics,
    /// Per-shard work: each shard's seed-phase run plus its share of
    /// the merge phase's posting work.
    pub per_shard: Vec<ExecMetrics>,
    /// The exactness guarantee of `answers` under the query's
    /// [`trinit_query::ExecBudget`]: `Exact` unless an ε/θ criterion
    /// retired work in the merge phase or a hard budget cutoff fired.
    /// Seed-phase retirements never degrade the label — the merge
    /// phase alone is complete and exact.
    pub completeness: Completeness,
    /// Per-stage execution trace: seed-task spans (merged from every
    /// worker in shard order), the merge-phase span, and the pipeline's
    /// windowed pull/election spans. Empty when
    /// [`ObsConfig`](trinit_obs::ObsConfig) is off.
    pub trace: QueryTrace,
}

/// Executes queries over a [`ShardedStore`]: fans the query out to
/// per-shard top-k executions (the seed phase) and merges the shards'
/// posting streams under the engine's tightened global threshold (the
/// merge phase, which is always complete and exact).
#[derive(Debug, Clone, Copy)]
pub struct ShardedExecutor<'a> {
    pub(crate) store: &'a ShardedStore,
    /// One store-level posting cache per shard, if caching is enabled.
    pub(crate) caches: Option<&'a [SharedPostingCache]>,
}

impl<'a> ShardedExecutor<'a> {
    /// An executor without store-level posting caches.
    pub fn new(store: &'a ShardedStore) -> ShardedExecutor<'a> {
        ShardedExecutor {
            store,
            caches: None,
        }
    }

    /// Attaches one store-level posting cache per shard (cached lists
    /// are shard-specific, so the set's length must equal the shard
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `caches.len()` differs from the shard count.
    pub fn with_caches(mut self, caches: &'a [SharedPostingCache]) -> ShardedExecutor<'a> {
        assert_eq!(
            caches.len(),
            self.store.shard_count(),
            "one posting cache per shard"
        );
        self.caches = Some(caches);
        self
    }

    /// Runs one shard's local top-k (all patterns restricted to the
    /// shard's slice, scores globally normalized) and remaps the
    /// answers' derivation ids into the global space. One seed task of
    /// the work-stealing batch scheduler ([`crate::schedule`]).
    pub(crate) fn seed_shard(
        &self,
        shard: usize,
        query: &Query,
        rules: &RuleSet,
        cfg: &TopkConfig,
        tracker: &BudgetTracker,
        recorder: &mut TraceRecorder,
    ) -> (Vec<Answer>, ExecMetrics) {
        let store = self.store.shard(shard);
        let offset = self.store.offsets()[shard];
        let seed_start = recorder.start();
        // Advisory governance: seed pulls consume the shared budget and
        // pick up ladder escalations, but a cutoff or ε retirement here
        // never marks the query non-exact — seeds only warm the merge
        // phase's collector, and the merge phase alone is complete.
        let (mut answers, metrics) = run_scaled_traced(
            store,
            query,
            rules,
            cfg,
            self.caches.map(|c| &c[shard]),
            Some(self.store),
            Some(self.store as &dyn ConditionOracle),
            Vec::new(),
            Governor::advisory(tracker),
            recorder,
        );
        recorder.record(Stage::SeedTask, shard as u32, seed_start);
        for answer in &mut answers {
            for (_, id) in &mut answer.derivation.triples {
                *id = TripleId(offset + id.0);
            }
        }
        (answers, metrics)
    }

    /// Answers `query`: seed phase per `seed`, then the cross-shard
    /// merge. The merge phase alone is complete, so every mode returns
    /// identical answers; seeding only changes how the work is spent.
    pub fn run(
        &self,
        query: &Query,
        rules: &RuleSet,
        cfg: &TopkConfig,
        seed: SeedMode,
    ) -> ShardedRun {
        let n = self.store.shard_count();
        let tracker = BudgetTracker::new(cfg);
        let mut recorder = cfg.obs.recorder();
        let query_start = recorder.start();
        let mut per_shard = vec![ExecMetrics::default(); n];
        let mut seeds: Vec<Answer> = Vec::new();
        match seed {
            SeedMode::Off => {}
            SeedMode::Sequential => {
                for (shard, acc) in per_shard.iter_mut().enumerate() {
                    let (answers, metrics) =
                        self.seed_shard(shard, query, rules, cfg, &tracker, &mut recorder);
                    seeds.extend(answers);
                    acc.merge(&metrics);
                }
            }
            SeedMode::Parallel => {
                let tracker = &tracker;
                let results = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..n)
                        .map(|shard| {
                            scope.spawn(move || {
                                // Worker-local recorder: the seed thread
                                // records lock-free and the join below
                                // merges in shard order.
                                let mut local = cfg.obs.recorder();
                                let out = self
                                    .seed_shard(shard, query, rules, cfg, tracker, &mut local);
                                (out, local)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join())
                        .collect::<Vec<_>>()
                });
                for (shard, joined) in results.into_iter().enumerate() {
                    // A panicked seed thread forfeits only its warm
                    // start: the merge phase is complete on its own, so
                    // the query still returns its exact answers.
                    let ((answers, metrics), local) = joined.unwrap_or_else(|_| {
                        ((Vec::new(), ExecMetrics::default()), TraceRecorder::off())
                    });
                    seeds.extend(answers);
                    per_shard[shard].merge(&metrics);
                    recorder.merge(&local);
                }
            }
        }

        let mut run =
            self.merge_with_seeds(query, rules, cfg, seeds, per_shard, &tracker, &mut recorder);
        recorder.record(Stage::Query, run.answers.len() as u32, query_start);
        run.trace = recorder.finish();
        run
    }

    /// The cross-shard merge phase: runs the partitioned pipeline with
    /// the collector pre-loaded from `seeds`, folding the seed phase's
    /// per-shard work (`per_shard`) into the aggregate counters. Shared
    /// by [`ShardedExecutor::run`] and the work-stealing batch
    /// scheduler, whose stolen seed tasks feed the same merge.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn merge_with_seeds(
        &self,
        query: &Query,
        rules: &RuleSet,
        cfg: &TopkConfig,
        seeds: Vec<Answer>,
        per_shard: Vec<ExecMetrics>,
        tracker: &BudgetTracker,
        recorder: &mut TraceRecorder,
    ) -> ShardedRun {
        self.merge_restricted(query, rules, cfg, seeds, per_shard, tracker, None, recorder)
    }

    /// Cross-shard merge with query pattern `position`'s merge source
    /// confined to the delta slices — the semi-naive delta-query seam:
    /// every answer uses at least one freshly ingested triple for that
    /// pattern, while the other patterns still read the full base ∪
    /// delta union (and scores normalize over the union, so they equal
    /// a full run's). No seed phase — seeds search whole shards and
    /// would reintroduce base-only matches.
    ///
    /// # Panics
    ///
    /// Panics if the store has no live delta
    /// ([`ShardedStore::has_delta`]).
    pub fn run_delta_restricted(
        &self,
        query: &Query,
        rules: &RuleSet,
        cfg: &TopkConfig,
        position: usize,
        tracker: &BudgetTracker,
    ) -> ShardedRun {
        assert!(
            self.store.has_delta(),
            "delta-restricted run requires a live delta"
        );
        let per_shard = vec![ExecMetrics::default(); self.store.shard_count()];
        let mut recorder = cfg.obs.recorder();
        let mut run = self.merge_restricted(
            query,
            rules,
            cfg,
            Vec::new(),
            per_shard,
            tracker,
            Some(position),
            &mut recorder,
        );
        run.trace = recorder.finish();
        run
    }

    /// The shared merge-phase core: base shards plus any live delta
    /// views as extra slices, optionally restricting one pattern to the
    /// delta sub-range.
    #[allow(clippy::too_many_arguments)]
    fn merge_restricted(
        &self,
        query: &Query,
        rules: &RuleSet,
        cfg: &TopkConfig,
        seeds: Vec<Answer>,
        mut per_shard: Vec<ExecMetrics>,
        tracker: &BudgetTracker,
        restrict_pattern: Option<usize>,
        recorder: &mut TraceRecorder,
    ) -> ShardedRun {
        let mut shard_refs: Vec<&trinit_xkg::XkgStore> = self.store.shards().iter().collect();
        let mut offsets: Vec<u32> = self.store.offsets().to_vec();
        let n_base = shard_refs.len();
        for (view, offset) in self.store.delta_slices() {
            shard_refs.push(view);
            offsets.push(offset);
        }
        let restrict = restrict_pattern.map(|j| (j, n_base..shard_refs.len()));
        let merge_start = recorder.start();
        let run = run_partitioned(
            &shard_refs,
            &offsets,
            self.store,
            self.store,
            Some(self.store as &dyn ConditionOracle),
            query,
            rules,
            cfg,
            self.caches,
            seeds,
            Governor::primary(tracker),
            restrict,
            recorder,
        );
        recorder.record(Stage::Merge, shard_refs.len() as u32, merge_start);

        let mut metrics = run.metrics;
        // Delta slices have no seed-phase slot; grow the accumulator so
        // their merge-phase work is reported rather than dropped.
        per_shard.resize(run.per_shard.len(), ExecMetrics::default());
        for (acc, phase2) in per_shard.iter_mut().zip(&run.per_shard) {
            metrics.merge(acc); // seed-phase work into the aggregate
            acc.merge(phase2);
        }
        ShardedRun {
            answers: run.answers,
            metrics,
            per_shard,
            completeness: run.completeness,
            // The caller that owns the query's recorder finishes it;
            // runs that never see a trace keep the empty default.
            trace: QueryTrace::default(),
        }
    }
}

/// A fixed-size worker pool executing independent queries concurrently
/// over a shared engine — the shard deployment's batch surface. Workers
/// claim queries off an atomic cursor; results land in input order.
#[derive(Debug)]
pub struct QueryPool {
    workers: usize,
}

impl QueryPool {
    /// A pool of `workers` concurrent workers (at least one).
    pub fn new(workers: usize) -> QueryPool {
        QueryPool {
            workers: workers.max(1),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `run` once per input concurrently, returning outputs in
    /// input order. `run` must be safe to call from multiple threads —
    /// the query engines are read-only over `Sync` stores, so closures
    /// capturing a store or executor qualify.
    pub fn execute<I, O, F>(&self, inputs: Vec<I>, run: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.workers.min(n);
        if threads == 1 {
            return inputs.into_iter().map(run).collect();
        }
        let slots: Vec<Mutex<Option<I>>> = inputs
            .into_iter()
            .map(|i| Mutex::new(Some(i)))
            .collect();
        let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Poison recovery is sound here: the slots hold
                    // whole-value `Option` writes, so a panicking
                    // holder cannot leave them logically torn, and a
                    // missing output surfaces below instead of taking
                    // the rest of the batch down.
                    let input = slots[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                    // lint:allow(no-panic-hot-path): the atomic cursor hands out each index exactly once, so a claimed slot is always populated
                    let input = input.expect("input claimed once");
                    let result = run(input);
                    *out[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                });
            }
        });
        out.into_iter()
            .map(|slot| {
                let produced = slot.into_inner().unwrap_or_else(PoisonError::into_inner);
                // lint:allow(no-panic-hot-path): unreachable — thread::scope re-raises any worker panic before this line runs, and a surviving worker always writes the slot it claimed
                produced.expect("every input produced an output")
            })
            .collect()
    }

    /// [`QueryPool::execute`] with panic isolation: each input's `run`
    /// call is wrapped in [`catch_unwind`], so one query's panic
    /// becomes a typed [`ExecError::WorkerPanicked`] in its own output
    /// slot while every other query completes normally. The worker
    /// thread that caught the panic keeps claiming further inputs.
    pub fn try_execute<I, O, F>(&self, inputs: Vec<I>, run: F) -> Vec<Result<O, ExecError>>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = inputs.len();
        let indexed: Vec<(usize, I)> = inputs.into_iter().enumerate().collect();
        debug_assert_eq!(indexed.len(), n);
        self.execute(indexed, |(i, input)| {
            catch_unwind(AssertUnwindSafe(|| run(input))).map_err(|payload| {
                ExecError::WorkerPanicked {
                    context: format!("batch query {i}"),
                    payload: describe_panic(payload.as_ref()),
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_query::exec::topk;
    use trinit_query::QueryBuilder;
    use trinit_relax::{Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..20u32 {
            b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("y{i}"), "q", &format!("z{}", i % 4));
        }
        let src = b.intern_source("doc");
        for i in 0..8u32 {
            let s = b.dict_mut().resource(&format!("x{i}"));
            let p = b.dict_mut().token("close to");
            let o = b.dict_mut().resource(&format!("y{}", (i + 3) % 20));
            b.add_extracted(s, p, o, 0.6, src);
        }
        b
    }

    fn rules(store: &trinit_xkg::XkgStore) -> RuleSet {
        let p = store.resource("p").unwrap();
        let close = store.token("close to").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "p ~ close to",
            p,
            close,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules
    }

    use crate::testkit::assert_answers_score_equivalent as assert_same_answers;

    #[test]
    fn every_seed_mode_matches_the_monolith() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 3);
        let cfg = TopkConfig::default();
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .pattern_v_r_v("b", "q", "c")
            .limit(12)
            .build();
        let (mono, _) = topk::run(&single, &q, &rules, &cfg);
        let exec = ShardedExecutor::new(&sharded);
        for mode in [SeedMode::Off, SeedMode::Sequential, SeedMode::Parallel] {
            let run = exec.run(&q, &rules, &cfg, mode);
            assert_same_answers(&run.answers, &mono);
            assert_eq!(run.per_shard.len(), 3);
        }
    }

    #[test]
    fn sharded_derivations_resolve_globally() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 4);
        let q = QueryBuilder::new(&single)
            .pattern_r_r_v("x1", "p", "b")
            .limit(5)
            .build();
        let run = ShardedExecutor::new(&sharded).run(
            &q,
            &rules,
            &TopkConfig::default(),
            SeedMode::Parallel,
        );
        assert!(!run.answers.is_empty());
        for answer in &run.answers {
            for (pattern, id) in &answer.derivation.triples {
                // Global ids resolve to real triples matching the
                // evaluated pattern's constants.
                let t = sharded.triple(*id);
                if let trinit_relax::QTerm::Term(s) = pattern.s {
                    assert_eq!(t.s, s);
                }
            }
        }
    }

    #[test]
    fn shard_caches_serve_repeat_queries_without_changing_answers() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 3);
        let caches: Vec<SharedPostingCache> =
            (0..3).map(|_| SharedPostingCache::new(64)).collect();
        let exec = ShardedExecutor::new(&sharded).with_caches(&caches);
        let q = QueryBuilder::new(&single)
            .pattern_r_r_v("x2", "p", "b")
            .limit(5)
            .build();
        let cfg = TopkConfig::default();
        let cold = exec.run(&q, &rules, &cfg, SeedMode::Sequential);
        let warm = exec.run(&q, &rules, &cfg, SeedMode::Sequential);
        assert_same_answers(&cold.answers, &warm.answers);
        assert!(
            warm.metrics.shared_cache_hits > 0,
            "repeat query must hit the shard caches: {:?}",
            warm.metrics
        );
    }

    #[test]
    fn metrics_aggregate_per_shard_work() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 3);
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(8)
            .build();
        let run = ShardedExecutor::new(&sharded).run(
            &q,
            &rules,
            &TopkConfig::default(),
            SeedMode::Sequential,
        );
        let scanned: usize = run.per_shard.iter().map(|m| m.postings_scanned).sum();
        assert_eq!(
            scanned, run.metrics.postings_scanned,
            "aggregate postings must equal the per-shard sum"
        );
        assert!(run.metrics.pulls > 0);
    }

    #[test]
    fn sharded_runs_carry_a_per_stage_trace() {
        use trinit_obs::{ObsConfig, Stage};
        let single = builder().build();
        let rules = rules(&single);
        let shards = 3;
        let sharded = ShardedStore::build(builder(), shards);
        let exec = ShardedExecutor::new(&sharded);
        let cfg = TopkConfig::default();
        let q = QueryBuilder::new(&single)
            .pattern_v_r_v("a", "p", "b")
            .limit(6)
            .build();
        for mode in [SeedMode::Off, SeedMode::Sequential, SeedMode::Parallel] {
            let run = exec.run(&q, &rules, &cfg, mode);
            let trace = &run.trace;
            assert_eq!(trace.stage_count(Stage::Query), 1, "{mode:?}");
            assert_eq!(trace.stage_count(Stage::Merge), 1, "{mode:?}");
            let expected_seeds = if mode == SeedMode::Off { 0 } else { shards };
            assert_eq!(trace.stage_count(Stage::SeedTask), expected_seeds, "{mode:?}");
            // The query span encloses the whole run, so it dominates
            // every other stage's total.
            assert!(
                trace.stage_total_ns(Stage::Query) >= trace.stage_total_ns(Stage::Merge),
                "{mode:?}"
            );
        }
        let off = TopkConfig {
            obs: ObsConfig::off(),
            ..TopkConfig::default()
        };
        let run = exec.run(&q, &rules, &off, SeedMode::Parallel);
        assert!(run.trace.is_empty(), "disabled obs must record nothing");
        assert_same_answers(
            &run.answers,
            &exec.run(&q, &rules, &cfg, SeedMode::Parallel).answers,
        );
    }

    #[test]
    fn query_pool_preserves_input_order() {
        let pool = QueryPool::new(4);
        let inputs: Vec<usize> = (0..57).collect();
        let out = pool.execute(inputs, |i| i * 3);
        assert_eq!(out, (0..57).map(|i| i * 3).collect::<Vec<_>>());
        assert!(pool.workers() == 4);
        let empty: Vec<usize> = pool.execute(Vec::new(), |i: usize| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn query_pool_runs_sharded_queries_concurrently() {
        let single = builder().build();
        let rules = rules(&single);
        let sharded = ShardedStore::build(builder(), 2);
        let cfg = TopkConfig::default();
        let queries: Vec<_> = (0..6)
            .map(|i| {
                QueryBuilder::new(&single)
                    .pattern_r_r_v(&format!("x{i}"), "p", "b")
                    .limit(4)
                    .build()
            })
            .collect();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| topk::run(&single, q, &rules, &cfg).0)
            .collect();
        let exec = ShardedExecutor::new(&sharded);
        let got = QueryPool::new(2).execute(queries, |q| {
            exec.run(&q, &rules, &cfg, SeedMode::Off).answers
        });
        for (g, e) in got.iter().zip(&expected) {
            assert_same_answers(g, e);
        }
    }
}
