//! Property tests for ranking metrics.

use proptest::prelude::*;

use trinit_eval::{average_precision, dcg_at, mean, ndcg_at, precision_at};

fn grades() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, 0..12)
}

proptest! {
    /// NDCG is always within [0, 1].
    #[test]
    fn ndcg_is_bounded(ranked in grades(), ideal in grades(), k in 1usize..10) {
        let v = ndcg_at(&ranked, &ideal, k);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    /// Ranking the ideal grades in ideal order scores exactly 1 (when
    /// anything is relevant).
    #[test]
    fn ideal_ranking_scores_one(ideal in grades(), k in 1usize..10) {
        let mut sorted = ideal.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let v = ndcg_at(&sorted, &ideal, k);
        if ideal.iter().any(|&g| g > 0) {
            prop_assert!((v - 1.0).abs() < 1e-9, "got {v}");
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Swapping a better-graded item earlier never lowers DCG.
    #[test]
    fn promoting_relevant_item_helps(ranked in grades(), k in 1usize..10) {
        if ranked.len() >= 2 {
            let mut better = ranked.clone();
            better.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert!(dcg_at(&better, k) + 1e-12 >= dcg_at(&ranked, k));
        }
    }

    /// Precision@k is a fraction of k.
    #[test]
    fn precision_bounded(ranked in grades(), k in 1usize..10) {
        let p = precision_at(&ranked, k);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// AP is within [0, 1] whenever total_relevant covers the ranking's
    /// relevant items.
    #[test]
    fn average_precision_bounded(ranked in grades()) {
        let relevant = ranked.iter().filter(|&&g| g > 0).count();
        let ap = average_precision(&ranked, relevant.max(1));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    /// Mean is within the min/max of its inputs.
    #[test]
    fn mean_is_in_range(values in proptest::collection::vec(0.0f64..1.0, 1..20)) {
        let m = mean(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-12 && m <= hi + 1e-12);
    }
}
