//! # trinit-eval — evaluation harness for the TriniT reproduction
//!
//! Regenerates every evaluation artifact of the paper (see `DESIGN.md`
//! §3 for the experiment index): the 70-query entity-relationship
//! benchmark with graded judgments ([`benchmark`]), NDCG/MAP metrics
//! ([`metrics`]), the four-system comparison of E1 ([`runner`]), and the
//! report tables printed by the `reproduce` binary.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchmark;
pub mod judge;
pub mod metrics;
pub mod report;
pub mod runner;

pub use benchmark::{generate_benchmark, BenchQuery, BenchmarkConfig, Category};
pub use judge::grade_ranking;
pub use metrics::{average_precision, dcg_at, mean, ndcg_at, precision_at};
pub use runner::{
    build_full_system, build_kg_only_system, build_sharded_system, build_world, efficiency_sweep,
    run_evaluation,
    EfficiencyRow, EvalConfig, Evaluation, SystemScores,
};
