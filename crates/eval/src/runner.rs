//! Evaluation runner: builds systems, runs the benchmark, scores them.
//!
//! Reproduces the paper's quality experiment (E1: NDCG@5 over 70 queries,
//! TriniT 0.775 vs next-best 0.419) with four systems:
//!
//! 1. **TriniT** — XKG (KG + Open IE) with mined relaxation rules,
//!    incremental top-k processing;
//! 2. **XKG, no relaxation** — ablation: extended data, no rewriting;
//! 3. **KG + relaxation** — ablation: rewriting without the extension;
//! 4. **exact KG baseline** — the non-relaxing structured-search
//!    state of the art the demo paper contrasts against.

use std::time::Instant;

use trinit_core::{Engine, Trinit, TrinitBuilder};
use trinit_query::ExecMetrics;
use trinit_worldgen::{project_kg, CorpusConfig, KgConfig, KgProjection, World, WorldConfig};

use crate::benchmark::{generate_benchmark, BenchQuery, BenchmarkConfig, Category};
use crate::judge::grade_ranking;
use crate::metrics::{average_precision, mean, ndcg_at, precision_at};

/// End-to-end evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Master seed (world, KG, corpus, benchmark all derive from it).
    pub seed: u64,
    /// World scale factor relative to [`WorldConfig::demo`] (1.0 ≈ 2 000
    /// people; the paper's setting is ~3 orders of magnitude larger).
    pub scale: f64,
    /// Queries per benchmark category.
    pub per_category: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            seed: 42,
            scale: 0.25,
            per_category: 14,
        }
    }
}

impl EvalConfig {
    /// World configuration derived from the master seed and scale.
    pub fn world_config(&self) -> WorldConfig {
        WorldConfig::demo(self.seed).scaled(self.scale)
    }

    /// Corpus configuration scaled to the world.
    pub fn corpus_config(&self) -> CorpusConfig {
        let mut c = CorpusConfig::demo(self.seed.wrapping_add(1));
        c.documents = ((c.documents as f64) * self.scale).max(200.0) as usize;
        c
    }

    /// KG projection configuration.
    pub fn kg_config(&self) -> KgConfig {
        KgConfig {
            seed: self.seed.wrapping_add(2),
            coverage_scale: 1.0,
        }
    }
}

/// Scores of one system over the benchmark.
#[derive(Debug, Clone)]
pub struct SystemScores {
    /// System label.
    pub name: &'static str,
    /// Mean NDCG@5 (the paper's headline metric).
    pub ndcg5: f64,
    /// Mean NDCG@10.
    pub ndcg10: f64,
    /// Mean average precision.
    pub map: f64,
    /// Mean precision@5.
    pub p5: f64,
    /// Mean NDCG@5 per category.
    pub per_category: Vec<(Category, f64)>,
}

/// A full evaluation result.
#[derive(Debug)]
pub struct Evaluation {
    /// Number of benchmark queries.
    pub queries: usize,
    /// Scores per system, in comparison order.
    pub systems: Vec<SystemScores>,
}

/// Builds the world + KG projection for an evaluation config.
pub fn build_world(cfg: &EvalConfig) -> (World, KgProjection) {
    let world = World::generate(cfg.world_config());
    let kg = project_kg(&world, &cfg.kg_config());
    (world, kg)
}

/// Builds the full TriniT system (KG + corpus + mining).
pub fn build_full_system(world: &World, cfg: &EvalConfig) -> Trinit {
    TrinitBuilder::from_world(world, &cfg.kg_config(), &cfg.corpus_config()).build()
}

/// Builds the full system over a sharded store backend (`shards` store
/// slices; see `trinit_core::BuildOptions::shards`).
///
/// Intended for throughput/scaling measurements (the E7 bench). Do not
/// feed sharded systems to engine-comparison sweeps
/// ([`efficiency_sweep`], [`score_system`] with `Engine::FullExpansion`
/// / `Engine::Exact`): a sharded backend serves *every* engine through
/// the partitioned top-k path, so such rows would compare top-k against
/// itself under a different label.
pub fn build_sharded_system(world: &World, cfg: &EvalConfig, shards: usize) -> Trinit {
    let mut builder = TrinitBuilder::from_world(world, &cfg.kg_config(), &cfg.corpus_config());
    builder.options_mut().shards(shards);
    builder.build()
}

/// Builds the KG-only system (no corpus; rules mined from the KG alone).
pub fn build_kg_only_system(world: &World, cfg: &EvalConfig) -> Trinit {
    let mut c = cfg.corpus_config();
    c.documents = 0;
    TrinitBuilder::from_world(world, &cfg.kg_config(), &c).build()
}

/// Scores one system over the benchmark queries.
pub fn score_system(
    name: &'static str,
    system: &Trinit,
    engine: Engine,
    use_rules: bool,
    queries: &[BenchQuery],
) -> SystemScores {
    let empty_rules = trinit_relax::RuleSet::new();
    let mut ndcg5s = Vec::new();
    let mut ndcg10s = Vec::new();
    let mut maps = Vec::new();
    let mut p5s = Vec::new();
    let mut per_cat: Vec<(Category, Vec<f64>)> =
        Category::ALL.into_iter().map(|c| (c, Vec::new())).collect();

    for q in queries {
        let parsed = system.parse(&q.text).expect("benchmark queries parse");
        let rules = if use_rules {
            system.rules()
        } else {
            &empty_rules
        };
        let outcome = system.run_with_rules(parsed, engine, rules);
        let grades = grade_ranking(system.store(), &outcome.answers, &q.ideal);
        let ideal_grades: Vec<u8> = q.ideal.values().copied().collect();
        let n5 = ndcg_at(&grades, &ideal_grades, 5);
        ndcg5s.push(n5);
        ndcg10s.push(ndcg_at(&grades, &ideal_grades, 10));
        maps.push(average_precision(&grades, q.relevant_entities));
        p5s.push(precision_at(&grades, 5));
        per_cat
            .iter_mut()
            .find(|(c, _)| *c == q.category)
            .expect("category known")
            .1
            .push(n5);
    }

    SystemScores {
        name,
        ndcg5: mean(&ndcg5s),
        ndcg10: mean(&ndcg10s),
        map: mean(&maps),
        p5: mean(&p5s),
        per_category: per_cat
            .into_iter()
            .map(|(c, v)| (c, mean(&v)))
            .collect(),
    }
}

/// Runs the full E1 evaluation: all four systems over the benchmark.
pub fn run_evaluation(cfg: &EvalConfig) -> Evaluation {
    let (world, kg) = build_world(cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: cfg.seed.wrapping_add(3),
            per_category: cfg.per_category,
        },
    );
    let full = build_full_system(&world, cfg);
    let kg_only = build_kg_only_system(&world, cfg);

    let systems = vec![
        score_system(
            "TriniT (XKG + relaxation)",
            &full,
            Engine::IncrementalTopK,
            true,
            &queries,
        ),
        score_system(
            "XKG, no relaxation",
            &full,
            Engine::IncrementalTopK,
            false,
            &queries,
        ),
        score_system(
            "KG + relaxation",
            &kg_only,
            Engine::IncrementalTopK,
            true,
            &queries,
        ),
        score_system(
            "exact KG baseline",
            &kg_only,
            Engine::Exact,
            false,
            &queries,
        ),
    ];

    Evaluation {
        queries: queries.len(),
        systems,
    }
}

/// One row of the E5 efficiency experiment.
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// Engine label.
    pub engine: &'static str,
    /// Result-list size requested.
    pub k: usize,
    /// Total wall time over the query set, milliseconds.
    pub wall_ms: f64,
    /// Accumulated work counters.
    pub metrics: ExecMetrics,
    /// Total answers returned.
    pub answers: usize,
}

/// Runs the E5 efficiency sweep: incremental top-k vs full expansion vs
/// exact, for each `k`.
pub fn efficiency_sweep(system: &Trinit, queries: &[BenchQuery], ks: &[usize]) -> Vec<EfficiencyRow> {
    let engines: [(&'static str, Engine); 3] = [
        ("incremental top-k", Engine::IncrementalTopK),
        ("full expansion", Engine::FullExpansion),
        ("exact (no relaxation)", Engine::Exact),
    ];
    let mut rows = Vec::new();
    for &k in ks {
        for (name, engine) in engines {
            let mut metrics = ExecMetrics::default();
            let mut answers = 0usize;
            // lint:allow(clock-discipline): offline evaluation harness measuring wall-clock throughput, not a serving path
            let start = Instant::now();
            for q in queries {
                let mut parsed = system.parse(&q.text).expect("benchmark queries parse");
                parsed.k = k;
                let outcome = system.run(parsed, engine);
                metrics.merge(&outcome.metrics);
                answers += outcome.answers.len();
            }
            rows.push(EfficiencyRow {
                engine: name,
                k,
                wall_ms: start.elapsed().as_secs_f64() * 1e3,
                metrics,
                answers,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            seed: 7,
            scale: 0.08,
            per_category: 4,
        }
    }

    #[test]
    fn evaluation_reproduces_paper_shape() {
        let eval = run_evaluation(&small_cfg());
        assert_eq!(eval.queries, 20);
        let trinit = &eval.systems[0];
        let baseline = eval.systems.last().unwrap();
        assert!(
            trinit.ndcg5 > baseline.ndcg5,
            "TriniT ({:.3}) must beat the exact KG baseline ({:.3})",
            trinit.ndcg5,
            baseline.ndcg5
        );
        // The paper's gap is 0.775 vs 0.419 ≈ 1.85×; at tiny scale we only
        // assert a clear margin.
        assert!(trinit.ndcg5 >= baseline.ndcg5 + 0.15);
        // Ablations fall between the extremes (each addresses only one
        // failure mode).
        let no_relax = &eval.systems[1];
        assert!(trinit.ndcg5 >= no_relax.ndcg5 - 1e-9);
    }

    #[test]
    fn efficiency_sweep_counts_work() {
        let cfg = small_cfg();
        let (world, kg) = build_world(&cfg);
        let queries = generate_benchmark(
            &world,
            &kg,
            &crate::benchmark::BenchmarkConfig {
                seed: 1,
                per_category: 2,
            },
        );
        let system = build_full_system(&world, &cfg);
        let rows = efficiency_sweep(&system, &queries, &[1, 5]);
        assert_eq!(rows.len(), 6);
        let topk_row = rows.iter().find(|r| r.engine == "incremental top-k" && r.k == 1).unwrap();
        let full_row = rows.iter().find(|r| r.engine == "full expansion" && r.k == 1).unwrap();
        assert!(
            topk_row.metrics.posting_lists_built <= full_row.metrics.posting_lists_built,
            "incremental top-k must not build more posting lists than full expansion \
             ({} vs {})",
            topk_row.metrics.posting_lists_built,
            full_row.metrics.posting_lists_built,
        );
    }
}
