//! ASCII-table rendering of evaluation results.

use trinit_core::BuildStats;

use crate::runner::{EfficiencyRow, Evaluation, SystemScores};

/// Renders the E1 quality table (paper: NDCG@5 0.775 vs 0.419).
pub fn quality_table(eval: &Evaluation) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E1 — answer quality over {} entity-relationship queries\n",
        eval.queries
    ));
    out.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}\n",
        "system", "NDCG@5", "NDCG@10", "MAP", "P@5"
    ));
    for s in &eval.systems {
        out.push_str(&format!(
            "{:<28} {:>8.3} {:>8.3} {:>8.3} {:>8.3}\n",
            s.name, s.ndcg5, s.ndcg10, s.map, s.p5
        ));
    }
    out
}

/// Renders the per-category NDCG@5 breakdown of one system.
pub fn category_table(scores: &SystemScores) -> String {
    let mut out = String::new();
    out.push_str(&format!("per-category NDCG@5 — {}\n", scores.name));
    for (cat, v) in &scores.per_category {
        out.push_str(&format!("  {:<30} {:>6.3}\n", cat.name(), v.max(0.0)));
    }
    out
}

/// Renders the E2 dataset table (paper: 440 M triples = 50 M KG + 390 M
/// Open IE extractions).
pub fn build_table(stats: &BuildStats) -> String {
    let mut out = String::new();
    out.push_str("E2 — XKG construction\n");
    out.push_str(&format!(
        "  KG triples (curated):        {:>10}\n",
        stats.kg_triples
    ));
    out.push_str(&format!(
        "  XKG triples (Open IE):       {:>10}\n",
        stats.xkg_triples
    ));
    out.push_str(&format!(
        "  total distinct triples:      {:>10}\n",
        stats.total_triples()
    ));
    out.push_str(&format!(
        "  documents ingested:          {:>10}\n",
        stats.documents
    ));
    out.push_str(&format!(
        "  sentences processed:         {:>10}\n",
        stats.ingest.sentences
    ));
    out.push_str(&format!(
        "  extractions kept:            {:>10}\n",
        stats.ingest.kept
    ));
    out.push_str(&format!(
        "  argument link rate:          {:>9.1}%\n",
        stats.ingest.link_rate() * 100.0
    ));
    out.push_str(&format!(
        "  relaxation rules mined:      {:>10}\n",
        stats.rules
    ));
    out
}

/// Renders the E5 efficiency table.
pub fn efficiency_table(rows: &[EfficiencyRow]) -> String {
    let mut out = String::new();
    out.push_str("E5 — query processing efficiency (totals over the query set)\n");
    out.push_str(&format!(
        "{:<24} {:>4} {:>10} {:>10} {:>12} {:>12} {:>10}\n",
        "engine", "k", "wall ms", "lists", "postings", "relaxations", "answers"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>4} {:>10.1} {:>10} {:>12} {:>12} {:>10}\n",
            r.engine,
            r.k,
            r.wall_ms,
            r.metrics.posting_lists_built,
            r.metrics.postings_scanned,
            r.metrics.relaxations_opened,
            r.answers
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::Category;

    #[test]
    fn tables_render_without_panicking() {
        let eval = Evaluation {
            queries: 70,
            systems: vec![SystemScores {
                name: "TriniT",
                ndcg5: 0.775,
                ndcg10: 0.8,
                map: 0.7,
                p5: 0.6,
                per_category: Category::ALL.into_iter().map(|c| (c, 0.5)).collect(),
            }],
        };
        let t = quality_table(&eval);
        assert!(t.contains("0.775"));
        let c = category_table(&eval.systems[0]);
        assert!(c.contains("granularity"));
    }
}
