//! Ranking quality metrics.
//!
//! The paper reports **NDCG@5** over 70 entity-relationship queries
//! (TriniT 0.775 vs next-best 0.419, §4). We implement graded NDCG@k
//! with the standard exponential gain `(2^rel − 1) / log2(rank + 1)`,
//! plus MAP and Precision@k for completeness.

/// Discounted cumulative gain at cutoff `k` over graded relevances in
/// rank order.
pub fn dcg_at(grades: &[u8], k: usize) -> f64 {
    grades
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &g)| {
            let gain = (1u32 << g) as f64 - 1.0; // 2^g - 1
            gain / ((i as f64) + 2.0).log2()
        })
        .sum()
}

/// Normalized DCG at cutoff `k`.
///
/// `ranked` are the grades of the returned answers in rank order;
/// `ideal_grades` are the grades of *all* relevant items (any order).
/// Returns 0.0 when there are no relevant items (a query with an empty
/// ideal set contributes nothing, mirroring standard practice).
pub fn ndcg_at(ranked: &[u8], ideal_grades: &[u8], k: usize) -> f64 {
    let mut ideal: Vec<u8> = ideal_grades.to_vec();
    ideal.sort_unstable_by(|a, b| b.cmp(a));
    let idcg = dcg_at(&ideal, k);
    if idcg <= 0.0 {
        return 0.0;
    }
    (dcg_at(ranked, k) / idcg).clamp(0.0, 1.0).max(0.0)
}

/// Precision at cutoff `k` (graded relevance > 0 counts as relevant).
pub fn precision_at(ranked: &[u8], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked.iter().take(k).filter(|&&g| g > 0).count();
    hits as f64 / k as f64
}

/// Average precision of one ranking (relevant = grade > 0).
///
/// `total_relevant` is the number of relevant items in the ideal set.
pub fn average_precision(ranked: &[u8], total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &g) in ranked.iter().enumerate() {
        if g > 0 {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Arithmetic mean, 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_ndcg_one() {
        let ranked = [2, 2, 1, 0];
        let ideal = [2, 2, 1];
        assert!((ndcg_at(&ranked, &ideal, 5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reversed_ranking_scores_lower() {
        let good = [2, 1, 0];
        let bad = [0, 1, 2];
        let ideal = [2, 1];
        assert!(ndcg_at(&good, &ideal, 5) > ndcg_at(&bad, &ideal, 5));
    }

    #[test]
    fn empty_results_score_zero() {
        assert_eq!(ndcg_at(&[], &[2, 1], 5), 0.0);
    }

    #[test]
    fn no_relevant_items_scores_zero() {
        assert_eq!(ndcg_at(&[0, 0], &[], 5), 0.0);
    }

    #[test]
    fn cutoff_is_respected() {
        // A relevant item at rank 6 does not help NDCG@5.
        let ranked = [0, 0, 0, 0, 0, 2];
        let ideal = [2];
        assert_eq!(ndcg_at(&ranked, &ideal, 5), 0.0);
        assert!(ndcg_at(&ranked, &ideal, 6) > 0.0);
    }

    #[test]
    fn dcg_discounts_by_rank() {
        // Same grade set, earlier placement wins.
        assert!(dcg_at(&[2, 0], 5) > dcg_at(&[0, 2], 5));
        // Grade 2 gain (3.0) at rank 1: 3 / log2(2) = 3.
        assert!((dcg_at(&[2], 5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn precision_counts_graded_hits() {
        assert!((precision_at(&[2, 0, 1, 0, 0], 5) - 0.4).abs() < 1e-9);
        assert_eq!(precision_at(&[], 5), 0.0);
        assert_eq!(precision_at(&[2], 0), 0.0);
    }

    #[test]
    fn average_precision_basics() {
        // Relevant at ranks 1 and 3, 2 relevant total:
        // AP = (1/1 + 2/3) / 2 = 5/6.
        let ap = average_precision(&[1, 0, 2], 2);
        assert!((ap - 5.0 / 6.0).abs() < 1e-9);
        assert_eq!(average_precision(&[1], 0), 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_monotone_in_adding_relevant_at_top() {
        let ideal = [2, 2, 2];
        let worse = [0, 2, 2];
        let better = [2, 2, 2];
        assert!(ndcg_at(&better, &ideal, 5) >= ndcg_at(&worse, &ideal, 5));
    }
}
