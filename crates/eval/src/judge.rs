//! Grading system answers against benchmark judgments.

use std::collections::HashMap;

use trinit_query::Answer;
use trinit_xkg::XkgStore;

use crate::benchmark::normalize;

/// Grades a ranked answer list: for each answer, the grade of its first
/// projected binding under the ideal map (0 if irrelevant or unbound).
///
/// Duplicate surface forms (the same entity reached as a resource and as
/// a token) are graded once — later duplicates get 0, mirroring how an
/// assessor would mark a redundant result.
pub fn grade_ranking(
    store: &XkgStore,
    answers: &[Answer],
    ideal: &HashMap<String, u8>,
) -> Vec<u8> {
    let mut seen: Vec<String> = Vec::new();
    answers
        .iter()
        .map(|a| {
            let Some((_, Some(term))) = a.key.first() else {
                return 0;
            };
            let Some(text) = store.dict().resolve(*term) else {
                return 0;
            };
            let key = normalize(text);
            if seen.contains(&key) {
                return 0;
            }
            seen.push(key.clone());
            ideal.get(&key).copied().unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_query::{Bindings, Derivation};
    use trinit_relax::VarId;
    use trinit_xkg::XkgBuilder;

    fn answer_for(store: &XkgStore, name: &str) -> Answer {
        let term = store.resource(name).or_else(|| store.token(name)).unwrap();
        Answer {
            key: vec![(VarId(0), Some(term))],
            bindings: Bindings::new(1),
            score: -1.0,
            derivation: Derivation::unrelaxed(),
        }
    }

    #[test]
    fn grades_resources_and_tokens() {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AdaLum", "p", "o");
        let tok = b.dict_mut().token("quantum flane theory");
        let s = b.dict_mut().resource("AdaLum");
        let src = b.intern_source("d");
        b.add_extracted(s, tok, tok, 0.5, src);
        let store = b.build();

        let mut ideal = HashMap::new();
        ideal.insert("adalum".to_string(), 2u8);
        ideal.insert("quantum flane theory".to_string(), 1u8);

        let answers = vec![
            answer_for(&store, "AdaLum"),
            answer_for(&store, "quantum flane theory"),
        ];
        assert_eq!(grade_ranking(&store, &answers, &ideal), vec![2, 1]);
    }

    #[test]
    fn irrelevant_and_unbound_get_zero() {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("X", "p", "o");
        let store = b.build();
        let ideal = HashMap::new();
        let mut unbound = answer_for(&store, "X");
        unbound.key = vec![(VarId(0), None)];
        let answers = vec![answer_for(&store, "X"), unbound];
        assert_eq!(grade_ranking(&store, &answers, &ideal), vec![0, 0]);
    }

    #[test]
    fn duplicate_surface_forms_graded_once() {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AdaLum", "p", "o");
        let store = b.build();
        let mut ideal = HashMap::new();
        ideal.insert("adalum".to_string(), 2u8);
        let answers = vec![answer_for(&store, "AdaLum"), answer_for(&store, "AdaLum")];
        assert_eq!(grade_ranking(&store, &answers, &ideal), vec![2, 0]);
    }
}
