//! The 70-query entity-relationship benchmark.
//!
//! The paper evaluates on "a challenging set of 70 entity-relationship
//! queries" (§4, from the WSDM'16 companion \[14\]). We regenerate an
//! equivalent workload from the synthetic world: five categories of 14
//! queries each, four of them instantiating the §1 failure modes (users
//! A–D) and one of direct control queries, with exact graded relevance
//! judgments derived from world ground truth.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trinit_worldgen::{EntityType, KgProjection, Obj, Relation, World};

/// Benchmark query category, mirroring the paper's motivating users.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Control: queries the KG answers directly.
    Direct,
    /// User A: granularity mismatch (born in *country* vs city).
    Granularity,
    /// User B: direction mismatch (advisor vs student, asked via text).
    Inversion,
    /// User C: fact missing from the KG but present in text.
    Incompleteness,
    /// User D: predicate absent from the KG vocabulary entirely.
    MissingPredicate,
}

impl Category {
    /// All categories in report order.
    pub const ALL: [Category; 5] = [
        Category::Direct,
        Category::Granularity,
        Category::Inversion,
        Category::Incompleteness,
        Category::MissingPredicate,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Direct => "direct",
            Category::Granularity => "granularity (user A)",
            Category::Inversion => "inversion (user B)",
            Category::Incompleteness => "incompleteness (user C)",
            Category::MissingPredicate => "missing predicate (user D)",
        }
    }
}

/// One benchmark query with graded relevance judgments.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Stable query id.
    pub id: usize,
    /// Failure-mode category.
    pub category: Category,
    /// Query text in the extended triple-pattern syntax.
    pub text: String,
    /// Graded ideal answers: normalized surface form → grade (2 =
    /// primary, 1 = secondary). Multiple keys may denote the same entity
    /// (resource id and display name).
    pub ideal: HashMap<String, u8>,
    /// Number of distinct relevant entities (for MAP).
    pub relevant_entities: usize,
}

/// Benchmark generation knobs.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// RNG seed.
    pub seed: u64,
    /// Queries per category (paper total: 70 = 5 × 14).
    pub per_category: usize,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            seed: 0xBE7C,
            per_category: 14,
        }
    }
}

/// Normalizes a surface form for judging.
pub fn normalize(s: &str) -> String {
    s.to_lowercase()
}

/// Inserts both judging keys of an entity (resource id and display name).
fn insert_entity(ideal: &mut HashMap<String, u8>, world: &World, id: trinit_worldgen::EntityId, grade: u8) {
    let e = world.entity(id);
    let keys = [normalize(&e.resource), normalize(&e.name)];
    for k in keys {
        let slot = ideal.entry(k).or_insert(0);
        if grade > *slot {
            *slot = grade;
        }
    }
}

/// Counts distinct relevant entities in an ideal map built by
/// [`insert_entity`] (each entity contributes up to two keys; we count
/// via a parallel set the builders maintain).
struct IdealBuilder<'w> {
    world: &'w World,
    ideal: HashMap<String, u8>,
    entities: Vec<trinit_worldgen::EntityId>,
}

impl<'w> IdealBuilder<'w> {
    fn new(world: &'w World) -> IdealBuilder<'w> {
        IdealBuilder {
            world,
            ideal: HashMap::new(),
            entities: Vec::new(),
        }
    }

    fn add(&mut self, id: trinit_worldgen::EntityId, grade: u8) {
        insert_entity(&mut self.ideal, self.world, id, grade);
        if !self.entities.contains(&id) {
            self.entities.push(id);
        }
    }

    fn finish(self) -> (HashMap<String, u8>, usize) {
        let n = self.entities.len();
        (self.ideal, n)
    }
}

/// Generates the benchmark from a world and its KG projection.
pub fn generate_benchmark(
    world: &World,
    kg: &KgProjection,
    cfg: &BenchmarkConfig,
) -> Vec<BenchQuery> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let mut id = 0usize;
    let push = |out: &mut Vec<BenchQuery>,
                    id: &mut usize,
                    category: Category,
                    text: String,
                    builder: IdealBuilder<'_>| {
        let (ideal, relevant) = builder.finish();
        if ideal.is_empty() {
            return false;
        }
        out.push(BenchQuery {
            id: *id,
            category,
            text,
            ideal,
            relevant_entities: relevant,
        });
        *id += 1;
        true
    };

    // --- Direct (control): who won prize P / works for C / born in city.
    {
        let mut made = 0;
        let prizes = world.of_type(EntityType::Prize);
        let companies = world.of_type(EntityType::Company);
        let cities = world.of_type(EntityType::City);
        let mut round = 0;
        while made < cfg.per_category && round < 400 {
            round += 1;
            let (pred, object, relation) = match round % 3 {
                0 if !prizes.is_empty() => (
                    "wonPrize",
                    prizes[rng.gen_range(0..prizes.len())],
                    Relation::WonPrize,
                ),
                1 if !companies.is_empty() => (
                    "worksFor",
                    companies[rng.gen_range(0..companies.len())],
                    Relation::WorksFor,
                ),
                _ => (
                    "bornIn",
                    cities[rng.gen_range(0..cities.len())],
                    Relation::BornIn,
                ),
            };
            let mut builder = IdealBuilder::new(world);
            for f in world.facts_of(relation) {
                if f.object == Obj::Entity(object) {
                    builder.add(f.subject, 2);
                }
            }
            let text = format!(
                "?x {pred} {} LIMIT 10",
                world.entity(object).resource
            );
            if out.iter().any(|q: &BenchQuery| q.text == text) {
                continue;
            }
            push(&mut out, &mut id, Category::Direct, text, builder);
            made = out
                .iter()
                .filter(|q| q.category == Category::Direct)
                .count();
        }
    }

    // --- Granularity (user A): ?x bornIn/diedIn <Country>. Both
    // relations are asserted at city granularity in the KG.
    {
        let countries = world.of_type(EntityType::Country);
        let mut made = 0;
        let mut i = 0;
        while made < cfg.per_category && i < countries.len() * 2 {
            let country = countries[i % countries.len()];
            let (pred, relation) = if i < countries.len() {
                ("bornIn", Relation::BornIn)
            } else {
                ("diedIn", Relation::DiedIn)
            };
            i += 1;
            let mut builder = IdealBuilder::new(world);
            // Truth: people born/died in a city located in this country.
            for f in world.facts_of(relation) {
                let Obj::Entity(city) = f.object else { continue };
                let in_country = world.facts.iter().any(|g| {
                    g.subject == city
                        && g.relation == Relation::CityInCountry
                        && g.object == Obj::Entity(country)
                });
                if in_country {
                    builder.add(f.subject, 2);
                }
            }
            let text = format!("?x {pred} {} LIMIT 10", world.entity(country).resource);
            if out.iter().any(|q: &BenchQuery| q.text == text) {
                continue;
            }
            if push(&mut out, &mut id, Category::Granularity, text, builder) {
                made += 1;
            }
        }
    }

    // --- Inversion (user B): <Student> 'studied under' ?x.
    {
        let mut made = 0;
        let advisor_facts: Vec<_> = world.facts_of(Relation::HasStudent).collect();
        let mut i = 0;
        while made < cfg.per_category && i < advisor_facts.len() {
            let f = advisor_facts[i];
            i += 1;
            let Obj::Entity(student) = f.object else { continue };
            let mut builder = IdealBuilder::new(world);
            for g in world.facts_of(Relation::HasStudent) {
                if g.object == Obj::Entity(student) {
                    builder.add(g.subject, 2);
                }
            }
            let text = format!(
                "{} 'studied under' ?x LIMIT 10",
                world.entity(student).resource
            );
            if out.iter().any(|q: &BenchQuery| q.text == text) {
                continue;
            }
            if push(&mut out, &mut id, Category::Inversion, text, builder) {
                made += 1;
            }
        }
    }

    // --- Incompleteness (user C): <Person> affiliation ?x where the
    // affiliation fact was dropped from the KG.
    {
        let mut made = 0;
        for (fi, f) in world.facts.iter().enumerate() {
            if made >= cfg.per_category {
                break;
            }
            if f.relation != Relation::AffiliatedWith || kg.included[fi] {
                continue;
            }
            let person = f.subject;
            let mut builder = IdealBuilder::new(world);
            for g in world.facts.iter() {
                if g.subject != person {
                    continue;
                }
                match g.relation {
                    Relation::AffiliatedWith => {
                        if let Obj::Entity(o) = g.object {
                            builder.add(o, 2);
                        }
                    }
                    Relation::LecturedAt => {
                        if let Obj::Entity(o) = g.object {
                            builder.add(o, 1);
                        }
                    }
                    _ => {}
                }
            }
            let text = format!(
                "{} affiliation ?x LIMIT 10",
                world.entity(person).resource
            );
            if out.iter().any(|q: &BenchQuery| q.text == text) {
                continue;
            }
            if push(&mut out, &mut id, Category::Incompleteness, text, builder) {
                made += 1;
            }
        }
    }

    // --- Missing predicate (user D): <Winner> 'was honored for' ?x.
    {
        let mut made = 0;
        for f in world.facts_of(Relation::PrizeFor) {
            if made >= cfg.per_category {
                break;
            }
            let winner = f.subject;
            let mut builder = IdealBuilder::new(world);
            for g in world.facts_of(Relation::PrizeFor) {
                if g.subject == winner {
                    if let Obj::Entity(field) = g.object {
                        builder.add(field, 2);
                    }
                }
            }
            let text = format!(
                "{} 'honored for' ?x LIMIT 10",
                world.entity(winner).resource
            );
            if out.iter().any(|q: &BenchQuery| q.text == text) {
                continue;
            }
            if push(&mut out, &mut id, Category::MissingPredicate, text, builder) {
                made += 1;
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_worldgen::{project_kg, KgConfig, WorldConfig};

    fn setup() -> (World, KgProjection) {
        let world = World::generate(WorldConfig::demo(3).scaled(0.2));
        let kg = project_kg(&world, &KgConfig::default());
        (world, kg)
    }

    #[test]
    fn full_benchmark_has_70_queries() {
        let (world, kg) = setup();
        let queries = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        assert_eq!(queries.len(), 70, "5 categories × 14");
        for cat in Category::ALL {
            let n = queries.iter().filter(|q| q.category == cat).count();
            assert_eq!(n, 14, "category {cat:?}");
        }
    }

    #[test]
    fn every_query_has_judgments() {
        let (world, kg) = setup();
        let queries = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        for q in &queries {
            assert!(!q.ideal.is_empty(), "query {} has no judgments", q.text);
            assert!(q.relevant_entities > 0);
        }
    }

    #[test]
    fn queries_are_distinct() {
        let (world, kg) = setup();
        let queries = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        let mut texts: Vec<&str> = queries.iter().map(|q| q.text.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), queries.len());
    }

    #[test]
    fn incompleteness_queries_target_dropped_facts() {
        let (world, kg) = setup();
        let queries = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        // By construction the subject's affiliation fact is not in the KG;
        // re-verify for one sampled query.
        let q = queries
            .iter()
            .find(|q| q.category == Category::Incompleteness)
            .unwrap();
        let subject = q.text.split_whitespace().next().unwrap();
        let entity = world.find_resource(subject).unwrap();
        let dropped = world.facts.iter().enumerate().any(|(i, f)| {
            f.subject == entity.id
                && f.relation == Relation::AffiliatedWith
                && !kg.included[i]
        });
        assert!(dropped);
    }

    #[test]
    fn generation_is_deterministic() {
        let (world, kg) = setup();
        let a = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        let b = generate_benchmark(&world, &kg, &BenchmarkConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn normalization_lowercases() {
        assert_eq!(normalize("Quantum Flane Theory"), "quantum flane theory");
    }
}
