//! Regenerates every evaluation artifact of the TriniT paper.
//!
//! ```text
//! cargo run -p trinit-eval --bin reproduce --release -- all
//! cargo run -p trinit-eval --bin reproduce --release -- e1
//! ```
//!
//! Experiments (see DESIGN.md §3):
//!   e1  quality: NDCG@5 over 70 queries, four systems
//!   e2  dataset: XKG construction statistics
//!   e3  users A–D: relaxation recovers the motivating failure modes
//!   e4  mined relaxation rules (Figure 4 analogue)
//!   e5  efficiency: incremental top-k vs full expansion vs exact
//!   e6  query interface walkthrough (Figure 5 analogue)
//!   e7  answer explanation (Figure 6 analogue)
//!   e8  query suggestion quality

use trinit_core::fixtures::{paper_rules_with_advisor, paper_store};
use trinit_core::{Engine, Session, Trinit};
use trinit_eval::{
    benchmark::BenchmarkConfig, build_full_system, build_world, efficiency_sweep,
    generate_benchmark, report, run_evaluation, EvalConfig,
};
use trinit_relax::{mine_cooccurrence, MinerConfig, RuleKind};

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn e1(cfg: &EvalConfig) {
    header("E1: answer quality (paper: NDCG@5 0.775 TriniT vs 0.419 next-best)");
    let eval = run_evaluation(cfg);
    print!("{}", report::quality_table(&eval));
    println!();
    for s in &eval.systems {
        print!("{}", report::category_table(s));
    }
    let trinit = &eval.systems[0];
    let baseline = eval.systems.last().expect("systems non-empty");
    println!(
        "\npaper ratio TriniT/baseline: {:.2}x   measured: {:.2}x",
        0.775 / 0.419,
        trinit.ndcg5 / baseline.ndcg5.max(1e-9)
    );
}

fn e2(cfg: &EvalConfig) {
    header("E2: XKG construction (paper: 440 M distinct triples = 50 M KG + 390 M Open IE)");
    let (world, _) = build_world(cfg);
    let system = build_full_system(&world, cfg);
    print!("{}", report::build_table(system.stats()));
    let s = system.stats();
    println!(
        "  XKG:KG ratio                 paper 7.8:1, measured {:.1}:1",
        s.xkg_triples as f64 / s.kg_triples.max(1) as f64
    );
}

fn e3() {
    header("E3: the four motivating failure modes (paper \u{a7}1, users A-D)");
    let store = paper_store();
    // hasAdvisor is deliberately out-of-vocabulary; obtain its query-layer
    // id first so rule 2 can be registered against it.
    let probe = {
        let mut qb = trinit_query::QueryBuilder::new(&store);
        qb.resource("hasAdvisor")
    };
    let rules = paper_rules_with_advisor(&store, probe);
    let system = Trinit::from_parts(store, rules);

    let cases = [
        ("A", "Who was born in Germany?", "?x bornIn Germany"),
        (
            "B",
            "Who was the advisor of Albert Einstein?",
            "AlbertEinstein hasAdvisor ?x",
        ),
        (
            "C",
            "Ivy League university Einstein was affiliated with",
            "AlbertEinstein affiliation ?x . ?x member IvyLeague",
        ),
        (
            "D",
            "What did Albert Einstein win a Nobel prize for?",
            "AlbertEinstein 'won nobel for' ?x",
        ),
    ];
    println!(
        "{:<4} {:<44} {:>7} {:>7}",
        "user", "information need", "exact", "TriniT"
    );
    for (user, need, text) in cases {
        let exact = system
            .run(system.parse(text).expect("parses"), Engine::Exact)
            .answers
            .len();
        let outcome = system.query(text).expect("parses");
        let top = outcome
            .answers
            .first()
            .map(|a| {
                a.key
                    .iter()
                    .filter_map(|(_, t)| t.map(|t| system.store().display_term(t)))
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_else(|| "(no answer)".to_string());
        println!(
            "{user:<4} {need:<44} {exact:>7} {:>7}   top: {top}",
            outcome.answers.len()
        );
    }
}

fn e4(cfg: &EvalConfig) {
    header("E4: relaxation rules mined from the XKG (paper Figure 4 + \u{a7}3 formula)");
    let (world, _) = build_world(cfg);
    let system = build_full_system(&world, cfg);
    let mined = mine_cooccurrence(
        system.store(),
        &MinerConfig {
            min_overlap: 3,
            min_weight: 0.2,
            inversions: true,
            max_rules: 12,
        },
    );
    println!(
        "{:<66} {:>7} {:>9} {:>7}",
        "rule", "overlap", "|args p2|", "weight"
    );
    for m in &mined {
        let kind = match m.rule.kind {
            RuleKind::Inversion => " (inv)",
            _ => "",
        };
        let mut label = m.rule.label.clone();
        label.truncate(58);
        println!(
            "{:<66} {:>7} {:>9} {:>7.3}",
            format!("{label}{kind}"),
            m.overlap,
            m.args_p2,
            m.rule.weight
        );
    }
    println!("\ntotal rules in the system set: {}", system.rules().len());
}

fn e5(cfg: &EvalConfig) {
    header("E5: efficiency — avoiding the full rewriting space (\u{a7}4)");
    let (world, kg) = build_world(cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: cfg.seed.wrapping_add(3),
            per_category: cfg.per_category.min(6),
        },
    );
    let system = build_full_system(&world, cfg);
    let rows = efficiency_sweep(&system, &queries, &[1, 5, 10, 50]);
    print!("{}", report::efficiency_table(&rows));
}

fn e6() {
    header("E6: query interface walkthrough (paper Figure 5)");
    let store = paper_store();
    let rules = trinit_core::fixtures::paper_rules(&store);
    let system = Trinit::from_parts(store, rules);
    let session = Session::new(&system);
    println!("user query (Figure 5):");
    println!("  AlbertEinstein  affiliation  ?x");
    println!("  ?x  member  IvyLeague");
    println!("  with rules 3 ('housed in', w=0.8) and 4 ('lectured at', w=0.7)");
    println!(
        "auto-completion for 'Alb': {:?}",
        system
            .complete("Alb", 3)
            .iter()
            .map(|c| c.text.as_str())
            .collect::<Vec<_>>()
    );
    let outcome = session
        .query("AlbertEinstein affiliation ?x . ?x member IvyLeague LIMIT 5")
        .expect("parses");
    println!("\nresults (k=5):");
    for (i, a) in outcome.answers.iter().enumerate() {
        let value = a
            .key
            .iter()
            .filter_map(|(_, t)| t.map(|t| system.store().display_term(t)))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  {}. {value}   (log-score {:.3})", i + 1, a.score);
    }
    for s in system.suggest(&outcome) {
        println!("  note: {}", s.render());
    }
}

fn e7() {
    header("E7: answer explanation (paper Figure 6)");
    let store = paper_store();
    let rules = trinit_core::fixtures::paper_rules(&store);
    let system = Trinit::from_parts(store, rules);
    let outcome = system
        .query("AlbertEinstein affiliation ?x . ?x member IvyLeague LIMIT 5")
        .expect("parses");
    match system.explain(&outcome, 0) {
        Some(explanation) => print!("{}", explanation.render()),
        None => println!("(no answers to explain)"),
    }
    println!();
    print!("{}", system.processing_report(&outcome));
}

fn e8(cfg: &EvalConfig) {
    header("E8: query suggestion quality (paper \u{a7}5)");
    let (world, kg) = build_world(cfg);
    let queries = generate_benchmark(
        &world,
        &kg,
        &BenchmarkConfig {
            seed: cfg.seed.wrapping_add(3),
            per_category: cfg.per_category,
        },
    );
    let system = build_full_system(&world, cfg);
    // For every inversion-category query (token predicate 'studied
    // under'), does suggestion propose the canonical `hasStudent`?
    let mut considered = 0usize;
    let mut hit = 0usize;
    for q in queries
        .iter()
        .filter(|q| q.category == trinit_eval::Category::Inversion)
    {
        let outcome = system.query(&q.text).expect("parses");
        let suggestions = system.suggest(&outcome);
        considered += 1;
        if suggestions.iter().any(|s| matches!(
            s,
            trinit_core::Suggestion::ReplaceToken { resource, .. } if resource == "hasStudent"
        )) {
            hit += 1;
        }
    }
    println!(
        "token-predicate queries where the canonical KG predicate was suggested: {hit}/{considered}"
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let cfg = EvalConfig::default();
    println!(
        "TriniT reproduction — experiment driver (seed {}, scale {})",
        cfg.seed, cfg.scale
    );
    match arg.as_str() {
        "e1" => e1(&cfg),
        "e2" => e2(&cfg),
        "e3" => e3(),
        "e4" => e4(&cfg),
        "e5" => e5(&cfg),
        "e6" => e6(),
        "e7" => e7(),
        "e8" => e8(&cfg),
        "all" => {
            e1(&cfg);
            e2(&cfg);
            e3();
            e4(&cfg);
            e5(&cfg);
            e6();
            e7();
            e8(&cfg);
        }
        other => {
            eprintln!("unknown experiment {other:?}; use e1..e8 or all");
            std::process::exit(2);
        }
    }
}
