//! A comment-, string-, and raw-string-aware Rust token scanner.
//!
//! The rule engine ([`crate::rules`]) needs exactly three things from a
//! source file, and this module provides all of them without a real
//! parser:
//!
//! 1. a stream of **significant tokens** (identifiers, punctuation,
//!    opaque literals) with line numbers — comments, string contents,
//!    raw strings (`r#"…"#` with any hash count), byte strings, char
//!    literals, and lifetimes can never produce a false match;
//! 2. a per-token **test-scope flag**: tokens inside `#[cfg(test)]` /
//!    `#[test]` items are marked so rules that only govern shipping
//!    code (panic, clock, lock discipline) skip them;
//! 3. the file's **suppression pragmas**: line comments of the form
//!    `// lint:allow(<rule>[, <rule>…]): <justification>` — the
//!    justification text is mandatory, and a pragma that omits it is
//!    itself reported ([`Pragma::problem`]).
//!
//! The scanner is deliberately token-level, not syntactic: every rule
//! this linter enforces is expressible as a short token sequence
//! (`.` `partial_cmp` `(`, `Instant` `::` `now`, `.` `lock` `(` `)` `.`
//! `unwrap`), which keeps the whole tool dependency-free and
//! offline-build compatible, like `trinit-obs`.

/// What a significant token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `fn`, …).
    Ident,
    /// A single punctuation character (`.`, `(`, `:`, `!`, …).
    Punct,
    /// Any literal: string, raw string, byte string, char, or number.
    /// The text is an opaque placeholder — rules never see contents.
    Literal,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A parsed `lint:allow` pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Rule ids the pragma names.
    pub rules: Vec<String>,
    /// The mandatory justification text (empty iff malformed).
    pub justification: String,
    /// `Some(reason)` when the pragma is syntactically a `lint:allow`
    /// but violates the format — most importantly a missing
    /// justification. Malformed pragmas never suppress anything.
    pub problem: Option<String>,
}

/// The scan of one source file.
pub struct Scan {
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: true when the token lives inside a
    /// `#[cfg(test)]` / `#[test]` item.
    pub in_test: Vec<bool>,
    pub pragmas: Vec<Pragma>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into significant tokens, test-scope flags, and pragmas.
pub fn scan(src: &str) -> Scan {
    let c: Vec<char> = src.chars().collect();
    let n = c.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens: Vec<Token> = Vec::new();
    let mut pragmas: Vec<Pragma> = Vec::new();

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if ch == '/' && i + 1 < n && c[i + 1] == '/' {
            let mut text = String::new();
            i += 2;
            while i < n && c[i] != '\n' {
                text.push(c[i]);
                i += 1;
            }
            if let Some(p) = parse_pragma(&text, line) {
                pragmas.push(p);
            }
            continue;
        }
        if ch == '/' && i + 1 < n && c[i + 1] == '*' {
            // Block comments nest in Rust.
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if c[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if c[i] == '/' && i + 1 < n && c[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if c[i] == '*' && i + 1 < n && c[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String literal.
        if ch == '"' {
            let start_line = line;
            i = skip_string(&c, i, &mut line);
            tokens.push(Token { kind: TokKind::Literal, text: "<str>".into(), line: start_line });
            continue;
        }
        // Lifetime or char literal.
        if ch == '\'' {
            let start_line = line;
            if i + 1 < n && c[i + 1] == '\\' {
                // Escaped char literal: consume to the closing quote.
                i += 2;
                if i < n {
                    i += 1; // the escaped character itself
                }
                while i < n && c[i] != '\'' {
                    i += 1; // multi-char escapes: \u{…}, \x7f
                }
                i = (i + 1).min(n);
                tokens.push(Token { kind: TokKind::Literal, text: "<char>".into(), line: start_line });
            } else if i + 2 < n && is_ident_continue(c[i + 1]) && c[i + 2] == '\'' {
                // 'x' — a one-character char literal.
                i += 3;
                tokens.push(Token { kind: TokKind::Literal, text: "<char>".into(), line: start_line });
            } else if i + 1 < n && is_ident_start(c[i + 1]) {
                // A lifetime: 'a, 'static, '_.
                let mut text = String::from("'");
                i += 1;
                while i < n && is_ident_continue(c[i]) {
                    text.push(c[i]);
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Lifetime, text, line: start_line });
            } else {
                // Unicode char literal like 'é': consume to closing quote.
                i += 1;
                while i < n && c[i] != '\'' && c[i] != '\n' {
                    i += 1;
                }
                i = (i + 1).min(n);
                tokens.push(Token { kind: TokKind::Literal, text: "<char>".into(), line: start_line });
            }
            continue;
        }
        // Number literal.
        if ch.is_ascii_digit() {
            let start_line = line;
            let mut prev = ch;
            i += 1;
            while i < n {
                let d = c[i];
                let digit_follows = i + 1 < n && c[i + 1].is_ascii_digit();
                let continues = is_ident_continue(d)
                    || (d == '.' && digit_follows)
                    || ((d == '+' || d == '-') && (prev == 'e' || prev == 'E') && digit_follows);
                if !continues {
                    break;
                }
                prev = d;
                i += 1;
            }
            tokens.push(Token { kind: TokKind::Literal, text: "<num>".into(), line: start_line });
            continue;
        }
        // Identifier — including the raw-string / byte-string prefixes.
        if is_ident_start(ch) {
            let start_line = line;
            let mut text = String::new();
            while i < n && is_ident_continue(c[i]) {
                text.push(c[i]);
                i += 1;
            }
            let next = c.get(i).copied();
            if (text == "r" || text == "br") && (next == Some('"') || next == Some('#')) {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##, or — when
                // a single '#' is followed by an identifier — a raw
                // identifier r#keyword.
                let mut hashes = 0usize;
                while i + hashes < n && c[i + hashes] == '#' {
                    hashes += 1;
                }
                if c.get(i + hashes) == Some(&'"') {
                    i = skip_raw_string(&c, i + hashes + 1, hashes, &mut line);
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        text: "<rawstr>".into(),
                        line: start_line,
                    });
                } else if text == "r" && hashes == 1 && c.get(i + 1).is_some_and(|&d| is_ident_start(d)) {
                    // Raw identifier r#type.
                    i += 1;
                    let mut raw = String::new();
                    while i < n && is_ident_continue(c[i]) {
                        raw.push(c[i]);
                        i += 1;
                    }
                    tokens.push(Token { kind: TokKind::Ident, text: raw, line: start_line });
                } else {
                    tokens.push(Token { kind: TokKind::Ident, text, line: start_line });
                }
                continue;
            }
            if text == "b" && next == Some('"') {
                // Byte string b"…".
                i = skip_string(&c, i, &mut line);
                tokens.push(Token { kind: TokKind::Literal, text: "<bytestr>".into(), line: start_line });
                continue;
            }
            if text == "b" && next == Some('\'') {
                // Byte char b'x' (with possible escape).
                i += 1; // past the opening quote
                while i < n && c[i] != '\'' {
                    if c[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                tokens.push(Token { kind: TokKind::Literal, text: "<char>".into(), line: start_line });
                continue;
            }
            tokens.push(Token { kind: TokKind::Ident, text, line: start_line });
            continue;
        }
        // Everything else: single-character punctuation.
        tokens.push(Token { kind: TokKind::Punct, text: ch.to_string(), line });
        i += 1;
    }

    let in_test = mark_tests(&tokens);
    Scan { tokens, in_test, pragmas }
}

/// Skips a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote. Handles `\"`, `\\`, and embedded
/// newlines.
fn skip_string(c: &[char], open: usize, line: &mut u32) -> usize {
    let n = c.len();
    let mut i = open + 1;
    while i < n {
        match c[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Skips a raw string whose contents start at `start` (just past the
/// opening quote), terminated by `"` followed by `hashes` hash marks.
fn skip_raw_string(c: &[char], start: usize, hashes: usize, line: &mut u32) -> usize {
    let n = c.len();
    let mut i = start;
    while i < n {
        if c[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if c[i] == '"' {
            let mut h = 0usize;
            while h < hashes && c.get(i + 1 + h) == Some(&'#') {
                h += 1;
            }
            if h == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Computes, for every token, whether it lives inside a `#[cfg(test)]`
/// or `#[test]` item. An attribute containing the identifier `test` —
/// but not `not` (so `#[cfg(not(test))]` stays shipping code) — arms a
/// pending flag; the item's `{ … }` body then becomes a test region
/// (tracked by brace depth, so regions nest), while a `;` at top
/// nesting ends a body-less item.
fn mark_tests(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut brace_depth = 0i32;
    let mut regions: Vec<i32> = Vec::new();
    let mut pending = false;
    // Paren/bracket nesting between an armed attribute and its item
    // body, so `;` inside `[u8; 2]` or `fn f(…)` never ends the item.
    let mut inner_nest = 0i32;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let active = !regions.is_empty() || pending;
        if t.kind == TokKind::Punct
            && t.text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct && t.text == "[")
        {
            // Scan the attribute to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                let a = &tokens[j];
                match (a.kind, a.text.as_str()) {
                    (TokKind::Punct, "[") => depth += 1,
                    (TokKind::Punct, "]") => depth -= 1,
                    (TokKind::Ident, "test") => has_test = true,
                    (TokKind::Ident, "not") => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                pending = true;
                inner_nest = 0;
            }
            let now_active = !regions.is_empty() || pending;
            for slot in in_test.iter_mut().take(j).skip(i) {
                *slot = now_active;
            }
            i = j;
            continue;
        }
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                if pending {
                    regions.push(brace_depth);
                    pending = false;
                }
                brace_depth += 1;
            }
            (TokKind::Punct, "}") => {
                brace_depth -= 1;
                if regions.last() == Some(&brace_depth) {
                    regions.pop();
                    // The closing brace still belongs to the region.
                    in_test[i] = true;
                    i += 1;
                    continue;
                }
            }
            (TokKind::Punct, "(") | (TokKind::Punct, "[") if pending => inner_nest += 1,
            (TokKind::Punct, ")") | (TokKind::Punct, "]") if pending => inner_nest -= 1,
            (TokKind::Punct, ";") if pending && inner_nest == 0 => pending = false,
            _ => {}
        }
        in_test[i] = active;
        i += 1;
    }
    in_test
}

/// Parses a `lint:allow(<rules>): <justification>` pragma out of one
/// line comment's text. Returns `None` when the comment is not a
/// pragma at all; returns a `Pragma` with [`Pragma::problem`] set when
/// it is one but breaks the format (those never suppress).
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    // A pragma must *start* the comment (`// lint:allow(…): …`), so
    // prose that merely mentions the syntax never parses as one.
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("lint:allow") {
        return None;
    }
    let idx = comment.find("lint:allow")?;
    let malformed = |reason: &str| Pragma {
        line,
        rules: Vec::new(),
        justification: String::new(),
        problem: Some(reason.to_string()),
    };
    let rest = comment[idx + "lint:allow".len()..].trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Some(malformed("expected `lint:allow(<rule>): <justification>`"));
    };
    let Some(close) = body.find(')') else {
        return Some(malformed("unclosed rule list in `lint:allow(…)`"));
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if rules.is_empty() {
        return Some(malformed("empty rule list in `lint:allow(…)`"));
    }
    let after = body[close + 1..].trim_start();
    let Some(just) = after.strip_prefix(':') else {
        return Some(malformed("missing `: <justification>` — the justification text is mandatory"));
    };
    let just = just.trim();
    if just.is_empty() {
        return Some(malformed("empty justification — the justification text is mandatory"));
    }
    Some(Pragma {
        line,
        rules,
        justification: just.to_string(),
        problem: None,
    })
}
