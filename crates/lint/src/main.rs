//! The `trinit-lint` CLI.
//!
//! ```text
//! cargo run -p trinit-lint                      # lint the workspace
//! cargo run -p trinit-lint -- --deny-warnings   # CI mode: stale/malformed pragmas fail too
//! cargo run -p trinit-lint -- --json report.json
//! cargo run -p trinit-lint -- --list-rules
//! ```
//!
//! Exit status: 0 when clean, 1 on unsuppressed violations (or, under
//! `--deny-warnings`, pragma warnings), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use trinit_lint::{find_workspace_root, lint_workspace, RULES};

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    deny_warnings: bool,
    verbose: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        deny_warnings: false,
        verbose: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ));
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--verbose" | "-v" => args.verbose = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: trinit-lint [--root DIR] [--json FILE] [--deny-warnings] [--verbose] [--list-rules]",
                ))
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, summary) in RULES {
            println!("{id}: {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("trinit-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trinit-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.render_human(args.verbose));
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            eprintln!("trinit-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("trinit-lint: JSON report written to {}", path.display());
    }
    let failed = !report.is_clean() || (args.deny_warnings && !report.warnings.is_empty());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
