//! `trinit-lint` — the workspace invariant linter.
//!
//! The engine's correctness rests on cross-cutting invariants that
//! rustc and clippy do not enforce: PR 4's "all weight ordering uses
//! `total_cmp`", PR 6's "hot paths degrade, they do not panic" and
//! "mutex poisoning is recovered, not propagated", PR 8's "the clock
//! is never read outside the obs layer". This crate machine-checks
//! them on every commit, three ways:
//!
//! * `cargo run -p trinit-lint` — the CLI, with `--json` for the
//!   machine-readable report and `--deny-warnings` for CI;
//! * the crate's own `tests/workspace.rs` harness, so plain tier-1
//!   `cargo test -q` fails on any new violation;
//! * a dedicated CI step that uploads the JSON report as an artifact.
//!
//! Like `trinit-obs`, the crate is dependency-free and offline-build
//! compatible: a hand-rolled token scanner ([`scan`]), a token-pattern
//! rule engine ([`rules`]), and hand-rolled JSON ([`report`]).
//! See `docs/static-analysis.md` for each rule's rationale and the
//! pragma format.

pub mod report;
pub mod rules;
pub mod scan;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{lint_source, FileLint, Violation, Warning, RULES};

/// Directory names never descended into. `fixtures` holds the lint
/// crate's own deliberately-violating test snippets.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Workspace-relative path prefixes excluded from linting: the compat
/// shims mirror external crates' APIs (including their panicky
/// idioms), so they are out of invariant scope by construction.
const SKIP_PREFIXES: [&str; 1] = ["crates/compat/"];

/// Collects every lintable `.rs` file under `root`, sorted for
/// deterministic reports.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The workspace-relative forward-slash path used for rule scoping.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every source file in the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for path in collect_files(root)? {
        let rel = rel_path(root, &path);
        if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        let file = lint_source(&rel, &src);
        report.files_scanned += 1;
        report.violations.extend(file.violations);
        report.warnings.extend(file.warnings);
    }
    Ok(report)
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
