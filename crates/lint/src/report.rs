//! Diagnostic rendering: human-readable `file:line` anchors and a
//! machine-readable JSON report (hand-rolled — the crate is
//! dependency-free by design, like `trinit-obs`).

use crate::rules::{Violation, Warning, RULES};

/// The aggregated lint result of a workspace walk.
#[derive(Default)]
pub struct Report {
    pub files_scanned: usize,
    /// Every match, suppressed sites included.
    pub violations: Vec<Violation>,
    /// Pragma-level diagnostics (malformed / unknown-rule / stale).
    pub warnings: Vec<Warning>,
}

impl Report {
    /// Unsuppressed violations — the failures.
    pub fn errors(&self) -> usize {
        self.violations.iter().filter(|v| !v.suppressed).count()
    }

    /// Justified, pragma-suppressed sites.
    pub fn suppressed(&self) -> usize {
        self.violations.iter().filter(|v| v.suppressed).count()
    }

    /// True when there is nothing to fail on (warnings not counted).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Human-readable diagnostics, one `file:line:` anchored line per
    /// finding, errors first.
    pub fn render_human(&self, verbose: bool) -> String {
        let mut out = String::new();
        for v in self.violations.iter().filter(|v| !v.suppressed) {
            out.push_str(&format!(
                "{}:{}: error[{}]: {}\n",
                v.file, v.line, v.rule, v.message
            ));
        }
        for w in &self.warnings {
            out.push_str(&format!(
                "{}:{}: warning[{}]: {}\n",
                w.file, w.line, w.kind, w.message
            ));
        }
        if verbose {
            for v in self.violations.iter().filter(|v| v.suppressed) {
                out.push_str(&format!(
                    "{}:{}: allowed[{}]: {}\n",
                    v.file,
                    v.line,
                    v.rule,
                    v.justification.as_deref().unwrap_or("")
                ));
            }
        }
        out.push_str(&format!(
            "trinit-lint: {} files scanned, {} errors, {} warnings, {} justified suppressions\n",
            self.files_scanned,
            self.errors(),
            self.warnings.len(),
            self.suppressed()
        ));
        out
    }

    /// The machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"tool\": \"trinit-lint\",\n  \"rules\": [");
        for (i, (id, summary)) in RULES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"id\": {}, \"summary\": {}}}",
                json_str(id),
                json_str(summary)
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"suppressed\": {},\n",
            self.errors(),
            self.warnings.len(),
            self.suppressed()
        ));
        s.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"level\": {}, \"message\": {}{}}}{}\n",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(if v.suppressed { "suppressed" } else { "error" }),
                json_str(&v.message),
                v.justification
                    .as_deref()
                    .map(|j| format!(", \"justification\": {}", json_str(j)))
                    .unwrap_or_default(),
                if i + 1 < self.violations.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"pragma_warnings\": [\n");
        for (i, w) in self.warnings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(w.kind),
                json_str(&w.file),
                w.line,
                json_str(&w.message),
                if i + 1 < self.warnings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
