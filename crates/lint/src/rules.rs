//! The rule engine: five workspace invariants, each a short token
//! pattern with a file/test scope and a suppression pragma.
//!
//! | rule | invariant | established by |
//! |---|---|---|
//! | `float-ordering` | weight/score ordering uses `total_cmp`, never `.partial_cmp()` | PR 4 |
//! | `no-panic-hot-path` | no `unwrap`/`expect`/`panic!`/`unreachable!` in serving hot paths | PR 6 |
//! | `clock-discipline` | `Instant::now()` only inside `trinit-obs` (or justified sites) | PR 8 |
//! | `lock-hygiene` | no bare `.lock().unwrap()` — poison must be recovered | PR 6 |
//! | `unsafe-boundary` | `unsafe` only in whitelisted files (currently none) | — |
//!
//! A site that must legitimately break a rule carries an inline pragma
//! on its own line or the line above:
//!
//! ```text
//! // lint:allow(<rule>[, <rule>…]): <why this site is sound>
//! ```
//!
//! The justification is mandatory; a pragma without one is reported and
//! suppresses nothing. Pragmas that no longer match a violation are
//! reported as `unused-pragma` warnings so stale allows cannot
//! accumulate.

use crate::scan::{self, Pragma, TokKind, Token};

/// Rule ids.
pub const FLOAT_ORDERING: &str = "float-ordering";
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";
pub const CLOCK_DISCIPLINE: &str = "clock-discipline";
pub const LOCK_HYGIENE: &str = "lock-hygiene";
pub const UNSAFE_BOUNDARY: &str = "unsafe-boundary";

/// Every rule with its one-line summary, in reporting order.
pub const RULES: [(&str, &str); 5] = [
    (FLOAT_ORDERING, "weight/score ordering must use `total_cmp`, never `.partial_cmp()` (NaN-safe, no panic path; PR 4)"),
    (NO_PANIC_HOT_PATH, "no `unwrap`/`expect`/`panic!`-family calls in serving hot paths outside `#[cfg(test)]` (PR 6)"),
    (CLOCK_DISCIPLINE, "`Instant::now()`/`SystemTime::now()` only inside `trinit-obs`; elsewhere use the obs-gated seam or justify (PR 8)"),
    (LOCK_HYGIENE, "no bare `.lock().unwrap()`/`.lock().expect()` — recover poisoning like `SharedPostingCache` (PR 6)"),
    (UNSAFE_BOUNDARY, "`unsafe` only in whitelisted files (whitelist currently empty)"),
];

/// Files allowed to hold `unsafe` blocks. Deliberately empty: the whole
/// workspace is safe Rust today, and any future exception must land
/// here with a review, not slip in silently.
pub const UNSAFE_ALLOWED_FILES: &[&str] = &[];

/// Files exempt from `float-ordering` beyond the global excludes.
/// Deliberately empty: `PartialOrd` *impls* (`fn partial_cmp`) are
/// definitions, not call sites, and pass on their own.
pub const FLOAT_ORDERING_ALLOWED_FILES: &[&str] = &[];

/// True for the serving hot paths `no-panic-hot-path` governs: every
/// top-k pipeline stage, the sharded execution/scheduling/storage
/// layer, and the xkg store's serving structures (posting lists,
/// permutation indexes, segment resolution) — the packed readers added
/// with the compact layout must degrade on bad offsets, not panic.
/// Panics here escape to `catch_unwind` boundaries at best and poison
/// shared state at worst (PR 6 made both load-bearing).
fn is_hot_path(rel: &str) -> bool {
    rel.starts_with("crates/query/src/exec/")
        || matches!(
            rel,
            "crates/shard/src/exec.rs"
                | "crates/shard/src/schedule.rs"
                | "crates/shard/src/store.rs"
                | "crates/xkg/src/posting.rs"
                | "crates/xkg/src/segment.rs"
                | "crates/xkg/src/index.rs"
                | "crates/xkg/src/pack.rs"
        )
}

/// True for files whose entire contents are test/bench scope: anything
/// under a `tests/` or `benches/` directory.
fn is_test_scope_path(rel: &str) -> bool {
    rel.split('/').any(|seg| seg == "tests" || seg == "benches")
}

/// One rule violation at a site.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    /// 1-based line of the first token of the match.
    pub line: u32,
    pub message: String,
    /// True when a well-formed pragma on this or the previous line
    /// names the rule; the justification is carried alongside.
    pub suppressed: bool,
    pub justification: Option<String>,
}

/// A pragma-level diagnostic (malformed or stale suppression).
#[derive(Clone, Debug)]
pub struct Warning {
    pub kind: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// The lint result of one file.
#[derive(Default)]
pub struct FileLint {
    pub violations: Vec<Violation>,
    pub warnings: Vec<Warning>,
}

fn ident_at(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
}

fn punct_at(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
}

/// Lints one file given its workspace-relative path (forward slashes)
/// and contents. The path determines rule scope, so fixture tests can
/// lint a snippet "as if" it lived on a hot path.
pub fn lint_source(rel: &str, src: &str) -> FileLint {
    let scanned = scan::scan(src);
    let toks = &scanned.tokens;
    let test_file = is_test_scope_path(rel);
    // (rule, line, message); suppression is applied afterwards.
    let mut raw: Vec<(&'static str, u32, String)> = Vec::new();
    let shipping = |i: usize| !test_file && !scanned.in_test[i];

    for i in 0..toks.len() {
        // float-ordering: `.partial_cmp(` / `::partial_cmp(` call
        // sites. `fn partial_cmp` (a PartialOrd impl) is a definition
        // and allowed. Applies to tests too: a NaN-panicking `.unwrap()`
        // on a comparator is a latent flake everywhere.
        if ident_at(toks, i, "partial_cmp")
            && (i > 0 && (punct_at(toks, i - 1, ".") || punct_at(toks, i - 1, ":")))
            && !FLOAT_ORDERING_ALLOWED_FILES.contains(&rel)
        {
            raw.push((
                FLOAT_ORDERING,
                toks[i].line,
                "`.partial_cmp()` on floats: use `total_cmp` (total order, NaN-safe, no `unwrap` panic path)".into(),
            ));
        }

        // no-panic-hot-path.
        if is_hot_path(rel) && shipping(i) {
            if punct_at(toks, i, ".")
                && toks.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect")
                })
                && punct_at(toks, i + 2, "(")
            {
                let what = &toks[i + 1].text;
                raw.push((
                    NO_PANIC_HOT_PATH,
                    toks[i + 1].line,
                    format!("`.{what}()` on a serving hot path: return a typed error (`ExecError`), recover, or justify with a pragma"),
                ));
            }
            if toks[i].kind == TokKind::Ident
                && matches!(toks[i].text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
                && punct_at(toks, i + 1, "!")
            {
                let what = &toks[i].text;
                raw.push((
                    NO_PANIC_HOT_PATH,
                    toks[i].line,
                    format!("`{what}!` on a serving hot path: panics poison worker state; degrade or return a typed error"),
                ));
            }
        }

        // clock-discipline: raw clock reads outside trinit-obs.
        // `trinit_obs::now_ns()` is the sanctioned obs-gated accessor.
        if !rel.starts_with("crates/obs/")
            && !test_file
            && shipping(i)
            && toks[i].kind == TokKind::Ident
            && (toks[i].text == "Instant" || toks[i].text == "SystemTime")
            && punct_at(toks, i + 1, ":")
            && punct_at(toks, i + 2, ":")
            && ident_at(toks, i + 3, "now")
            && punct_at(toks, i + 4, "(")
        {
            let ty = &toks[i].text;
            raw.push((
                CLOCK_DISCIPLINE,
                toks[i].line,
                format!("raw `{ty}::now()` outside `trinit-obs`: route timing through the obs layer (`now_ns` behind `ObsConfig`) or justify with a pragma"),
            ));
        }

        // lock-hygiene: `.lock().unwrap()` / `.lock().expect(…)`.
        // Tests are exempt (they poison mutexes deliberately).
        if shipping(i)
            && punct_at(toks, i, ".")
            && ident_at(toks, i + 1, "lock")
            && punct_at(toks, i + 2, "(")
            && punct_at(toks, i + 3, ")")
            && punct_at(toks, i + 4, ".")
            && toks.get(i + 5).is_some_and(|t| {
                t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect")
            })
            && punct_at(toks, i + 6, "(")
        {
            raw.push((
                LOCK_HYGIENE,
                toks[i + 5].line,
                "bare `.lock().unwrap()/.expect()`: recover poisoning (`unwrap_or_else(PoisonError::into_inner)` or the `SharedPostingCache` reset pattern)".into(),
            ));
        }

        // unsafe-boundary: applies everywhere, tests included.
        if ident_at(toks, i, "unsafe") && !UNSAFE_ALLOWED_FILES.contains(&rel) {
            raw.push((
                UNSAFE_BOUNDARY,
                toks[i].line,
                "`unsafe` outside the whitelist (currently empty): add the file to `UNSAFE_ALLOWED_FILES` with review, or stay safe".into(),
            ));
        }
    }

    apply_pragmas(rel, raw, &scanned.pragmas)
}

/// Applies suppression pragmas to raw violations and emits pragma
/// diagnostics: malformed pragmas (missing justification), pragmas
/// naming unknown rules, and stale pragmas that suppressed nothing.
fn apply_pragmas(rel: &str, raw: Vec<(&'static str, u32, String)>, pragmas: &[Pragma]) -> FileLint {
    let mut out = FileLint::default();
    let mut used = vec![false; pragmas.len()];

    for (rule, line, message) in raw {
        let mut suppressed = false;
        let mut justification = None;
        for (pi, p) in pragmas.iter().enumerate() {
            if p.problem.is_some() || !(p.line == line || p.line + 1 == line) {
                continue;
            }
            if p.rules.iter().any(|r| r == rule) {
                suppressed = true;
                justification = Some(p.justification.clone());
                used[pi] = true;
                break;
            }
        }
        out.violations.push(Violation {
            rule,
            file: rel.to_string(),
            line,
            message,
            suppressed,
            justification,
        });
    }

    for (pi, p) in pragmas.iter().enumerate() {
        if let Some(problem) = &p.problem {
            out.warnings.push(Warning {
                kind: "malformed-pragma",
                file: rel.to_string(),
                line: p.line,
                message: format!("malformed `lint:allow` pragma: {problem}"),
            });
            continue;
        }
        for r in &p.rules {
            if !RULES.iter().any(|(id, _)| id == r) {
                out.warnings.push(Warning {
                    kind: "unknown-rule",
                    file: rel.to_string(),
                    line: p.line,
                    message: format!("pragma names unknown rule `{r}`"),
                });
            }
        }
        if !used[pi] && p.rules.iter().all(|r| RULES.iter().any(|(id, _)| id == r)) {
            out.warnings.push(Warning {
                kind: "unused-pragma",
                file: rel.to_string(),
                line: p.line,
                message: format!(
                    "stale `lint:allow({})` suppresses nothing on this or the next line — remove it",
                    p.rules.join(", ")
                ),
            });
        }
    }

    out
}
