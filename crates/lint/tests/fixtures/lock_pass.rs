// Fixture: poison-recovering lock acquisition passes `lock-hygiene`,
// and `stdin.lock()` style calls without `unwrap` never match.

use std::sync::{Mutex, PoisonError};

pub fn read(cell: &Mutex<u32>) -> u32 {
    *cell.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn read_line() -> String {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    let mut line = String::new();
    let _ = stdin.lock().read_line(&mut line);
    line
}
