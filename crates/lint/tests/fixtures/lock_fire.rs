// Fixture: bare `.lock().unwrap()` / `.lock().expect(…)` fire
// `lock-hygiene`.

use std::sync::Mutex;

pub fn read(cell: &Mutex<u32>) -> u32 {
    *cell.lock().unwrap()
}

pub fn write(cell: &Mutex<u32>, v: u32) {
    *cell.lock().expect("cell poisoned") = v;
}
