// Fixture: a justified pragma admits an unsafe block pending a
// whitelist entry, reported as suppressed.

pub fn transmuted(v: u64) -> f64 {
    // lint:allow(unsafe-boundary): bit-level reinterpretation benchmarked faster than from_bits on this target
    unsafe { std::mem::transmute(v) }
}
