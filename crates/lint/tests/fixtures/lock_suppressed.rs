// Fixture: a justified pragma admits a bare lock-unwrap, reported as
// suppressed.

use std::sync::Mutex;

pub fn read(cell: &Mutex<u32>) -> u32 {
    // lint:allow(lock-hygiene): single-threaded setup path — no holder can panic before this line
    *cell.lock().unwrap()
}
