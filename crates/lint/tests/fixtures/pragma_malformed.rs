// Fixture: a pragma without a justification is malformed — it
// suppresses nothing and is reported as a warning.

use std::sync::Mutex;

pub fn read(cell: &Mutex<u32>) -> u32 {
    // lint:allow(lock-hygiene)
    *cell.lock().unwrap()
}
