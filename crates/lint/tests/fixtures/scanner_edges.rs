// Fixture: lexical edge cases the scanner must skip without losing
// sync. Only ONE real violation lives in this file — the
// `Instant::now()` call at the very end — and it must still be found
// after every trap below has been crossed.

/* block comment with .lock().unwrap() and .partial_cmp(x) inside
   /* nested block comment: panic!("still a comment") */
   still the outer comment: SystemTime::now() */

pub const PLAIN: &str = "string with .lock().unwrap() and Instant::now()";
pub const ESCAPED: &str = "escaped quote \" then .partial_cmp(y).unwrap()";
pub const RAW: &str = r#"raw string: .lock().unwrap() and panic!("x")"#;
pub const RAW_HASHES: &str = r##"nested "#" hashes: unreachable!() here"##;
pub const BYTES: &[u8] = b"byte string with .unwrap() inside";
pub const BYTE_CHAR: u8 = b'\'';
pub const QUOTE: char = '\'';
pub const LETTER: char = 'a';

pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    // line comment mentioning .partial_cmp() and unsafe prose
    x
}

pub fn r#match(arr: [u8; 2]) -> u8 {
    arr[0]
}

pub fn the_one_real_violation() -> std::time::Instant {
    std::time::Instant::now()
}
