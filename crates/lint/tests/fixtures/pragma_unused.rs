// Fixture: a well-formed pragma with nothing to suppress on its own or
// the next line is stale and must warn.

pub fn clean() -> u32 {
    // lint:allow(lock-hygiene): left behind after a refactor removed the lock
    7
}
