// Fixture: raw clock reads outside `trinit-obs` fire
// `clock-discipline`.

use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    let mono = Instant::now();
    let wall = SystemTime::now();
    (mono, wall)
}
