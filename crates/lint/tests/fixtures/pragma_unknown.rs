// Fixture: a pragma naming a rule that does not exist must warn, and
// must not suppress anything.

use std::sync::Mutex;

pub fn read(cell: &Mutex<u32>) -> u32 {
    // lint:allow(no-such-rule): typo'd rule names must not silently pass
    *cell.lock().unwrap()
}
