// Fixture: a justified pragma admits a deliberate direct clock read,
// reported as suppressed.

use std::time::Instant;

pub struct Deadline {
    pub anchor: Instant,
}

pub fn admit() -> Deadline {
    Deadline {
        // lint:allow(clock-discipline): deadline anchor — one read at admission, not per pull
        anchor: Instant::now(),
    }
}
