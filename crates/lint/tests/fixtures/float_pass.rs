// Fixture: `total_cmp` ordering and a `PartialOrd` *impl* both pass
// `float-ordering` — the rule targets call sites, not definitions.

pub struct Scored(pub f64);

impl PartialEq for Scored {
    fn eq(&self, other: &Scored) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Scored) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

pub fn rank(mut scores: Vec<(f64, u32)>) -> Vec<(f64, u32)> {
    scores.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    scores
}
