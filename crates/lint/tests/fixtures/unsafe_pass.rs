// Fixture: safe Rust passes `unsafe-boundary`; the keyword inside a
// string or comment never counts. The word unsafe appears here only in
// prose.

pub fn bits(v: u64) -> f64 {
    f64::from_bits(v)
}

pub const NOTE: &str = "unsafe { } in a string literal is not a token";
