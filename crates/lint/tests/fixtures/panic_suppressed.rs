// Fixture: a justified pragma keeps an intentional hot-path invariant
// check, reported as suppressed.

pub fn offset(base: u64) -> u32 {
    // lint:allow(no-panic-hot-path): construction-time capacity guard — the id space is u32 by design
    u32::try_from(base).expect("id overflow")
}
