// Fixture: hot-path file whose shipping code degrades instead of
// panicking; the `#[cfg(test)]` module may unwrap freely.

pub fn pull(slots: &[Option<u32>]) -> Option<u32> {
    let first = slots.first()?;
    first.filter(|&v| v != 0)
}

#[cfg(test)]
mod tests {
    use super::pull;

    #[test]
    fn pulls_first_populated_slot() {
        let v = pull(&[Some(7)]).unwrap();
        assert_eq!(v, 7);
        let opt: Option<u32> = None;
        assert!(std::panic::catch_unwind(|| opt.expect("boom")).is_err());
    }
}
