// Fixture: linted as if on a serving hot path — every panic-family
// site here must fire `no-panic-hot-path`.

pub fn pull(slots: &[Option<u32>]) -> u32 {
    let first = slots.first().unwrap();
    let value = first.expect("slot populated");
    if value == u32::MAX {
        panic!("overflow");
    }
    match value {
        0 => unreachable!("zero filtered upstream"),
        v => v,
    }
}
