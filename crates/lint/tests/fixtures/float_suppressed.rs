// Fixture: a justified pragma suppresses `float-ordering` on the next
// line; the violation is still reported, flagged as suppressed.

pub fn reference_rank(mut scores: Vec<f64>) -> Vec<f64> {
    // lint:allow(float-ordering): reference comparator pinning the legacy ordering in an equivalence test
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores
}
