// Fixture: any `unsafe` outside the (empty) whitelist fires
// `unsafe-boundary` — blocks and fn signatures alike.

pub fn transmuted(v: u64) -> f64 {
    unsafe { std::mem::transmute(v) }
}

pub unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}
