// Fixture: `.partial_cmp()` call sites must fire `float-ordering`.

pub fn rank(mut scores: Vec<(f64, u32)>) -> Vec<(f64, u32)> {
    scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    scores
}

pub fn max_weight(weights: &[f64]) -> Option<f64> {
    weights
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
}
