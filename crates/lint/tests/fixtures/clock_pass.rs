// Fixture: timing routed through the obs-gated seam passes
// `clock-discipline`; naming the types without calling `now` is fine.

use std::time::Instant;

pub struct Span {
    pub started_ns: u64,
}

pub fn open_span() -> Span {
    Span {
        started_ns: trinit_obs::now_ns(),
    }
}

pub fn elapsed(since: Instant) -> std::time::Duration {
    since.elapsed()
}
