//! Fixture suite: every rule exercised three ways (fire, pass,
//! suppressed) plus scanner edge cases and pragma diagnostics. The
//! snippets live in `tests/fixtures/`, which both cargo (no
//! auto-compile below `tests/` subdirectories) and the workspace
//! walker (`SKIP_DIRS`) leave alone — so they can violate freely.
//!
//! `lint_source` takes the workspace-relative path separately from the
//! contents, so each snippet is linted "as if" it lived at a path that
//! puts the rule in scope (e.g. a hot-path file for
//! `no-panic-hot-path`).

use trinit_lint::rules::{
    CLOCK_DISCIPLINE, FLOAT_ORDERING, LOCK_HYGIENE, NO_PANIC_HOT_PATH, UNSAFE_BOUNDARY,
};
use trinit_lint::{lint_source, FileLint, Violation};

/// A plain library path: every rule except `no-panic-hot-path` is in
/// scope.
const LIB_PATH: &str = "crates/core/src/fixture.rs";

/// A serving hot path: `no-panic-hot-path` is additionally in scope.
const HOT_PATH: &str = "crates/query/src/exec/fixture.rs";

fn errors(lint: &FileLint) -> Vec<&Violation> {
    lint.violations.iter().filter(|v| !v.suppressed).collect()
}

fn suppressed(lint: &FileLint) -> Vec<&Violation> {
    lint.violations.iter().filter(|v| v.suppressed).collect()
}

#[test]
fn float_ordering_fires_on_partial_cmp_calls() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/float_fire.rs"));
    let errs = errors(&lint);
    assert_eq!(errs.len(), 2, "both call sites: {errs:?}");
    assert!(errs.iter().all(|v| v.rule == FLOAT_ORDERING));
}

#[test]
fn float_ordering_passes_total_cmp_and_impl_definitions() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/float_pass.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    assert!(lint.warnings.is_empty(), "{:?}", lint.warnings);
}

#[test]
fn float_ordering_suppressed_by_justified_pragma() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/float_suppressed.rs"));
    assert!(errors(&lint).is_empty());
    let sup = suppressed(&lint);
    assert_eq!(sup.len(), 1);
    assert_eq!(sup[0].rule, FLOAT_ORDERING);
    assert!(sup[0]
        .justification
        .as_deref()
        .is_some_and(|j| j.contains("equivalence test")));
    assert!(lint.warnings.is_empty(), "no stale-pragma warning expected");
}

#[test]
fn no_panic_fires_on_every_panic_family_site() {
    let lint = lint_source(HOT_PATH, include_str!("fixtures/panic_fire.rs"));
    let errs = errors(&lint);
    let panics: Vec<_> = errs.iter().filter(|v| v.rule == NO_PANIC_HOT_PATH).collect();
    assert_eq!(panics.len(), 4, "unwrap, expect, panic!, unreachable!: {errs:?}");
}

#[test]
fn no_panic_is_scoped_to_hot_paths() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/panic_fire.rs"));
    assert!(
        !lint.violations.iter().any(|v| v.rule == NO_PANIC_HOT_PATH),
        "rule must not apply off the hot paths: {:?}",
        lint.violations
    );
}

#[test]
fn no_panic_passes_degrading_code_and_test_modules() {
    let lint = lint_source(HOT_PATH, include_str!("fixtures/panic_pass.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
}

#[test]
fn no_panic_suppressed_by_justified_pragma() {
    let lint = lint_source(HOT_PATH, include_str!("fixtures/panic_suppressed.rs"));
    assert!(errors(&lint).is_empty());
    let sup = suppressed(&lint);
    assert_eq!(sup.len(), 1);
    assert_eq!(sup[0].rule, NO_PANIC_HOT_PATH);
}

#[test]
fn clock_discipline_fires_on_raw_clock_reads() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/clock_fire.rs"));
    let errs = errors(&lint);
    assert_eq!(errs.len(), 2, "Instant and SystemTime: {errs:?}");
    assert!(errs.iter().all(|v| v.rule == CLOCK_DISCIPLINE));
}

#[test]
fn clock_discipline_passes_obs_seam_and_obs_crate() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/clock_pass.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
    let inside_obs = lint_source("crates/obs/src/fixture.rs", include_str!("fixtures/clock_fire.rs"));
    assert!(
        inside_obs.violations.is_empty(),
        "the obs crate owns the clock: {:?}",
        inside_obs.violations
    );
}

#[test]
fn clock_discipline_suppressed_by_justified_pragma() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/clock_suppressed.rs"));
    assert!(errors(&lint).is_empty());
    let sup = suppressed(&lint);
    assert_eq!(sup.len(), 1);
    assert_eq!(sup[0].rule, CLOCK_DISCIPLINE);
}

#[test]
fn lock_hygiene_fires_on_bare_lock_unwrap_and_expect() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/lock_fire.rs"));
    let errs = errors(&lint);
    assert_eq!(errs.len(), 2, "unwrap and expect forms: {errs:?}");
    assert!(errs.iter().all(|v| v.rule == LOCK_HYGIENE));
}

#[test]
fn lock_hygiene_passes_poison_recovery_and_io_locks() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/lock_pass.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
}

#[test]
fn lock_hygiene_suppressed_by_justified_pragma() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/lock_suppressed.rs"));
    assert!(errors(&lint).is_empty());
    assert_eq!(suppressed(&lint).len(), 1);
}

#[test]
fn unsafe_boundary_fires_on_blocks_and_signatures() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/unsafe_fire.rs"));
    let errs = errors(&lint);
    assert_eq!(errs.len(), 2, "block and fn signature: {errs:?}");
    assert!(errs.iter().all(|v| v.rule == UNSAFE_BOUNDARY));
}

#[test]
fn unsafe_boundary_passes_safe_code() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/unsafe_pass.rs"));
    assert!(lint.violations.is_empty(), "{:?}", lint.violations);
}

#[test]
fn unsafe_boundary_suppressed_by_justified_pragma() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/unsafe_suppressed.rs"));
    assert!(errors(&lint).is_empty());
    assert_eq!(suppressed(&lint).len(), 1);
}

/// The scanner crosses nested block comments, plain/escaped/raw/byte
/// strings, char-vs-lifetime ambiguity, raw identifiers, and array
/// types without losing sync — and still finds the single real
/// violation at the end of the file, on the right line.
#[test]
fn scanner_survives_lexical_edge_cases() {
    let src = include_str!("fixtures/scanner_edges.rs");
    let lint = lint_source(LIB_PATH, src);
    assert!(lint.warnings.is_empty(), "{:?}", lint.warnings);
    let errs = errors(&lint);
    assert_eq!(errs.len(), 1, "exactly the final clock read: {errs:?}");
    assert_eq!(errs[0].rule, CLOCK_DISCIPLINE);
    let expected_line = src
        .lines()
        .position(|l| l.contains("the_one_real_violation"))
        .expect("marker fn present") as u32
        + 2;
    assert_eq!(errs[0].line, expected_line, "line numbers stayed in sync");
}

#[test]
fn malformed_pragma_warns_and_suppresses_nothing() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/pragma_malformed.rs"));
    assert_eq!(errors(&lint).len(), 1, "the violation still fires");
    assert!(suppressed(&lint).is_empty());
    assert_eq!(lint.warnings.len(), 1);
    assert_eq!(lint.warnings[0].kind, "malformed-pragma");
}

#[test]
fn unused_pragma_warns() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/pragma_unused.rs"));
    assert!(lint.violations.is_empty());
    assert_eq!(lint.warnings.len(), 1);
    assert_eq!(lint.warnings[0].kind, "unused-pragma");
}

#[test]
fn unknown_rule_pragma_warns_and_suppresses_nothing() {
    let lint = lint_source(LIB_PATH, include_str!("fixtures/pragma_unknown.rs"));
    assert_eq!(errors(&lint).len(), 1, "the violation still fires");
    assert!(
        lint.warnings.iter().any(|w| w.kind == "unknown-rule"),
        "{:?}",
        lint.warnings
    );
}
