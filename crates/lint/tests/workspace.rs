//! Tier-1 wiring: `cargo test -q` fails on any new invariant
//! violation, not just CI. Lints the real workspace and requires a
//! fully clean report — zero unsuppressed violations, zero pragma
//! warnings, and a justification on every suppression.

use std::path::Path;

use trinit_lint::{find_workspace_root, lint_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the lint crate");
    let report = lint_workspace(&root).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.is_clean() && report.warnings.is_empty(),
        "workspace invariant violations:\n{}",
        report.render_human(true)
    );
    for v in report.violations.iter().filter(|v| v.suppressed) {
        assert!(
            v.justification.as_deref().is_some_and(|j| !j.trim().is_empty()),
            "suppression without justification at {}:{}",
            v.file,
            v.line
        );
    }
}
