//! Property tests for the relaxation framework.

use proptest::prelude::*;

use trinit_relax::{
    apply_rule, canonical_key, expand, ExpandOptions, QPattern, QTerm, Rule, RuleId,
    RuleProvenance, RuleSet, VarId,
};
use trinit_xkg::{TermId, TermKind};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

fn qterm(vars: u16, terms: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..terms).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn qpattern(vars: u16, terms: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, terms),
        (0..terms).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, terms),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rewrite_rule(terms: u32) -> impl Strategy<Value = Rule> {
    (0..terms, 0..terms, 0.1f64..1.0, proptest::bool::ANY).prop_map(|(p1, p2, w, inv)| {
        if inv {
            Rule::inversion("prop", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
        } else {
            Rule::predicate_rewrite("prop", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
        }
    })
}

proptest! {
    /// Canonicalization is idempotent and invariant under pattern order.
    #[test]
    fn canonical_key_is_idempotent_and_order_invariant(
        mut patterns in proptest::collection::vec(qpattern(4, 6), 1..5),
    ) {
        let original_vars = 4;
        let key1 = canonical_key(&patterns, original_vars);
        let key2 = canonical_key(&key1, original_vars);
        prop_assert_eq!(&key1, &key2, "idempotent");
        patterns.reverse();
        let key3 = canonical_key(&patterns, original_vars);
        prop_assert_eq!(key1, key3, "order invariant");
    }

    /// A predicate-rewrite application preserves the number of patterns
    /// and only changes predicates; weights pass through unchanged.
    #[test]
    fn rewrite_application_preserves_shape(
        patterns in proptest::collection::vec(qpattern(4, 6), 1..4),
        rule in rewrite_rule(6),
    ) {
        for rewriting in apply_rule(&patterns, &rule, RuleId(0)) {
            prop_assert_eq!(rewriting.patterns.len(), patterns.len());
            prop_assert_eq!(rewriting.weight, rule.weight);
        }
    }

    /// Expansion always returns the original query first (weight 1.0),
    /// never exceeds its caps, and every rewriting's weight is within
    /// (min_weight, 1.0].
    #[test]
    fn expand_respects_contract(
        patterns in proptest::collection::vec(qpattern(4, 5), 1..4),
        rules in proptest::collection::vec(rewrite_rule(5), 0..6),
        depth in 0usize..3,
    ) {
        let set: RuleSet = rules.into_iter().collect();
        let opts = ExpandOptions {
            max_depth: depth,
            min_weight: 0.05,
            max_rewritings: 64,
        };
        let out = expand(&patterns, &set, &opts);
        prop_assert!(!out.is_empty());
        prop_assert!(out[0].trace.is_empty());
        prop_assert_eq!(out[0].weight, 1.0);
        prop_assert_eq!(&out[0].patterns, &patterns);
        prop_assert!(out.len() <= opts.max_rewritings);
        for r in &out {
            prop_assert!(r.weight > 0.0 && r.weight <= 1.0);
            prop_assert!(r.trace.len() <= depth);
        }
    }

    /// No two expansion results are alpha-equivalent (deduplication).
    #[test]
    fn expand_deduplicates(
        patterns in proptest::collection::vec(qpattern(3, 4), 1..3),
        rules in proptest::collection::vec(rewrite_rule(4), 0..5),
    ) {
        let original_vars = 3;
        let set: RuleSet = rules.into_iter().collect();
        let out = expand(&patterns, &set, &ExpandOptions::default());
        let keys: Vec<_> = out
            .iter()
            .map(|r| canonical_key(&r.patterns, original_vars))
            .collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), keys.len(), "alpha-equivalent duplicates");
    }

    /// Ranking ties: the `total_cmp`-based comparator used across the
    /// ranking surfaces (suggest, NED, ontology, mining, apply) orders
    /// finite weights exactly like the old `partial_cmp`-based one, and
    /// the secondary key makes the order independent of input order
    /// even when every weight collides.
    #[test]
    fn total_cmp_ordering_is_stable_under_ties(
        entries in proptest::collection::vec((0usize..4, 0u32..64), 1..40),
    ) {
        // Weights drawn from a 4-value pool so ties are the common
        // case, paired with a label that may itself repeat.
        let pool = [0.25f64, 0.5, 0.5, 0.75];
        let items: Vec<(f64, u32)> = entries
            .iter()
            .map(|&(w, label)| (pool[w], label))
            .collect();

        let mut fixed = items.clone();
        fixed.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));

        let mut reference = items.clone();
        // lint:allow(float-ordering): reference comparator pinning equivalence with the pre-fix partial_cmp ordering
        reference.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1)));
        prop_assert_eq!(&fixed, &reference, "total_cmp changed the ranking");

        // Order independence: feeding the same multiset in reverse
        // yields the identical ranking, because the (weight, label)
        // comparator is total over the generated domain.
        let mut reversed: Vec<(f64, u32)> = items.iter().rev().copied().collect();
        reversed.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        prop_assert_eq!(&fixed, &reversed, "ranking depends on input order");
    }

    /// Inversion is an involution at weight level: applying the reverse
    /// rule to the rewritten pattern recovers the original pattern.
    #[test]
    fn inversion_round_trip(
        s in 0u32..5,
        p1 in 0u32..5,
        p2 in 5u32..10,
        o in 0u32..5,
    ) {
        let fwd = Rule::inversion("f", tid(p1), tid(p2), 0.9, RuleProvenance::UserDefined);
        let back = Rule::inversion("b", tid(p2), tid(p1), 0.9, RuleProvenance::UserDefined);
        let query = vec![QPattern::new(
            QTerm::Term(tid(s)),
            QTerm::Term(tid(p1)),
            QTerm::Term(tid(o)),
        )];
        let step1 = apply_rule(&query, &fwd, RuleId(0));
        prop_assert_eq!(step1.len(), 1);
        let step2 = apply_rule(&step1[0].patterns, &back, RuleId(1));
        prop_assert_eq!(step2.len(), 1);
        prop_assert_eq!(&step2[0].patterns, &query);
    }
}
