//! # trinit-relax — query relaxation framework
//!
//! Implements §3 of the TriniT paper: relaxation rules that replace a set
//! of triple patterns in a query with a new set, weighted by semantic
//! similarity. Rules come from four sources, all implemented here:
//!
//! * **XKG co-occurrence mining** ([`mine`]) — the paper's
//!   `w(p1 ↦ p2) = |args(p1) ∩ args(p2)| / |args(p2)|` formula, forward
//!   and inverted;
//! * **ontology/granularity rules** ([`ontology`]) — paper rule 1;
//! * **paraphrase repositories** ([`paraphrase`]);
//! * **user-defined rules** and arbitrary plug-ins through the
//!   [`operator`] API.
//!
//! [`apply::expand`] enumerates weighted relaxation *sequences* of a
//! query, which both the full-expansion baseline and the incremental
//! top-k processor (in `trinit-query`) consume.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apply;
pub mod mine;
pub mod ontology;
pub mod operator;
pub mod paraphrase;
pub mod pattern;
pub mod rule;
pub mod ruleset;

pub use apply::{
    apply_rule, apply_rule_oracle, apply_rule_with, canonical_key, expand, expand_with,
    ConditionOracle, ExpandOptions,
    RelaxedQuery, Rewriting,
};
pub use mine::{mine_cooccurrence, MinedRule, MinerConfig};
pub use ontology::{granularity_rule, mine_granularity, GranularityMinerConfig, GranularitySpec};
pub use operator::{
    CooccurrenceOperator, GranularityOperator, ManualOperator, OperatorRegistry,
    ParaphraseOperator, RelaxationOperator,
};
pub use paraphrase::{paraphrase_rules, ParaphraseGroup};
pub use pattern::{display_pattern, QPattern, QTerm, VarId};
pub use rule::{RVar, Rule, RuleId, RuleKind, RuleProvenance, TTerm, Template};
pub use ruleset::RuleSet;
