//! The relaxation-operator plug-in API.
//!
//! "TriniT has an API for relaxation operators, which administrators and
//! advanced users can use to plug in their code for generating relaxation
//! rules and their weights." (paper §3)
//!
//! A [`RelaxationOperator`] inspects a store and produces rules; an
//! [`OperatorRegistry`] runs a pipeline of operators to build the final
//! [`RuleSet`]. The built-in miners are exposed as operators so custom
//! ones compose with them uniformly.

use trinit_xkg::{TermId, XkgStore};

use crate::mine::{mine_cooccurrence, MinerConfig};
use crate::ontology::{mine_granularity, GranularityMinerConfig};
use crate::paraphrase::{paraphrase_rules, ParaphraseGroup};
use crate::rule::Rule;
use crate::ruleset::RuleSet;

/// A pluggable generator of relaxation rules.
pub trait RelaxationOperator {
    /// Name shown in diagnostics and explanations.
    fn name(&self) -> &str;

    /// Generates rules by inspecting the store.
    fn generate(&self, store: &XkgStore) -> Vec<Rule>;
}

/// Built-in operator: XKG co-occurrence mining (paper §3 formula).
#[derive(Debug, Default)]
pub struct CooccurrenceOperator {
    /// Miner configuration.
    pub config: MinerConfig,
}

impl RelaxationOperator for CooccurrenceOperator {
    fn name(&self) -> &str {
        "xkg-cooccurrence"
    }

    fn generate(&self, store: &XkgStore) -> Vec<Rule> {
        mine_cooccurrence(store, &self.config)
            .into_iter()
            .map(|m| m.rule)
            .collect()
    }
}

/// Built-in operator: granularity rules from type + connecting predicate.
#[derive(Debug)]
pub struct GranularityOperator {
    /// The `type` predicate.
    pub type_pred: TermId,
    /// The connecting predicate (e.g. `locatedIn`).
    pub via: TermId,
    /// Miner configuration.
    pub config: GranularityMinerConfig,
}

impl RelaxationOperator for GranularityOperator {
    fn name(&self) -> &str {
        "ontology-granularity"
    }

    fn generate(&self, store: &XkgStore) -> Vec<Rule> {
        mine_granularity(store, self.type_pred, self.via, &self.config)
    }
}

/// Built-in operator: paraphrase-repository rules.
#[derive(Debug, Default)]
pub struct ParaphraseOperator {
    /// Paraphrase clusters.
    pub groups: Vec<ParaphraseGroup>,
}

impl RelaxationOperator for ParaphraseOperator {
    fn name(&self) -> &str {
        "paraphrase-repository"
    }

    fn generate(&self, store: &XkgStore) -> Vec<Rule> {
        paraphrase_rules(store, &self.groups)
    }
}

/// Operator that emits a fixed set of (manually authored) rules.
#[derive(Debug, Default)]
pub struct ManualOperator {
    /// The rules to emit.
    pub rules: Vec<Rule>,
}

impl RelaxationOperator for ManualOperator {
    fn name(&self) -> &str {
        "manual"
    }

    fn generate(&self, _store: &XkgStore) -> Vec<Rule> {
        self.rules.clone()
    }
}

/// A pipeline of relaxation operators.
#[derive(Default)]
pub struct OperatorRegistry {
    operators: Vec<Box<dyn RelaxationOperator>>,
}

impl OperatorRegistry {
    /// Creates an empty registry.
    pub fn new() -> OperatorRegistry {
        OperatorRegistry::default()
    }

    /// Registers an operator; runs after previously registered ones.
    pub fn register(&mut self, op: Box<dyn RelaxationOperator>) -> &mut Self {
        self.operators.push(op);
        self
    }

    /// Names of registered operators, in run order.
    pub fn names(&self) -> Vec<&str> {
        self.operators.iter().map(|o| o.name()).collect()
    }

    /// Runs all operators against `store` and collects their rules into a
    /// [`RuleSet`] (insertion order = operator order).
    pub fn build_rules(&self, store: &XkgStore) -> RuleSet {
        let mut set = RuleSet::new();
        for op in &self.operators {
            set.add_all(op.generate(store));
        }
        set
    }
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorRegistry")
            .field("operators", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleProvenance;
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2")] {
            b.add_kg_resources(s, "affiliation", o);
        }
        let src = b.intern_source("d");
        let worked = b.dict_mut().token("worked at");
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2")] {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, worked, o, 0.8, src);
        }
        b.build()
    }

    #[test]
    fn registry_runs_operators_in_order() {
        let store = store();
        let mut reg = OperatorRegistry::new();
        let aff = store.resource("affiliation").unwrap();
        let worked = store.token("worked at").unwrap();
        reg.register(Box::new(ManualOperator {
            rules: vec![Rule::predicate_rewrite(
                "manual-first",
                aff,
                worked,
                0.5,
                RuleProvenance::UserDefined,
            )],
        }));
        reg.register(Box::new(CooccurrenceOperator::default()));
        let rules = reg.build_rules(&store);
        assert!(rules.len() >= 3);
        assert_eq!(rules.get(crate::rule::RuleId(0)).label, "manual-first");
        assert_eq!(reg.names(), vec!["manual", "xkg-cooccurrence"]);
    }

    #[test]
    fn custom_operator_plugs_in() {
        struct Doubler;
        impl RelaxationOperator for Doubler {
            fn name(&self) -> &str {
                "doubler"
            }
            fn generate(&self, store: &XkgStore) -> Vec<Rule> {
                let aff = store.resource("affiliation").unwrap();
                vec![Rule::predicate_rewrite(
                    "custom",
                    aff,
                    aff,
                    1.0,
                    RuleProvenance::UserDefined,
                )]
            }
        }
        let store = store();
        let mut reg = OperatorRegistry::new();
        reg.register(Box::new(Doubler));
        let rules = reg.build_rules(&store);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules.get(crate::rule::RuleId(0)).label, "custom");
    }

    #[test]
    fn empty_registry_builds_empty_set() {
        let store = store();
        let rules = OperatorRegistry::new().build_rules(&store);
        assert!(rules.is_empty());
    }
}
