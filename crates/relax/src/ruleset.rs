//! Rule collections with per-predicate indexing.

use std::collections::HashMap;

use trinit_xkg::TermId;

use crate::rule::{Rule, RuleId};

/// An ordered collection of relaxation rules.
///
/// Rules receive stable [`RuleId`]s in insertion order; single-pattern
/// rules are indexed by their LHS predicate so the top-k processor can
/// find the relaxations of a triple pattern in O(1).
#[derive(Debug, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_predicate: HashMap<TermId, Vec<RuleId>>,
    structural: Vec<RuleId>,
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> RuleSet {
        RuleSet::default()
    }

    /// Adds a rule, returning its id.
    pub fn add(&mut self, rule: Rule) -> RuleId {
        let id = RuleId(u32::try_from(self.rules.len()).expect("rule overflow"));
        match rule.lhs_predicate() {
            Some(p) => self.by_predicate.entry(p).or_default().push(id),
            None => self.structural.push(id),
        }
        self.rules.push(rule);
        id
    }

    /// Adds every rule from an iterator, returning the assigned ids.
    pub fn add_all<I: IntoIterator<Item = Rule>>(&mut self, rules: I) -> Vec<RuleId> {
        rules.into_iter().map(|r| self.add(r)).collect()
    }

    /// The rule with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this set.
    pub fn get(&self, id: RuleId) -> &Rule {
        &self.rules[id.0 as usize]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates `(id, rule)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// Ids of single-pattern rules whose LHS predicate is `p`.
    pub fn rules_for_predicate(&self, p: TermId) -> &[RuleId] {
        self.by_predicate.get(&p).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of rules that are not single-pattern predicate rules
    /// (multi-pattern structural rules and variable-predicate rules).
    pub fn structural_rules(&self) -> &[RuleId] {
        &self.structural
    }
}

impl FromIterator<Rule> for RuleSet {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> RuleSet {
        let mut set = RuleSet::new();
        set.add_all(iter);
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{RuleProvenance, RVar, TTerm, Template};
    use trinit_xkg::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn ids_are_stable_insertion_order() {
        let mut set = RuleSet::new();
        let a = set.add(Rule::predicate_rewrite(
            "a",
            tid(1),
            tid(2),
            0.5,
            RuleProvenance::Paraphrase,
        ));
        let b = set.add(Rule::inversion(
            "b",
            tid(3),
            tid(4),
            1.0,
            RuleProvenance::MinedInversion,
        ));
        assert_eq!(a, RuleId(0));
        assert_eq!(b, RuleId(1));
        assert_eq!(set.get(a).label, "a");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn predicate_index() {
        let mut set = RuleSet::new();
        set.add(Rule::predicate_rewrite(
            "a",
            tid(1),
            tid(2),
            0.5,
            RuleProvenance::Paraphrase,
        ));
        set.add(Rule::predicate_rewrite(
            "b",
            tid(1),
            tid(3),
            0.6,
            RuleProvenance::Paraphrase,
        ));
        set.add(Rule::predicate_rewrite(
            "c",
            tid(9),
            tid(3),
            0.6,
            RuleProvenance::Paraphrase,
        ));
        assert_eq!(set.rules_for_predicate(tid(1)).len(), 2);
        assert_eq!(set.rules_for_predicate(tid(9)).len(), 1);
        assert!(set.rules_for_predicate(tid(42)).is_empty());
    }

    #[test]
    fn structural_rules_are_separated() {
        let mut set = RuleSet::new();
        let (x, y) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)));
        set.add(Rule::structural(
            "s",
            vec![
                Template::new(x, TTerm::Const(tid(1)), y),
                Template::new(y, TTerm::Const(tid(2)), x),
            ],
            vec![Template::new(x, TTerm::Const(tid(3)), y)],
            0.7,
            RuleProvenance::Ontology,
        ));
        assert_eq!(set.structural_rules().len(), 1);
        assert!(set.rules_for_predicate(tid(1)).is_empty());
    }

    #[test]
    fn from_iterator() {
        let set: RuleSet = vec![
            Rule::predicate_rewrite("a", tid(1), tid(2), 0.5, RuleProvenance::Paraphrase),
            Rule::predicate_rewrite("b", tid(2), tid(3), 0.5, RuleProvenance::Paraphrase),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
