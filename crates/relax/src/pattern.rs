//! Triple patterns with variables — the query-side pattern language.
//!
//! The paper's extended triple patterns (§2) allow each S/P/O slot to be a
//! canonical resource, a textual token, a literal, or a variable. This
//! module defines that representation; both the relaxation framework and
//! the query processor operate on it.

use std::fmt;

use trinit_xkg::{SlotPattern, TermId};

/// A query variable, identified by a dense index within its query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u16);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?v{}", self.0)
    }
}

/// One slot of a query triple pattern: a concrete term or a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QTerm {
    /// A concrete term (resource, token, or literal).
    Term(TermId),
    /// A variable.
    Var(VarId),
}

impl QTerm {
    /// The concrete term, if this slot is bound.
    #[inline]
    pub fn term(self) -> Option<TermId> {
        match self {
            QTerm::Term(t) => Some(t),
            QTerm::Var(_) => None,
        }
    }

    /// The variable, if this slot is one.
    #[inline]
    pub fn var(self) -> Option<VarId> {
        match self {
            QTerm::Var(v) => Some(v),
            QTerm::Term(_) => None,
        }
    }
}

/// A query triple pattern over [`QTerm`] slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QPattern {
    /// Subject slot.
    pub s: QTerm,
    /// Predicate slot.
    pub p: QTerm,
    /// Object slot.
    pub o: QTerm,
}

impl QPattern {
    /// Creates a pattern.
    pub fn new(s: QTerm, p: QTerm, o: QTerm) -> QPattern {
        QPattern { s, p, o }
    }

    /// The slots as an array in S, P, O order.
    #[inline]
    pub fn slots(&self) -> [QTerm; 3] {
        [self.s, self.p, self.o]
    }

    /// The storage-level pattern: variables become wildcards.
    ///
    /// Note this loses join information (repeated variables); callers that
    /// need within-pattern variable equality must post-filter.
    pub fn slot_pattern(&self) -> SlotPattern {
        SlotPattern::new(self.s.term(), self.p.term(), self.o.term())
    }

    /// All variables occurring in this pattern, in slot order (may repeat).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.slots().into_iter().filter_map(QTerm::var)
    }

    /// The largest variable index in the pattern, if any.
    pub fn max_var(&self) -> Option<u16> {
        self.vars().map(|v| v.0).max()
    }

    /// True if the same variable occurs in more than one slot (a
    /// within-pattern self-join, e.g. `?x knows ?x`).
    pub fn has_repeated_var(&self) -> bool {
        let vs: Vec<VarId> = self.vars().collect();
        match vs.as_slice() {
            [a, b] => a == b,
            [a, b, c] => a == b || a == c || b == c,
            _ => false,
        }
    }
}

/// Renders a pattern against a dictionary for human-readable output.
pub fn display_pattern(pattern: &QPattern, dict: &trinit_xkg::TermDict) -> String {
    let slot = |t: QTerm| match t {
        QTerm::Var(v) => v.to_string(),
        QTerm::Term(id) => match dict.resolve(id) {
            Some(text) if id.is_resource() => text.to_string(),
            Some(text) => format!("'{text}'"),
            None => format!("<{id:?}>"),
        },
    };
    format!(
        "{} {} {}",
        slot(pattern.s),
        slot(pattern.p),
        slot(pattern.o)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::{TermDict, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn slot_pattern_projects_terms() {
        let p = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(tid(1)), QTerm::Var(VarId(1)));
        let sp = p.slot_pattern();
        assert_eq!(sp.s, None);
        assert_eq!(sp.p, Some(tid(1)));
        assert_eq!(sp.o, None);
    }

    #[test]
    fn vars_and_max_var() {
        let p = QPattern::new(QTerm::Var(VarId(2)), QTerm::Term(tid(1)), QTerm::Var(VarId(5)));
        let vs: Vec<VarId> = p.vars().collect();
        assert_eq!(vs, vec![VarId(2), VarId(5)]);
        assert_eq!(p.max_var(), Some(5));
        let ground = QPattern::new(QTerm::Term(tid(0)), QTerm::Term(tid(1)), QTerm::Term(tid(2)));
        assert_eq!(ground.max_var(), None);
    }

    #[test]
    fn repeated_var_detection() {
        let p = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(tid(1)), QTerm::Var(VarId(0)));
        assert!(p.has_repeated_var());
        let q = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(tid(1)), QTerm::Var(VarId(1)));
        assert!(!q.has_repeated_var());
    }

    #[test]
    fn display_uses_dictionary() {
        let mut dict = TermDict::new();
        let born = dict.resource("bornIn");
        let ulm = dict.resource("Ulm");
        let p = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(born), QTerm::Term(ulm));
        assert_eq!(display_pattern(&p, &dict), "?v0 bornIn Ulm");
        let tok = dict.token("won nobel for");
        let q = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(tok), QTerm::Var(VarId(1)));
        assert_eq!(display_pattern(&q, &dict), "?v0 'won nobel for' ?v1");
    }
}
