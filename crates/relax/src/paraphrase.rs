//! Paraphrase-repository relaxation rules.
//!
//! The paper (§3) notes that relaxation rules can also be "automatically
//! obtained using ... paraphrase repositories (e.g. PATTY, Biperpedia)".
//! A [`ParaphraseGroup`] is a cluster of near-synonymous predicate
//! phrases; every ordered pair of members that exists in the store's
//! dictionary yields a predicate-rewrite rule with the group's weight.

use trinit_xkg::{TermId, TermKind, XkgStore};

use crate::rule::{Rule, RuleProvenance};

/// A cluster of near-synonymous predicate phrases.
#[derive(Debug, Clone)]
pub struct ParaphraseGroup {
    /// Member phrases. Resources are matched against resource predicates,
    /// everything else against token predicates.
    pub phrases: Vec<String>,
    /// Pairwise rewrite weight within the group.
    pub weight: f64,
}

impl ParaphraseGroup {
    /// Creates a group from phrases and a weight.
    pub fn new<I, S>(phrases: I, weight: f64) -> ParaphraseGroup
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ParaphraseGroup {
            phrases: phrases.into_iter().map(Into::into).collect(),
            weight,
        }
    }
}

/// Resolves a phrase to a predicate term: resource first, token second.
fn resolve(store: &XkgStore, phrase: &str) -> Option<TermId> {
    store
        .dict()
        .get(TermKind::Resource, phrase)
        .or_else(|| store.dict().get(TermKind::Token, phrase))
}

/// Generates rewrite rules from paraphrase groups.
///
/// Phrases not present in the store dictionary are skipped (a repository
/// covers far more language than any one XKG contains).
pub fn paraphrase_rules(store: &XkgStore, groups: &[ParaphraseGroup]) -> Vec<Rule> {
    let mut out = Vec::new();
    for group in groups {
        let members: Vec<(TermId, &str)> = group
            .phrases
            .iter()
            .filter_map(|p| resolve(store, p).map(|id| (id, p.as_str())))
            .collect();
        for (i, &(p1, n1)) in members.iter().enumerate() {
            for &(p2, n2) in members.iter().skip(i + 1) {
                out.push(Rule::predicate_rewrite(
                    format!("paraphrase: {n1} => {n2}"),
                    p1,
                    p2,
                    group.weight,
                    RuleProvenance::Paraphrase,
                ));
                out.push(Rule::predicate_rewrite(
                    format!("paraphrase: {n2} => {n1}"),
                    p2,
                    p1,
                    group.weight,
                    RuleProvenance::Paraphrase,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "affiliation", "U1");
        let src = b.intern_source("d");
        let s = b.dict_mut().resource("a");
        let worked = b.dict_mut().token("worked at");
        let lectured = b.dict_mut().token("lectured at");
        let o = b.dict_mut().resource("U1");
        b.add_extracted(s, worked, o, 0.8, src);
        b.add_extracted(s, lectured, o, 0.8, src);
        b.build()
    }

    #[test]
    fn generates_bidirectional_pairs() {
        let store = store();
        let groups = vec![ParaphraseGroup::new(
            ["affiliation", "worked at", "lectured at"],
            0.7,
        )];
        let rules = paraphrase_rules(&store, &groups);
        // 3 members → 3 unordered pairs → 6 directed rules.
        assert_eq!(rules.len(), 6);
        assert!(rules.iter().all(|r| (r.weight - 0.7).abs() < 1e-9));
        assert!(rules
            .iter()
            .all(|r| r.provenance == RuleProvenance::Paraphrase));
    }

    #[test]
    fn unknown_phrases_are_skipped() {
        let store = store();
        let groups = vec![ParaphraseGroup::new(
            ["affiliation", "no such phrase"],
            0.5,
        )];
        let rules = paraphrase_rules(&store, &groups);
        assert!(rules.is_empty());
    }

    #[test]
    fn resource_resolution_takes_precedence() {
        let store = store();
        let groups = vec![ParaphraseGroup::new(["affiliation", "worked at"], 0.9)];
        let rules = paraphrase_rules(&store, &groups);
        assert_eq!(rules.len(), 2);
        let aff = store.resource("affiliation").unwrap();
        assert!(rules.iter().any(|r| r.lhs_predicate() == Some(aff)));
    }

    #[test]
    fn empty_groups_produce_nothing() {
        let store = store();
        assert!(paraphrase_rules(&store, &[]).is_empty());
        let groups = vec![ParaphraseGroup::new(Vec::<String>::new(), 0.5)];
        assert!(paraphrase_rules(&store, &groups).is_empty());
    }
}
