//! Rule application: unification and query rewriting.
//!
//! Applying a rule unifies its LHS templates with a subset of the query's
//! triple patterns and replaces them with the instantiated RHS. Rule
//! variables bind consistently to whatever the query holds (constants or
//! query variables); RHS-only rule variables become fresh query variables.
//!
//! [`expand`] explores *sequences* of relaxations breadth-first with
//! multiplicative weights, deduplicating alpha-equivalent rewritings and
//! keeping the maximum weight per rewriting — matching the paper's answer
//! scoring, where "the score of an answer \[is\] the maximal one obtained
//! through any such sequence" (§4).

use std::collections::HashMap;

use trinit_xkg::{SlotPattern, TermId, XkgStore};

use crate::pattern::{QPattern, QTerm, VarId};
use crate::rule::{RVar, Rule, RuleId, TTerm, Template};
use crate::ruleset::RuleSet;

/// Ground-fact existence oracle backing rule *data conditions*: an LHS
/// template absent from the query licenses a rule when its ground
/// instantiation is asserted in the data. A monolithic [`XkgStore`] is
/// the canonical oracle; a sharded store implements the same check by
/// probing the subject's shard (subject-hash partitioning guarantees a
/// ground triple can only live there).
pub trait ConditionOracle {
    /// True if the ground triple `(s, p, o)` is asserted.
    fn ground_holds(&self, s: TermId, p: TermId, o: TermId) -> bool;
}

impl ConditionOracle for XkgStore {
    #[inline]
    fn ground_holds(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.count(&SlotPattern::new(Some(s), Some(p), Some(o))) > 0
    }
}

/// One rewriting produced by a single rule application.
#[derive(Debug, Clone, PartialEq)]
pub struct Rewriting {
    /// The rewritten query.
    pub patterns: Vec<QPattern>,
    /// The applied rule's weight.
    pub weight: f64,
    /// The applied rule.
    pub rule: RuleId,
}

/// A (possibly multi-step) relaxed form of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct RelaxedQuery {
    /// The rewritten query patterns.
    pub patterns: Vec<QPattern>,
    /// Product of the applied rules' weights (1.0 for the original).
    pub weight: f64,
    /// The sequence of rules applied, in order.
    pub trace: Vec<RuleId>,
}

type Bindings = HashMap<RVar, QTerm>;

/// Unifies one template slot against one query slot under `bindings`.
fn unify_slot(t: TTerm, q: QTerm, bindings: &mut Bindings) -> bool {
    match t {
        TTerm::Const(c) => q == QTerm::Term(c),
        TTerm::Var(v) => match bindings.get(&v) {
            Some(&bound) => bound == q,
            None => {
                bindings.insert(v, q);
                true
            }
        },
    }
}

/// Unifies a template against a query pattern, extending `bindings`.
fn unify_pattern(t: &Template, q: &QPattern, bindings: &mut Bindings) -> bool {
    unify_slot(t.s, q.s, bindings) && unify_slot(t.p, q.p, bindings) && unify_slot(t.o, q.o, bindings)
}

/// Instantiates one RHS slot under bindings and the fresh-variable map.
fn instantiate_slot(t: TTerm, bindings: &Bindings, fresh: &HashMap<RVar, VarId>) -> QTerm {
    match t {
        TTerm::Const(c) => QTerm::Term(c),
        TTerm::Var(v) => bindings
            .get(&v)
            .copied()
            .unwrap_or_else(|| QTerm::Var(fresh[&v])),
    }
}

/// Recursively assigns each LHS template to a distinct query pattern, or
/// (when a store is available) defers it as a *data condition*: an LHS
/// pattern absent from the query may still license the rule if its ground
/// instantiation holds in the store. This lets the paper's rule 1 fire on
/// user A's plain `?x bornIn Germany` — `Germany type country` is not in
/// the query but is a KG fact.
fn search(
    lhs: &[Template],
    query: &[QPattern],
    oracle: Option<&dyn ConditionOracle>,
    used: &mut Vec<usize>,
    conditions: &mut Vec<Template>,
    bindings: &mut Bindings,
    out: &mut Vec<(Vec<usize>, Bindings)>,
) {
    let Some(template) = lhs.first() else {
        // At least one template must consume an actual query pattern, and
        // every deferred condition must hold as a ground fact.
        if used.is_empty() {
            return;
        }
        if let Some(oracle) = oracle {
            for cond in conditions.iter() {
                if !condition_holds(cond, bindings, oracle) {
                    return;
                }
            }
        }
        out.push((used.clone(), bindings.clone()));
        return;
    };
    for (i, q) in query.iter().enumerate() {
        if used.contains(&i) {
            continue;
        }
        let mut trial = bindings.clone();
        if unify_pattern(template, q, &mut trial) {
            used.push(i);
            search(&lhs[1..], query, oracle, used, conditions, &mut trial, out);
            used.pop();
        }
    }
    if oracle.is_some() {
        // Condition branch: check this template against the data instead.
        conditions.push(*template);
        search(&lhs[1..], query, oracle, used, conditions, bindings, out);
        conditions.pop();
    }
}

/// True if `template`, instantiated under `bindings`, is a ground triple
/// asserted in the store.
fn condition_holds(template: &Template, bindings: &Bindings, oracle: &dyn ConditionOracle) -> bool {
    let ground = |t: TTerm| -> Option<trinit_xkg::TermId> {
        match t {
            TTerm::Const(c) => Some(c),
            TTerm::Var(v) => match bindings.get(&v) {
                Some(QTerm::Term(id)) => Some(*id),
                _ => None,
            },
        }
    };
    let (Some(s), Some(p), Some(o)) = (ground(template.s), ground(template.p), ground(template.o))
    else {
        return false;
    };
    oracle.ground_holds(s, p, o)
}

/// Applies `rule` to `query` in every possible way, returning the distinct
/// rewritings. Purely syntactic: LHS patterns must all unify with query
/// patterns (no data conditions). See [`apply_rule_with`] for the
/// store-aware variant.
pub fn apply_rule(query: &[QPattern], rule: &Rule, rule_id: RuleId) -> Vec<Rewriting> {
    apply_rule_with(query, rule, rule_id, None)
}

/// Applies `rule` to `query`, optionally allowing unmatched LHS patterns
/// to be verified as ground conditions against `store`.
pub fn apply_rule_with(
    query: &[QPattern],
    rule: &Rule,
    rule_id: RuleId,
    store: Option<&XkgStore>,
) -> Vec<Rewriting> {
    apply_rule_oracle(query, rule, rule_id, store.map(|s| s as &dyn ConditionOracle))
}

/// Applies `rule` to `query`, verifying unmatched LHS patterns as ground
/// conditions through an arbitrary [`ConditionOracle`] — the entry point
/// sharded executors use, where "asserted in the data" spans every shard.
pub fn apply_rule_oracle(
    query: &[QPattern],
    rule: &Rule,
    rule_id: RuleId,
    oracle: Option<&dyn ConditionOracle>,
) -> Vec<Rewriting> {
    let mut matches = Vec::new();
    search(
        &rule.lhs,
        query,
        oracle,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Bindings::new(),
        &mut matches,
    );

    let next_var = query
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);

    let mut out: Vec<Rewriting> = Vec::new();
    for (used, bindings) in matches {
        // Allocate fresh query variables for RHS-only rule variables.
        let mut fresh = HashMap::new();
        for (offset, v) in rule.fresh_vars().into_iter().enumerate() {
            fresh.insert(v, VarId(next_var + offset as u16));
        }
        let mut patterns: Vec<QPattern> = query
            .iter()
            .enumerate()
            .filter(|(i, _)| !used.contains(i))
            .map(|(_, p)| *p)
            .collect();
        for template in &rule.rhs {
            patterns.push(QPattern::new(
                instantiate_slot(template.s, &bindings, &fresh),
                instantiate_slot(template.p, &bindings, &fresh),
                instantiate_slot(template.o, &bindings, &fresh),
            ));
        }
        let rewriting = Rewriting {
            patterns,
            weight: rule.weight,
            rule: rule_id,
        };
        if !out
            .iter()
            .any(|r| canonical_key(&r.patterns, next_var) == canonical_key(&rewriting.patterns, next_var))
        {
            out.push(rewriting);
        }
    }
    out
}

/// Canonical form of a rewritten query for deduplication: fresh variables
/// (ids ≥ `original_vars`) are renamed in first-occurrence order over the
/// sorted pattern list, making alpha-equivalent rewritings identical.
/// Original query variables keep their identity (they carry projection
/// semantics).
pub fn canonical_key(patterns: &[QPattern], original_vars: u16) -> Vec<QPattern> {
    let mut sorted = patterns.to_vec();
    sorted.sort_unstable();
    let mut rename: HashMap<VarId, VarId> = HashMap::new();
    let mut next = original_vars;
    let mut mapped = Vec::with_capacity(sorted.len());
    for p in &sorted {
        let map_slot = |t: QTerm, rename: &mut HashMap<VarId, VarId>, next: &mut u16| match t {
            QTerm::Var(v) if v.0 >= original_vars => {
                let nv = *rename.entry(v).or_insert_with(|| {
                    let nv = VarId(*next);
                    *next += 1;
                    nv
                });
                QTerm::Var(nv)
            }
            other => other,
        };
        mapped.push(QPattern::new(
            map_slot(p.s, &mut rename, &mut next),
            map_slot(p.p, &mut rename, &mut next),
            map_slot(p.o, &mut rename, &mut next),
        ));
    }
    mapped.sort_unstable();
    mapped
}

/// Options for [`expand`].
#[derive(Debug, Clone)]
pub struct ExpandOptions {
    /// Maximum number of rule applications in a sequence.
    pub max_depth: usize,
    /// Rewritings with combined weight below this are pruned.
    pub min_weight: f64,
    /// Hard cap on the number of rewritings returned (including the
    /// original query).
    pub max_rewritings: usize,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions {
            max_depth: 2,
            min_weight: 0.05,
            max_rewritings: 256,
        }
    }
}

/// Expands a query into all relaxed forms reachable within
/// `opts.max_depth` rule applications.
///
/// The result always starts with the original query (weight 1.0, empty
/// trace); the rest are sorted by descending weight (ties broken by trace
/// length then canonical order) and deduplicated up to alpha-equivalence,
/// keeping the maximum weight per form.
pub fn expand(query: &[QPattern], rules: &RuleSet, opts: &ExpandOptions) -> Vec<RelaxedQuery> {
    expand_with(query, rules, opts, None)
}

/// [`expand`] with store-verified data conditions (see
/// [`apply_rule_with`]).
pub fn expand_with(
    query: &[QPattern],
    rules: &RuleSet,
    opts: &ExpandOptions,
    store: Option<&XkgStore>,
) -> Vec<RelaxedQuery> {
    let original_vars = query
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);

    let mut best: HashMap<Vec<QPattern>, RelaxedQuery> = HashMap::new();
    let origin = RelaxedQuery {
        patterns: query.to_vec(),
        weight: 1.0,
        trace: Vec::new(),
    };
    best.insert(canonical_key(query, original_vars), origin.clone());

    let mut frontier = vec![origin.clone()];
    for _ in 0..opts.max_depth {
        let mut next_frontier = Vec::new();
        for current in &frontier {
            for (rule_id, rule) in rules.iter() {
                for rewriting in apply_rule_with(&current.patterns, rule, rule_id, store) {
                    let weight = current.weight * rewriting.weight;
                    if weight < opts.min_weight {
                        continue;
                    }
                    let mut trace = current.trace.clone();
                    trace.push(rule_id);
                    let candidate = RelaxedQuery {
                        patterns: rewriting.patterns,
                        weight,
                        trace,
                    };
                    let key = canonical_key(&candidate.patterns, original_vars);
                    let insert = match best.get(&key) {
                        Some(existing) => weight > existing.weight,
                        None => true,
                    };
                    if insert {
                        best.insert(key, candidate.clone());
                        next_frontier.push(candidate);
                    }
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }

    let mut out: Vec<RelaxedQuery> = best.into_values().collect();
    out.sort_by(|a, b| {
        let a_is_origin = a.trace.is_empty();
        let b_is_origin = b.trace.is_empty();
        b_is_origin
            .cmp(&a_is_origin)
            .then(b.weight.total_cmp(&a.weight))
            .then_with(|| a.trace.len().cmp(&b.trace.len()))
            .then_with(|| a.patterns.cmp(&b.patterns))
    });
    out.truncate(opts.max_rewritings);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleProvenance;
    use trinit_xkg::{TermId, TermKind};

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    fn var(i: u16) -> QTerm {
        QTerm::Var(VarId(i))
    }

    fn term(i: u32) -> QTerm {
        QTerm::Term(tid(i))
    }

    #[test]
    fn predicate_rewrite_applies() {
        // Query: ?x p1 Ulm
        let query = vec![QPattern::new(var(0), term(1), term(9))];
        let rule = Rule::predicate_rewrite("r", tid(1), tid(2), 0.8, RuleProvenance::Paraphrase);
        let rewritings = apply_rule(&query, &rule, RuleId(0));
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].patterns,
            vec![QPattern::new(var(0), term(2), term(9))]
        );
        assert_eq!(rewritings[0].weight, 0.8);
    }

    #[test]
    fn inversion_swaps_query_arguments() {
        // AlbertEinstein hasAdvisor ?x  →  ?x hasStudent AlbertEinstein
        let query = vec![QPattern::new(term(7), term(1), var(0))];
        let rule = Rule::inversion("inv", tid(1), tid(2), 1.0, RuleProvenance::MinedInversion);
        let rewritings = apply_rule(&query, &rule, RuleId(3));
        assert_eq!(rewritings.len(), 1);
        assert_eq!(
            rewritings[0].patterns,
            vec![QPattern::new(var(0), term(2), term(7))]
        );
    }

    #[test]
    fn rule_without_match_produces_nothing() {
        let query = vec![QPattern::new(var(0), term(5), var(1))];
        let rule = Rule::predicate_rewrite("r", tid(1), tid(2), 0.8, RuleProvenance::Paraphrase);
        assert!(apply_rule(&query, &rule, RuleId(0)).is_empty());
    }

    #[test]
    fn structural_rule_introduces_fresh_variable() {
        // Paper rule 1: ?x bornIn ?y ; ?y type country →
        //               ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y
        use crate::rule::{RVar, TTerm, Template};
        let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));
        let born = TTerm::Const(tid(1));
        let typ = TTerm::Const(tid(2));
        let country = TTerm::Const(tid(3));
        let city = TTerm::Const(tid(4));
        let located = TTerm::Const(tid(5));
        let rule = Rule::structural(
            "rule1",
            vec![Template::new(x, born, y), Template::new(y, typ, country)],
            vec![
                Template::new(x, born, z),
                Template::new(z, typ, city),
                Template::new(z, located, y),
            ],
            1.0,
            RuleProvenance::Ontology,
        );
        // Query: ?a bornIn Germany ; Germany type country
        // (?y unifies with the constant Germany.)
        let germany = term(9);
        let query = vec![
            QPattern::new(var(0), term(1), germany),
            QPattern::new(germany, term(2), term(3)),
        ];
        let rewritings = apply_rule(&query, &rule, RuleId(1));
        assert_eq!(rewritings.len(), 1);
        let pats = &rewritings[0].patterns;
        assert_eq!(pats.len(), 3);
        // Fresh variable ?v1 (query had max var 0).
        assert!(pats.iter().any(|p| p.s == var(0) && p.o == var(1)));
        assert!(pats.iter().any(|p| p.s == var(1) && p.o == term(4)));
        assert!(pats.iter().any(|p| p.s == var(1) && p.o == germany));
    }

    #[test]
    fn expand_includes_original_first() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "r",
            tid(1),
            tid(2),
            0.8,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(&query, &rules, &ExpandOptions::default());
        assert_eq!(out.len(), 2);
        assert!(out[0].trace.is_empty());
        assert_eq!(out[0].weight, 1.0);
        assert_eq!(out[1].weight, 0.8);
    }

    #[test]
    fn expand_chains_rules_with_multiplied_weights() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "a",
            tid(1),
            tid(2),
            0.8,
            RuleProvenance::Paraphrase,
        ));
        rules.add(Rule::predicate_rewrite(
            "b",
            tid(2),
            tid(3),
            0.5,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(&query, &rules, &ExpandOptions::default());
        let chained = out
            .iter()
            .find(|r| r.trace.len() == 2)
            .expect("two-step rewriting");
        assert!((chained.weight - 0.4).abs() < 1e-9);
    }

    #[test]
    fn expand_keeps_max_weight_per_form() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        // Two routes to p2: direct (0.9) and via p3 (0.5 * 0.5 = 0.25).
        rules.add(Rule::predicate_rewrite(
            "direct",
            tid(1),
            tid(2),
            0.9,
            RuleProvenance::Paraphrase,
        ));
        rules.add(Rule::predicate_rewrite(
            "via1",
            tid(1),
            tid(3),
            0.5,
            RuleProvenance::Paraphrase,
        ));
        rules.add(Rule::predicate_rewrite(
            "via2",
            tid(3),
            tid(2),
            0.5,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(&query, &rules, &ExpandOptions::default());
        let to_p2: Vec<&RelaxedQuery> = out
            .iter()
            .filter(|r| r.patterns.len() == 1 && r.patterns[0].p == term(2))
            .collect();
        assert_eq!(to_p2.len(), 1, "alpha-equivalent forms deduplicated");
        assert!((to_p2[0].weight - 0.9).abs() < 1e-9);
    }

    #[test]
    fn expand_respects_min_weight() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            tid(1),
            tid(2),
            0.01,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(&query, &rules, &ExpandOptions::default());
        assert_eq!(out.len(), 1, "weak rewriting pruned");
    }

    #[test]
    fn expand_depth_zero_is_identity() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "r",
            tid(1),
            tid(2),
            0.9,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(
            &query,
            &rules,
            &ExpandOptions {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn data_condition_licenses_rule_1_on_plain_query() {
        use crate::rule::{RVar, TTerm, Template};
        use trinit_xkg::XkgBuilder;
        // Store: Germany is a country; Ulm is a city in Germany.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("Germany", "type", "country");
        b.add_kg_resources("Ulm", "type", "city");
        b.add_kg_resources("Ulm", "locatedIn", "Germany");
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        let store = b.build();
        let born = store.resource("bornIn").unwrap();
        let typ = store.resource("type").unwrap();
        let country = store.resource("country").unwrap();
        let city = store.resource("city").unwrap();
        let located = store.resource("locatedIn").unwrap();
        let germany = store.resource("Germany").unwrap();

        let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));
        let rule = Rule::structural(
            "rule1",
            vec![
                Template::new(x, TTerm::Const(born), y),
                Template::new(y, TTerm::Const(typ), TTerm::Const(country)),
            ],
            vec![
                Template::new(x, TTerm::Const(born), z),
                Template::new(z, TTerm::Const(typ), TTerm::Const(city)),
                Template::new(z, TTerm::Const(located), y),
            ],
            1.0,
            RuleProvenance::Ontology,
        );
        // User A's query, with NO type pattern: ?x bornIn Germany.
        let query = vec![QPattern::new(var(0), QTerm::Term(born), QTerm::Term(germany))];
        // Purely syntactic application cannot fire...
        assert!(apply_rule(&query, &rule, RuleId(0)).is_empty());
        // ...but with the store, `Germany type country` holds as a
        // condition and the rule rewrites the query.
        let rewritings = apply_rule_with(&query, &rule, RuleId(0), Some(&store));
        assert_eq!(rewritings.len(), 1);
        assert_eq!(rewritings[0].patterns.len(), 3);
    }

    #[test]
    fn unsatisfied_condition_blocks_rule() {
        use crate::rule::{RVar, TTerm, Template};
        use trinit_xkg::XkgBuilder;
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        b.add_kg_resources("Ulm", "type", "city");
        let store = b.build();
        let born = store.resource("bornIn").unwrap();
        let typ = store.resource("type").unwrap();
        let city = store.resource("city").unwrap();
        let ulm = store.resource("Ulm").unwrap();
        let (x, y) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)));
        // Rule requires the object to be typed `country`; Ulm is a city.
        let country_id = trinit_xkg::TermId::new(trinit_xkg::TermKind::Resource, 999);
        let rule = Rule::structural(
            "needs-country",
            vec![
                Template::new(x, TTerm::Const(born), y),
                Template::new(y, TTerm::Const(typ), TTerm::Const(country_id)),
            ],
            vec![Template::new(x, TTerm::Const(city), y)],
            1.0,
            RuleProvenance::Ontology,
        );
        let query = vec![QPattern::new(var(0), QTerm::Term(born), QTerm::Term(ulm))];
        assert!(apply_rule_with(&query, &rule, RuleId(0), Some(&store)).is_empty());
    }

    #[test]
    fn cyclic_rules_terminate() {
        let query = vec![QPattern::new(var(0), term(1), var(1))];
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "fwd",
            tid(1),
            tid(2),
            0.9,
            RuleProvenance::Paraphrase,
        ));
        rules.add(Rule::predicate_rewrite(
            "back",
            tid(2),
            tid(1),
            0.9,
            RuleProvenance::Paraphrase,
        ));
        let out = expand(
            &query,
            &rules,
            &ExpandOptions {
                max_depth: 6,
                ..Default::default()
            },
        );
        // p1 (original, 1.0) and p2 (0.9); round-trips are dominated.
        assert_eq!(out.len(), 2);
    }
}
