//! Ontology-driven (granularity) relaxation rules.
//!
//! Generates rules like the paper's rule 1:
//!
//! ```text
//! ?x bornIn ?y ; ?y type country
//!     →  ?x bornIn ?z ; ?z type city ; ?z locatedIn ?y      (w = 1.0)
//! ```
//!
//! Such rules repair *granularity mismatch*: the KG asserts a relation at
//! a fine-grained class (cities) while users query a coarse-grained class
//! (countries) reachable through a connecting predicate.
//!
//! Rules can be constructed explicitly from a [`GranularitySpec`], or
//! mined from the store: a predicate whose objects are dominantly of a
//! class `F`, where `F`-instances link to class-`C` instances through a
//! `via` predicate, yields a rule lifting queries from `C` to `F`.

use std::collections::HashMap;

use trinit_xkg::{SlotPattern, StoreStats, TermId, XkgStore};

use crate::rule::{RVar, Rule, RuleProvenance, TTerm, Template};

/// Explicit description of one granularity rule.
#[derive(Debug, Clone)]
pub struct GranularitySpec {
    /// The base predicate being relaxed (e.g. `bornIn`).
    pub base: TermId,
    /// The connecting predicate (e.g. `locatedIn`).
    pub via: TermId,
    /// The `type` predicate of the KG.
    pub type_pred: TermId,
    /// Fine-grained class at which the KG asserts `base` (e.g. `city`).
    pub fine_class: TermId,
    /// Coarse-grained class users query (e.g. `country`).
    pub coarse_class: TermId,
    /// Rule weight.
    pub weight: f64,
}

/// Builds the structural rule for a [`GranularitySpec`].
pub fn granularity_rule(spec: &GranularitySpec, label: impl Into<String>) -> Rule {
    let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));
    Rule::structural(
        label,
        vec![
            Template::new(x, TTerm::Const(spec.base), y),
            Template::new(y, TTerm::Const(spec.type_pred), TTerm::Const(spec.coarse_class)),
        ],
        vec![
            Template::new(x, TTerm::Const(spec.base), z),
            Template::new(z, TTerm::Const(spec.type_pred), TTerm::Const(spec.fine_class)),
            Template::new(z, TTerm::Const(spec.via), y),
        ],
        spec.weight,
        RuleProvenance::Ontology,
    )
}

/// Configuration for granularity-rule mining.
#[derive(Debug, Clone)]
pub struct GranularityMinerConfig {
    /// Minimum fraction of a predicate's objects that must share one class.
    pub min_dominance: f64,
    /// Minimum number of `via` links between the two classes.
    pub min_via_links: usize,
}

impl Default for GranularityMinerConfig {
    fn default() -> Self {
        GranularityMinerConfig {
            min_dominance: 0.6,
            min_via_links: 2,
        }
    }
}

/// The class of an entity: object of its `type_pred` triple (first one if
/// several).
fn class_of(store: &XkgStore, type_pred: TermId, entity: TermId) -> Option<TermId> {
    store
        .lookup(&SlotPattern::with_sp(entity, type_pred))
        .first()
        .map(|&id| store.triple(id).o)
}

/// Mines granularity rules from `store`.
///
/// For every resource predicate `base` (other than `type_pred` and `via`)
/// whose objects dominantly belong to a class `F`, and every class `C`
/// such that `via` links `F`-instances to `C`-instances, emits the rule
/// lifting `base`-queries from `C` to `F`. The rule weight is the
/// fraction of `F`-side `via` endpoints that land in `C`.
pub fn mine_granularity(
    store: &XkgStore,
    type_pred: TermId,
    via: TermId,
    cfg: &GranularityMinerConfig,
) -> Vec<Rule> {
    let stats = StoreStats::compute(store);

    // Class-pair histogram of the via predicate.
    let mut via_pairs: HashMap<(TermId, TermId), usize> = HashMap::new();
    let mut via_from: HashMap<TermId, usize> = HashMap::new();
    for &id in &store.lookup(&SlotPattern::with_p(via)) {
        let t = store.triple(id);
        let (Some(cs), Some(co)) = (
            class_of(store, type_pred, t.s),
            class_of(store, type_pred, t.o),
        ) else {
            continue;
        };
        *via_pairs.entry((cs, co)).or_insert(0) += 1;
        *via_from.entry(cs).or_insert(0) += 1;
    }

    let mut out = Vec::new();
    for &base in stats.predicates() {
        if base == type_pred || base == via || !base.is_resource() {
            continue;
        }
        // Dominant object class of `base`.
        let mut class_counts: HashMap<TermId, usize> = HashMap::new();
        let mut total = 0usize;
        for &id in &store.lookup(&SlotPattern::with_p(base)) {
            let o = store.triple(id).o;
            if let Some(c) = class_of(store, type_pred, o) {
                *class_counts.entry(c).or_insert(0) += 1;
                total += 1;
            }
        }
        if total == 0 {
            continue;
        }
        let Some((&fine, &count)) = class_counts.iter().max_by_key(|&(c, n)| (*n, *c)) else {
            continue;
        };
        if (count as f64) / (total as f64) < cfg.min_dominance {
            continue;
        }
        // Every coarse class reachable from `fine` through `via`.
        for (&(cs, co), &links) in &via_pairs {
            if cs != fine || co == fine || links < cfg.min_via_links {
                continue;
            }
            let weight = links as f64 / via_from[&cs] as f64;
            let spec = GranularitySpec {
                base,
                via,
                type_pred,
                fine_class: fine,
                coarse_class: co,
                weight,
            };
            let label = format!(
                "?x {base} ?y ; ?y type {coarse} => ?x {base} ?z ; ?z type {fine} ; ?z {via} ?y",
                base = store.display_term(base),
                coarse = store.display_term(co),
                fine = store.display_term(fine),
                via = store.display_term(via),
            );
            out.push(granularity_rule(&spec, label));
        }
    }
    out.sort_by(|a, b| {
        b.weight
            .total_cmp(&a.weight)
            .then_with(|| a.label.cmp(&b.label))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleKind;
    use trinit_xkg::XkgBuilder;

    /// KG: people born in cities; cities located in countries.
    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        for (p, city) in [("a", "Ulm"), ("b", "Ulm"), ("c", "Velmora")] {
            b.add_kg_resources(p, "bornIn", city);
            b.add_kg_resources(p, "type", "person");
        }
        for (city, country) in [("Ulm", "Germany"), ("Velmora", "Trastenia")] {
            b.add_kg_resources(city, "locatedIn", country);
            b.add_kg_resources(city, "type", "city");
            b.add_kg_resources(country, "type", "country");
        }
        b.build()
    }

    #[test]
    fn mines_the_paper_rule_1() {
        let store = store();
        let type_pred = store.resource("type").unwrap();
        let via = store.resource("locatedIn").unwrap();
        let rules = mine_granularity(&store, type_pred, via, &GranularityMinerConfig::default());
        assert_eq!(rules.len(), 1, "exactly the bornIn rule: {rules:?}");
        let rule = &rules[0];
        assert_eq!(rule.kind, RuleKind::Structural);
        assert_eq!(rule.lhs.len(), 2);
        assert_eq!(rule.rhs.len(), 3);
        assert_eq!(rule.fresh_vars().len(), 1);
        // All via links go city → country, so the weight is 1.0.
        assert!((rule.weight - 1.0).abs() < 1e-9);
        assert!(rule.label.contains("bornIn"));
        assert!(rule.label.contains("country"));
    }

    #[test]
    fn explicit_spec_builds_rule() {
        let store = store();
        let spec = GranularitySpec {
            base: store.resource("bornIn").unwrap(),
            via: store.resource("locatedIn").unwrap(),
            type_pred: store.resource("type").unwrap(),
            fine_class: store.resource("city").unwrap(),
            coarse_class: store.resource("country").unwrap(),
            weight: 1.0,
        };
        let rule = granularity_rule(&spec, "rule1");
        assert_eq!(rule.label, "rule1");
        assert_eq!(rule.provenance, RuleProvenance::Ontology);
    }

    #[test]
    fn dominance_threshold_filters() {
        let store = store();
        let type_pred = store.resource("type").unwrap();
        let via = store.resource("locatedIn").unwrap();
        let rules = mine_granularity(
            &store,
            type_pred,
            via,
            &GranularityMinerConfig {
                min_dominance: 1.01,
                min_via_links: 1,
            },
        );
        assert!(rules.is_empty());
    }

    #[test]
    fn min_via_links_filters() {
        let store = store();
        let type_pred = store.resource("type").unwrap();
        let via = store.resource("locatedIn").unwrap();
        let rules = mine_granularity(
            &store,
            type_pred,
            via,
            &GranularityMinerConfig {
                min_dominance: 0.6,
                min_via_links: 99,
            },
        );
        assert!(rules.is_empty());
    }
}
