//! Relaxation rules.
//!
//! A relaxation rule (paper §3) "replaces a set of triple patterns in the
//! original query with a set of new patterns", carrying a weight
//! `w ∈ [0, 1]` that reflects the semantic similarity between the two
//! sides. Rule sides are written over *rule variables* ([`RVar`]), which
//! unify with whatever the query has in the corresponding slots; rule
//! variables appearing only on the right-hand side introduce fresh query
//! variables (e.g. the intermediate city `?z` of the paper's rule 1).

use std::fmt;

use trinit_xkg::TermId;

/// A rule-scoped variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RVar(pub u8);

impl fmt::Display for RVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?r{}", self.0)
    }
}

/// One slot of a rule template: a constant term or a rule variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TTerm {
    /// A concrete term that must match the query exactly.
    Const(TermId),
    /// A rule variable that unifies with anything (consistently).
    Var(RVar),
}

/// A triple-pattern template over [`TTerm`] slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Template {
    /// Subject slot.
    pub s: TTerm,
    /// Predicate slot.
    pub p: TTerm,
    /// Object slot.
    pub o: TTerm,
}

impl Template {
    /// Creates a template.
    pub fn new(s: TTerm, p: TTerm, o: TTerm) -> Template {
        Template { s, p, o }
    }

    /// The slots as an array in S, P, O order.
    #[inline]
    pub fn slots(&self) -> [TTerm; 3] {
        [self.s, self.p, self.o]
    }

    /// All rule variables in the template.
    pub fn vars(&self) -> impl Iterator<Item = RVar> + '_ {
        self.slots().into_iter().filter_map(|t| match t {
            TTerm::Var(v) => Some(v),
            TTerm::Const(_) => None,
        })
    }
}

/// Classification of a rule's rewriting shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Replaces one predicate by another, same argument order
    /// (paper rules 3, 4).
    PredicateRewrite,
    /// Replaces one predicate by another with swapped arguments
    /// (paper rule 2: `hasAdvisor` ↔ `hasStudent`).
    Inversion,
    /// Rewrites a set of patterns into a different set, possibly with
    /// fresh variables (paper rule 1).
    Structural,
}

/// Where a rule came from — surfaced in answer explanations (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleProvenance {
    /// Mined from XKG predicate co-occurrence (the paper's
    /// `w(p1→p2) = |args(p1)∩args(p2)| / |args(p2)|`).
    MinedCooccurrence,
    /// Mined from inverted co-occurrence.
    MinedInversion,
    /// Generated from type/granularity knowledge.
    Ontology,
    /// From a paraphrase repository.
    Paraphrase,
    /// Supplied interactively by the user.
    UserDefined,
}

/// Identifier of a rule within a [`crate::ruleset::RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

/// A complete relaxation rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Human-readable description.
    pub label: String,
    /// Patterns the rule consumes.
    pub lhs: Vec<Template>,
    /// Patterns the rule produces.
    pub rhs: Vec<Template>,
    /// Semantic-similarity weight in `[0, 1]`.
    pub weight: f64,
    /// Rewriting shape.
    pub kind: RuleKind,
    /// Origin of the rule.
    pub provenance: RuleProvenance,
}

impl Rule {
    /// Builds a predicate-rewrite rule `?x p1 ?y → ?x p2 ?y`.
    pub fn predicate_rewrite(
        label: impl Into<String>,
        p1: TermId,
        p2: TermId,
        weight: f64,
        provenance: RuleProvenance,
    ) -> Rule {
        let (x, y) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)));
        Rule {
            label: label.into(),
            lhs: vec![Template::new(x, TTerm::Const(p1), y)],
            rhs: vec![Template::new(x, TTerm::Const(p2), y)],
            weight: weight.clamp(0.0, 1.0),
            kind: RuleKind::PredicateRewrite,
            provenance,
        }
    }

    /// Builds an inversion rule `?x p1 ?y → ?y p2 ?x`.
    pub fn inversion(
        label: impl Into<String>,
        p1: TermId,
        p2: TermId,
        weight: f64,
        provenance: RuleProvenance,
    ) -> Rule {
        let (x, y) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)));
        Rule {
            label: label.into(),
            lhs: vec![Template::new(x, TTerm::Const(p1), y)],
            rhs: vec![Template::new(y, TTerm::Const(p2), x)],
            weight: weight.clamp(0.0, 1.0),
            kind: RuleKind::Inversion,
            provenance,
        }
    }

    /// Builds a general structural rule from explicit templates.
    pub fn structural(
        label: impl Into<String>,
        lhs: Vec<Template>,
        rhs: Vec<Template>,
        weight: f64,
        provenance: RuleProvenance,
    ) -> Rule {
        Rule {
            label: label.into(),
            lhs,
            rhs,
            weight: weight.clamp(0.0, 1.0),
            kind: RuleKind::Structural,
            provenance,
        }
    }

    /// True if the rule consumes exactly one pattern with a constant
    /// predicate — such rules can be merged incrementally per pattern
    /// during top-k processing (§4).
    pub fn is_single_pattern(&self) -> bool {
        self.lhs.len() == 1
    }

    /// The constant predicate of a single-pattern rule's LHS, if any.
    pub fn lhs_predicate(&self) -> Option<TermId> {
        match self.lhs.as_slice() {
            [t] => match t.p {
                TTerm::Const(p) => Some(p),
                TTerm::Var(_) => None,
            },
            _ => None,
        }
    }

    /// Rule variables appearing only in the RHS (fresh variables that
    /// application must instantiate as new query variables).
    pub fn fresh_vars(&self) -> Vec<RVar> {
        let mut lhs_vars: Vec<RVar> = self.lhs.iter().flat_map(Template::vars).collect();
        lhs_vars.sort_unstable();
        lhs_vars.dedup();
        let mut fresh: Vec<RVar> = self
            .rhs
            .iter()
            .flat_map(Template::vars)
            .filter(|v| !lhs_vars.contains(v))
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::TermKind;

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn predicate_rewrite_shape() {
        let r = Rule::predicate_rewrite("p1->p2", tid(1), tid(2), 0.8, RuleProvenance::Paraphrase);
        assert!(r.is_single_pattern());
        assert_eq!(r.lhs_predicate(), Some(tid(1)));
        assert_eq!(r.kind, RuleKind::PredicateRewrite);
        assert!(r.fresh_vars().is_empty());
        // Argument order preserved.
        assert_eq!(r.lhs[0].s, r.rhs[0].s);
        assert_eq!(r.lhs[0].o, r.rhs[0].o);
    }

    #[test]
    fn inversion_swaps_arguments() {
        let r = Rule::inversion("advisor", tid(1), tid(2), 1.0, RuleProvenance::MinedInversion);
        assert_eq!(r.lhs[0].s, r.rhs[0].o);
        assert_eq!(r.lhs[0].o, r.rhs[0].s);
        assert_eq!(r.lhs_predicate(), Some(tid(1)));
    }

    #[test]
    fn weight_is_clamped() {
        let r = Rule::predicate_rewrite("w", tid(1), tid(2), 1.7, RuleProvenance::UserDefined);
        assert_eq!(r.weight, 1.0);
        let r = Rule::predicate_rewrite("w", tid(1), tid(2), -0.3, RuleProvenance::UserDefined);
        assert_eq!(r.weight, 0.0);
    }

    #[test]
    fn fresh_vars_of_granularity_rule() {
        // ?x bornIn ?y ; ?y type country → ?x bornIn ?z ; ?z type city ;
        // ?z locatedIn ?y  (paper rule 1; ?z is fresh)
        let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));
        let born = TTerm::Const(tid(1));
        let typ = TTerm::Const(tid(2));
        let country = TTerm::Const(tid(3));
        let city = TTerm::Const(tid(4));
        let located = TTerm::Const(tid(5));
        let r = Rule::structural(
            "born-in-country",
            vec![Template::new(x, born, y), Template::new(y, typ, country)],
            vec![
                Template::new(x, born, z),
                Template::new(z, typ, city),
                Template::new(z, located, y),
            ],
            1.0,
            RuleProvenance::Ontology,
        );
        assert_eq!(r.fresh_vars(), vec![RVar(2)]);
        assert!(!r.is_single_pattern());
        assert_eq!(r.lhs_predicate(), None);
    }
}
