//! Mining relaxation rules from the XKG itself (paper §3).
//!
//! "We generate a rule rewriting the XKG predicate p1 to the XKG predicate
//! p2 and assign it the weight `w(p1 ↦ p2) = |args(p1) ∩ args(p2)| /
//! |args(p2)|`, where `args(p)` is the set of subject-object pairs
//! connected by p in the XKG."
//!
//! The miner computes exactly this, for every predicate pair with a
//! non-trivial argument overlap, plus *inversion* rules from overlap with
//! the reversed argument sets (recovering `hasAdvisor ↦ hasStudent`-style
//! rules, paper rule 2).

use std::collections::HashMap;

use trinit_xkg::{args_pairs, StoreStats, TermId, XkgStore};

use crate::rule::{Rule, RuleProvenance};

/// Configuration of the co-occurrence miner.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum `|args(p1) ∩ args(p2)|` for a rule to be emitted.
    pub min_overlap: usize,
    /// Minimum rule weight.
    pub min_weight: f64,
    /// Also mine inversion rules (overlap with reversed args).
    pub inversions: bool,
    /// Hard cap on emitted rules (highest-weight first).
    pub max_rules: usize,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            min_overlap: 2,
            min_weight: 0.1,
            inversions: true,
            max_rules: 10_000,
        }
    }
}

/// A mined rule with its supporting statistics (useful for reports and
/// the paper's Figure 4-style rule tables).
#[derive(Debug, Clone)]
pub struct MinedRule {
    /// The rule itself.
    pub rule: Rule,
    /// Source predicate (query side).
    pub p1: TermId,
    /// Target predicate (rewritten side).
    pub p2: TermId,
    /// `|args(p1) ∩ args(p2)|` (reversed for inversions).
    pub overlap: usize,
    /// `|args(p2)|`.
    pub args_p2: usize,
}

fn rule_label(store: &XkgStore, p1: TermId, p2: TermId, inverted: bool) -> String {
    let name = |t: TermId| store.display_term(t);
    if inverted {
        format!("?x {} ?y => ?y {} ?x", name(p1), name(p2))
    } else {
        format!("?x {} ?y => ?x {} ?y", name(p1), name(p2))
    }
}

/// Mines predicate-rewrite (and optionally inversion) rules from `store`.
///
/// Results are sorted by descending weight, ties broken by predicate ids
/// for determinism.
pub fn mine_cooccurrence(store: &XkgStore, cfg: &MinerConfig) -> Vec<MinedRule> {
    let stats = StoreStats::compute(store);
    let predicates = stats.predicates();

    // args(p) for every predicate, plus |args(p)|.
    let mut args: HashMap<TermId, Vec<(TermId, TermId)>> = HashMap::new();
    for &p in predicates {
        args.insert(p, args_pairs(store, p));
    }

    // Invert: (s,o) pair → predicates containing it.
    let mut by_pair: HashMap<(TermId, TermId), Vec<TermId>> = HashMap::new();
    for (&p, pairs) in &args {
        for &pair in pairs {
            by_pair.entry(pair).or_default().push(p);
        }
    }

    // Count forward overlaps |args(p1) ∩ args(p2)|.
    let mut overlap: HashMap<(TermId, TermId), usize> = HashMap::new();
    for preds in by_pair.values() {
        for &a in preds {
            for &b in preds {
                if a != b {
                    *overlap.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }

    // Count inverted overlaps |args(p1) ∩ swap(args(p2))|.
    let mut inv_overlap: HashMap<(TermId, TermId), usize> = HashMap::new();
    if cfg.inversions {
        for (&(s, o), preds) in &by_pair {
            if let Some(rev_preds) = by_pair.get(&(o, s)) {
                for &a in preds {
                    for &b in rev_preds {
                        if a != b {
                            *inv_overlap.entry((a, b)).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
    }

    let mut out: Vec<MinedRule> = Vec::new();
    for (&(p1, p2), &count) in &overlap {
        if count < cfg.min_overlap {
            continue;
        }
        let args_p2 = args[&p2].len();
        let weight = count as f64 / args_p2 as f64;
        if weight < cfg.min_weight {
            continue;
        }
        out.push(MinedRule {
            rule: Rule::predicate_rewrite(
                rule_label(store, p1, p2, false),
                p1,
                p2,
                weight,
                RuleProvenance::MinedCooccurrence,
            ),
            p1,
            p2,
            overlap: count,
            args_p2,
        });
    }
    for (&(p1, p2), &count) in &inv_overlap {
        if count < cfg.min_overlap {
            continue;
        }
        let args_p2 = args[&p2].len();
        let weight = count as f64 / args_p2 as f64;
        if weight < cfg.min_weight {
            continue;
        }
        out.push(MinedRule {
            rule: Rule::inversion(
                rule_label(store, p1, p2, true),
                p1,
                p2,
                weight,
                RuleProvenance::MinedInversion,
            ),
            p1,
            p2,
            overlap: count,
            args_p2,
        });
    }

    out.sort_by(|a, b| {
        b.rule
            .weight
            .total_cmp(&a.rule.weight)
            .then_with(|| (a.p1, a.p2).cmp(&(b.p1, b.p2)))
            .then_with(|| (a.rule.kind as u8).cmp(&(b.rule.kind as u8)))
    });
    out.truncate(cfg.max_rules);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::RuleKind;
    use trinit_xkg::XkgBuilder;

    /// Builds a store where `affiliation` and the token `'worked at'`
    /// share argument pairs, and `hasStudent` appears reversed as
    /// `'studied under'`.
    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        // affiliation: (a,U1), (b,U1), (c,U2), (d,U2)
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2"), ("d", "U2")] {
            b.add_kg_resources(s, "affiliation", o);
        }
        // 'worked at': (a,U1), (b,U1), (c,U2) — 3 of 4 overlap, plus one extra.
        let src = b.intern_source("d0");
        let worked = b.dict_mut().token("worked at");
        for (s, o) in [("a", "U1"), ("b", "U1"), ("c", "U2"), ("e", "U3")] {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, worked, o, 0.8, src);
        }
        // hasStudent: (adv1, st1), (adv2, st2)
        b.add_kg_resources("adv1", "hasStudent", "st1");
        b.add_kg_resources("adv2", "hasStudent", "st2");
        // 'studied under': (st1, adv1), (st2, adv2) — exact inversion.
        let studied = b.dict_mut().token("studied under");
        for (s, o) in [("st1", "adv1"), ("st2", "adv2")] {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, studied, o, 0.7, src);
        }
        b.build()
    }

    #[test]
    fn weight_formula_matches_paper() {
        let store = store();
        let mined = mine_cooccurrence(&store, &MinerConfig::default());
        let aff = store.resource("affiliation").unwrap();
        let worked = store.token("worked at").unwrap();
        // w(affiliation → 'worked at') = |∩| / |args('worked at')| = 3/4.
        let fwd = mined
            .iter()
            .find(|m| m.p1 == aff && m.p2 == worked && m.rule.kind == RuleKind::PredicateRewrite)
            .expect("forward rule mined");
        assert_eq!(fwd.overlap, 3);
        assert_eq!(fwd.args_p2, 4);
        assert!((fwd.rule.weight - 0.75).abs() < 1e-9);
        // And the reverse direction: w('worked at' → affiliation) = 3/4.
        let rev = mined
            .iter()
            .find(|m| m.p1 == worked && m.p2 == aff && m.rule.kind == RuleKind::PredicateRewrite)
            .expect("reverse rule mined");
        assert!((rev.rule.weight - 0.75).abs() < 1e-9);
    }

    #[test]
    fn inversion_rules_are_mined() {
        let store = store();
        let mined = mine_cooccurrence(&store, &MinerConfig::default());
        let has_student = store.resource("hasStudent").unwrap();
        let studied = store.token("studied under").unwrap();
        let inv = mined
            .iter()
            .find(|m| m.p1 == studied && m.p2 == has_student && m.rule.kind == RuleKind::Inversion)
            .expect("inversion rule mined");
        // All 2 pairs of hasStudent appear reversed under 'studied under'.
        assert!((inv.rule.weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_overlap_filters() {
        let store = store();
        let mined = mine_cooccurrence(
            &store,
            &MinerConfig {
                min_overlap: 4,
                ..Default::default()
            },
        );
        assert!(mined.is_empty());
    }

    #[test]
    fn inversions_can_be_disabled() {
        let store = store();
        let mined = mine_cooccurrence(
            &store,
            &MinerConfig {
                inversions: false,
                ..Default::default()
            },
        );
        assert!(mined.iter().all(|m| m.rule.kind != RuleKind::Inversion));
    }

    #[test]
    fn results_are_sorted_by_weight() {
        let store = store();
        let mined = mine_cooccurrence(&store, &MinerConfig::default());
        assert!(mined
            .windows(2)
            .all(|w| w[0].rule.weight >= w[1].rule.weight));
    }

    #[test]
    fn empty_store_mines_nothing() {
        let store = XkgBuilder::new().build();
        assert!(mine_cooccurrence(&store, &MinerConfig::default()).is_empty());
    }

    #[test]
    fn max_rules_caps_output() {
        let store = store();
        let mined = mine_cooccurrence(
            &store,
            &MinerConfig {
                max_rules: 1,
                min_overlap: 1,
                min_weight: 0.0,
                inversions: true,
            },
        );
        assert_eq!(mined.len(), 1);
    }
}
