//! Property tests for query processing.
//!
//! The headline property: **incremental top-k returns exactly the answers
//! and scores of exhaustive full-expansion evaluation** on arbitrary
//! stores, queries, and predicate-rewrite rule sets — the invariant that
//! makes the paper's efficiency optimization safe.

use proptest::prelude::*;

use trinit_query::exec::{expand, topk};
use trinit_query::{Query, TopkConfig};
use trinit_relax::{ExpandOptions, QPattern, QTerm, Rule, RuleProvenance, RuleSet, VarId};
use trinit_xkg::{Provenance, SourceId, TermId, TermKind, Triple, XkgBuilder, XkgStore};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

/// A random store over a small universe: up to `n` triples with random
/// confidences and supports.
fn store_strategy(universe: u32, max_triples: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, f32, u8)>> {
    proptest::collection::vec(
        (
            0..universe,
            0..universe,
            0..universe,
            0.05f32..1.0,
            0u8..4,
        ),
        1..max_triples,
    )
}

fn build_store(rows: &[(u32, u32, u32, f32, u8)]) -> XkgStore {
    let mut b = XkgBuilder::new();
    for &(s, p, o, conf, support) in rows {
        let mut prov = Provenance::extraction(conf, SourceId(0));
        prov.support = u32::from(support) + 1;
        b.add(Triple::new(tid(s), tid(p), tid(o)), prov);
    }
    b.build()
}

fn query_from(patterns: Vec<QPattern>, k: usize) -> Query {
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);
    Query {
        patterns,
        projection: Vec::new(),
        k,
        var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
        unknown_terms: Vec::new(),
    }
}

fn qterm(vars: u16, universe: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn pattern_strategy(vars: u16, universe: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, universe),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, universe),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rules_strategy(universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0.15f64..1.0, proptest::bool::ANY).prop_map(
            |(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            },
        ),
        0..4,
    )
}

/// Rules whose RHS predicates never occur as an LHS predicate (LHS drawn
/// from `[0, lhs_universe)`, RHS from `[lhs_universe, universe)`), so no
/// rule can chain on another's output. Under such sets, full expansion
/// with `max_depth ≥ #patterns` reaches exactly the same rewritings as
/// per-pattern incremental merging with `chain_depth ≥ 1` — which makes
/// multi-pattern topk ≡ expansion a well-defined property.
fn nonchainable_rules_strategy(lhs_universe: u32, universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (
            0..lhs_universe,
            lhs_universe..universe,
            0.15f64..1.0,
            proptest::bool::ANY,
        )
            .prop_map(|(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            }),
        0..4,
    )
}

/// Asserts `got` matches `want` up to membership of the trailing
/// tied-score group: scores must agree pairwise everywhere, keys
/// wherever the score is strictly above the boundary score. (When the
/// k-cut lands inside a group of equal-scored answers, both engines keep
/// *some* k members of the group; which ones is tie-break detail.)
fn assert_answers_equivalent(got: &[trinit_query::Answer], want: &[trinit_query::Answer]) {
    assert_eq!(got.len(), want.len(), "answer counts differ");
    let Some(last) = got.last() else { return };
    let boundary = last.score;
    for (a, b) in got.iter().zip(want) {
        assert!(
            (a.score - b.score).abs() < 1e-9,
            "scores differ: {} vs {}",
            a.score,
            b.score
        );
        if (a.score - boundary).abs() > 1e-9 {
            assert_eq!(&a.key, &b.key, "answer order differs above the tie boundary");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental top-k ≡ full expansion on single-pattern queries:
    /// same answer keys, same scores, same order. (For multi-pattern
    /// queries the two engines budget rule applications differently —
    /// per pattern vs per sequence — so exact equality is only defined
    /// for one pattern; the join machinery is covered by
    /// `topk_equals_full_expansion_without_rules` and the unit tests.)
    #[test]
    fn topk_equals_full_expansion(
        rows in store_strategy(5, 40),
        pattern in pattern_strategy(3, 5),
        rules in rules_strategy(5),
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q1 = query_from(vec![pattern], 1000);
        let q2 = query_from(vec![pattern], 1000);
        let (inc, _) = topk::run(
            &store,
            &q1,
            &set,
            &TopkConfig {
                chain_depth: 2,
                structural_depth: 0,
                min_weight: 0.0,
                max_alternatives: 256,
                ..TopkConfig::default()
            },
        );
        let (full, _) = expand::run(
            &store,
            &q2,
            &set,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 4096,
            },
        );
        prop_assert_eq!(inc.len(), full.len(), "answer counts differ");
        for (a, b) in inc.iter().zip(&full) {
            prop_assert_eq!(&a.key, &b.key, "answer order differs");
            prop_assert!((a.score - b.score).abs() < 1e-9, "scores differ: {} vs {}", a.score, b.score);
        }
    }

    /// The hash-partitioned rank join ≡ full expansion on multi-pattern
    /// *join* queries with relaxation, for random stores, rule sets, and
    /// k. Rule sets are non-chainable so both engines reach the same
    /// rewriting space (see [`nonchainable_rules_strategy`]); beyond
    /// that, the partitioned combine must produce exactly the answers a
    /// nested-loop evaluation of every rewriting produces.
    #[test]
    fn partitioned_join_equals_full_expansion(
        rows in store_strategy(6, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 6), 1..4),
        rules in nonchainable_rules_strategy(3, 6),
        k in 1usize..12,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q1 = query_from(patterns.clone(), k);
        let q2 = query_from(patterns, k);
        let (inc, _) = topk::run(
            &store,
            &q1,
            &set,
            &TopkConfig {
                structural_depth: 0,
                min_weight: 0.0,
                ..TopkConfig::default()
            },
        );
        let (full, _) = expand::run(
            &store,
            &q2,
            &set,
            &ExpandOptions {
                max_depth: 4,
                min_weight: 0.0,
                max_rewritings: 4096,
            },
        );
        assert_answers_equivalent(&inc, &full);
    }

    /// Remaining-mass/head-bound threshold tightening never changes
    /// answers — it only reduces sorted-access work. The tightened run
    /// must report pulls ≤ the untightened run's.
    #[test]
    fn tightened_threshold_preserves_answers_and_reduces_pulls(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q1 = query_from(patterns.clone(), k);
        let q2 = query_from(patterns, k);
        let (tight, m_tight) = topk::run(
            &store,
            &q1,
            &set,
            &TopkConfig {
                tighten_threshold: true,
                ..TopkConfig::default()
            },
        );
        let (loose, m_loose) = topk::run(
            &store,
            &q2,
            &set,
            &TopkConfig {
                tighten_threshold: false,
                ..TopkConfig::default()
            },
        );
        assert_answers_equivalent(&tight, &loose);
        prop_assert!(
            m_tight.pulls <= m_loose.pulls,
            "tightening increased pulls: {} > {}",
            m_tight.pulls,
            m_loose.pulls
        );
        prop_assert_eq!(m_loose.early_cutoffs, 0, "untightened path must not cut off");
    }

    /// A store-level posting cache is invisible in answers: running the
    /// same query repeatedly through one shared cache returns exactly
    /// what the uncached engine returns, every time.
    #[test]
    fn shared_posting_cache_preserves_answers(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        use trinit_query::SharedPostingCache;
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let (plain, m_plain) = topk::run(&store, &query_from(patterns.clone(), k), &set, &cfg);
        let cache = SharedPostingCache::new(64);
        let (cold, m_cold) = topk::run_cached(&store, &query_from(patterns.clone(), k), &set, &cfg, Some(&cache));
        let (warm, m_warm) = topk::run_cached(&store, &query_from(patterns, k), &set, &cfg, Some(&cache));
        // Pull-count parity: caching changes where lists come from, never
        // how far sorted access walks — and the persistently tracked
        // k-th score must drive the threshold identically on every run.
        prop_assert_eq!(m_plain.pulls, m_cold.pulls, "cold run diverged");
        prop_assert_eq!(m_cold.pulls, m_warm.pulls, "warm run diverged");
        // The precomputed index covers every shape: nothing may sort.
        prop_assert_eq!(m_plain.posting_sorts, 0);
        prop_assert_eq!(plain.len(), cold.len());
        prop_assert_eq!(cold.len(), warm.len());
        for ((a, b), c) in plain.iter().zip(&cold).zip(&warm) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(&b.key, &c.key);
            prop_assert!((a.score - b.score).abs() < 1e-12);
            prop_assert!((b.score - c.score).abs() < 1e-12);
        }
        // Accounting is exact: the execution-level L1 shields the shared
        // cache within a run, so the cold run never hits it — every
        // shared-cache hit the cache counted belongs to the warm run's
        // metrics.
        prop_assert_eq!(cache.stats().hits, m_warm.shared_cache_hits);
    }

    /// With no rules at all, both engines reduce to exact evaluation and
    /// must agree on arbitrary multi-pattern (join) queries.
    #[test]
    fn topk_equals_full_expansion_without_rules(
        rows in store_strategy(4, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 4), 1..4),
    ) {
        let store = build_store(&rows);
        let set = RuleSet::new();
        let q1 = query_from(patterns.clone(), 1000);
        let q2 = query_from(patterns, 1000);
        let (inc, _) = topk::run(&store, &q1, &set, &TopkConfig::default());
        let (full, _) = expand::run(&store, &q2, &set, &ExpandOptions::default());
        prop_assert_eq!(inc.len(), full.len(), "answer counts differ");
        for (a, b) in inc.iter().zip(&full) {
            prop_assert_eq!(&a.key, &b.key, "answer order differs");
            prop_assert!((a.score - b.score).abs() < 1e-9, "scores differ");
        }
    }

    /// Returned rankings are sorted, bounded by k, and deduplicated on
    /// the projected key.
    #[test]
    fn topk_output_contract(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q = query_from(patterns, k);
        let (answers, _) = topk::run(&store, &q, &set, &TopkConfig::default());
        prop_assert!(answers.len() <= k);
        prop_assert!(answers.windows(2).all(|w| w[0].score >= w[1].score));
        let mut keys: Vec<_> = answers.iter().map(|a| a.key.clone()).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), answers.len(), "duplicate projected keys");
        for a in &answers {
            prop_assert!(a.score.is_finite());
            prop_assert!(a.score <= 1e-9, "log-prob must be non-positive");
        }
    }

    /// The threshold never cuts a true top-k answer: running with k and
    /// with k'=k+5 agrees on the first k answers.
    #[test]
    fn topk_prefix_stability(
        rows in store_strategy(4, 30),
        patterns in proptest::collection::vec(pattern_strategy(2, 4), 1..3),
        rules in rules_strategy(4),
        k in 1usize..5,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let qa = query_from(patterns.clone(), k);
        let qb = query_from(patterns, k + 5);
        let (small, _) = topk::run(&store, &qa, &set, &TopkConfig::default());
        let (large, _) = topk::run(&store, &qb, &set, &TopkConfig::default());
        for (a, b) in small.iter().zip(large.iter()) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    /// Exact evaluation is invariant under pattern order (score and
    /// answer-set equality).
    #[test]
    fn exact_is_pattern_order_invariant(
        rows in store_strategy(4, 30),
        mut patterns in proptest::collection::vec(pattern_strategy(3, 4), 2..4),
    ) {
        use trinit_query::exec::exact;
        use trinit_query::ExecMetrics;
        let store = build_store(&rows);
        let q1 = query_from(patterns.clone(), 1000);
        patterns.reverse();
        let q2 = query_from(patterns, 1000);
        let mut m = ExecMetrics::default();
        let a1 = exact::evaluate(&store, &q1, &q1.patterns, &[], 1.0, &mut m);
        let a2 = exact::evaluate(&store, &q2, &q2.patterns, &[], 1.0, &mut m);
        // The projection order differs between the two queries (variables
        // are numbered by first occurrence), so normalize keys by VarId.
        let normalize = |answers: &[trinit_query::Answer]| {
            let mut keys: Vec<Vec<(VarId, Option<TermId>)>> = answers
                .iter()
                .map(|a| {
                    let mut k = a.key.clone();
                    k.sort_by_key(|(v, _)| *v);
                    k
                })
                .collect();
            keys.sort();
            keys.dedup();
            keys
        };
        prop_assert_eq!(normalize(&a1), normalize(&a2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ε-approximate mode's guarantee, on arbitrary stores, join
    /// queries, and rule sets: every returned answer carries its exact
    /// score, pulls never exceed the exact engine's, and rank-wise the
    /// approximate ranking is within ε of the exact one in probability
    /// space — `prob(approx[r]) ≥ prob(exact[r]) − ε` for every rank r.
    #[test]
    fn epsilon_approximate_is_within_eps_of_exact(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
        eps_pick in proptest::bool::ANY,
    ) {
        let eps = if eps_pick { 0.05 } else { 0.01 };
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let (exact, m_exact) = topk::run(&store, &query_from(patterns.clone(), k), &set, &cfg);
        let (approx, m_approx) = topk::run(
            &store,
            &query_from(patterns, k),
            &set,
            &TopkConfig { epsilon: eps, ..cfg },
        );
        prop_assert!(
            m_approx.pulls <= m_exact.pulls,
            "ε mode must never pull more: {} > {}",
            m_approx.pulls,
            m_exact.pulls
        );
        for (r, e) in exact.iter().enumerate() {
            let pe = e.score.exp();
            let pa = approx.get(r).map_or(0.0, |a| a.score.exp());
            prop_assert!(
                pa >= pe - eps - 1e-9,
                "rank {}: approximate {} not within ε={} of exact {}",
                r, pa, eps, pe
            );
        }
    }

    /// ε = 0 *is* the exact engine: identical answers and identical
    /// pull counts (the approximate criterion compares against ln 0 =
    /// −∞ and can never fire), with zero approx cutoffs.
    #[test]
    fn epsilon_zero_is_pull_count_identical_to_exact(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let cfg = TopkConfig::default();
        let (exact, m_exact) = topk::run(&store, &query_from(patterns.clone(), k), &set, &cfg);
        let (eps0, m_eps0) = topk::run(
            &store,
            &query_from(patterns, k),
            &set,
            &TopkConfig { epsilon: 0.0, ..cfg },
        );
        prop_assert_eq!(exact.len(), eps0.len());
        for (a, b) in exact.iter().zip(&eps0) {
            prop_assert_eq!(&a.key, &b.key, "ε=0 changed an answer key");
            prop_assert_eq!(a.score, b.score, "ε=0 changed a score bit pattern");
        }
        prop_assert_eq!(m_exact.pulls, m_eps0.pulls, "ε=0 changed the pull count");
        prop_assert_eq!(m_eps0.approx_cutoffs, 0);
        prop_assert_eq!(m_exact.approx_cutoffs, 0);
    }
}
