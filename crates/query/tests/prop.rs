//! Property tests for query processing.
//!
//! The headline property: **incremental top-k returns exactly the answers
//! and scores of exhaustive full-expansion evaluation** on arbitrary
//! stores, queries, and predicate-rewrite rule sets — the invariant that
//! makes the paper's efficiency optimization safe.

use proptest::prelude::*;

use trinit_query::exec::{expand, topk};
use trinit_query::{Query, TopkConfig};
use trinit_relax::{ExpandOptions, QPattern, QTerm, Rule, RuleProvenance, RuleSet, VarId};
use trinit_xkg::{Provenance, SourceId, TermId, TermKind, Triple, XkgBuilder, XkgStore};

fn tid(i: u32) -> TermId {
    TermId::new(TermKind::Resource, i)
}

/// A random store over a small universe: up to `n` triples with random
/// confidences and supports.
fn store_strategy(universe: u32, max_triples: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, f32, u8)>> {
    proptest::collection::vec(
        (
            0..universe,
            0..universe,
            0..universe,
            0.05f32..1.0,
            0u8..4,
        ),
        1..max_triples,
    )
}

fn build_store(rows: &[(u32, u32, u32, f32, u8)]) -> XkgStore {
    let mut b = XkgBuilder::new();
    for &(s, p, o, conf, support) in rows {
        let mut prov = Provenance::extraction(conf, SourceId(0));
        prov.support = u32::from(support) + 1;
        b.add(Triple::new(tid(s), tid(p), tid(o)), prov);
    }
    b.build()
}

fn query_from(patterns: Vec<QPattern>, k: usize) -> Query {
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);
    Query {
        patterns,
        projection: Vec::new(),
        k,
        var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
        unknown_terms: Vec::new(),
    }
}

fn qterm(vars: u16, universe: u32) -> impl Strategy<Value = QTerm> {
    prop_oneof![
        (0..vars).prop_map(|v| QTerm::Var(VarId(v))),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
    ]
}

fn pattern_strategy(vars: u16, universe: u32) -> impl Strategy<Value = QPattern> {
    (
        qterm(vars, universe),
        (0..universe).prop_map(|t| QTerm::Term(tid(t))),
        qterm(vars, universe),
    )
        .prop_map(|(s, p, o)| QPattern::new(s, p, o))
}

fn rules_strategy(universe: u32) -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(
        (0..universe, 0..universe, 0.15f64..1.0, proptest::bool::ANY).prop_map(
            |(p1, p2, w, inv)| {
                if inv {
                    Rule::inversion("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                } else {
                    Rule::predicate_rewrite("r", tid(p1), tid(p2), w, RuleProvenance::UserDefined)
                }
            },
        ),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental top-k ≡ full expansion on single-pattern queries:
    /// same answer keys, same scores, same order. (For multi-pattern
    /// queries the two engines budget rule applications differently —
    /// per pattern vs per sequence — so exact equality is only defined
    /// for one pattern; the join machinery is covered by
    /// `topk_equals_full_expansion_without_rules` and the unit tests.)
    #[test]
    fn topk_equals_full_expansion(
        rows in store_strategy(5, 40),
        pattern in pattern_strategy(3, 5),
        rules in rules_strategy(5),
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q1 = query_from(vec![pattern], 1000);
        let q2 = query_from(vec![pattern], 1000);
        let (inc, _) = topk::run(
            &store,
            &q1,
            &set,
            &TopkConfig {
                chain_depth: 2,
                structural_depth: 0,
                min_weight: 0.0,
                max_alternatives: 256,
                max_variants: 16,
            },
        );
        let (full, _) = expand::run(
            &store,
            &q2,
            &set,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 4096,
            },
        );
        prop_assert_eq!(inc.len(), full.len(), "answer counts differ");
        for (a, b) in inc.iter().zip(&full) {
            prop_assert_eq!(&a.key, &b.key, "answer order differs");
            prop_assert!((a.score - b.score).abs() < 1e-9, "scores differ: {} vs {}", a.score, b.score);
        }
    }

    /// With no rules at all, both engines reduce to exact evaluation and
    /// must agree on arbitrary multi-pattern (join) queries.
    #[test]
    fn topk_equals_full_expansion_without_rules(
        rows in store_strategy(4, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 4), 1..4),
    ) {
        let store = build_store(&rows);
        let set = RuleSet::new();
        let q1 = query_from(patterns.clone(), 1000);
        let q2 = query_from(patterns, 1000);
        let (inc, _) = topk::run(&store, &q1, &set, &TopkConfig::default());
        let (full, _) = expand::run(&store, &q2, &set, &ExpandOptions::default());
        prop_assert_eq!(inc.len(), full.len(), "answer counts differ");
        for (a, b) in inc.iter().zip(&full) {
            prop_assert_eq!(&a.key, &b.key, "answer order differs");
            prop_assert!((a.score - b.score).abs() < 1e-9, "scores differ");
        }
    }

    /// Returned rankings are sorted, bounded by k, and deduplicated on
    /// the projected key.
    #[test]
    fn topk_output_contract(
        rows in store_strategy(5, 40),
        patterns in proptest::collection::vec(pattern_strategy(3, 5), 1..3),
        rules in rules_strategy(5),
        k in 1usize..8,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let q = query_from(patterns, k);
        let (answers, _) = topk::run(&store, &q, &set, &TopkConfig::default());
        prop_assert!(answers.len() <= k);
        prop_assert!(answers.windows(2).all(|w| w[0].score >= w[1].score));
        let mut keys: Vec<_> = answers.iter().map(|a| a.key.clone()).collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), answers.len(), "duplicate projected keys");
        for a in &answers {
            prop_assert!(a.score.is_finite());
            prop_assert!(a.score <= 1e-9, "log-prob must be non-positive");
        }
    }

    /// The threshold never cuts a true top-k answer: running with k and
    /// with k'=k+5 agrees on the first k answers.
    #[test]
    fn topk_prefix_stability(
        rows in store_strategy(4, 30),
        patterns in proptest::collection::vec(pattern_strategy(2, 4), 1..3),
        rules in rules_strategy(4),
        k in 1usize..5,
    ) {
        let store = build_store(&rows);
        let set: RuleSet = rules.into_iter().collect();
        let qa = query_from(patterns.clone(), k);
        let qb = query_from(patterns, k + 5);
        let (small, _) = topk::run(&store, &qa, &set, &TopkConfig::default());
        let (large, _) = topk::run(&store, &qb, &set, &TopkConfig::default());
        for (a, b) in small.iter().zip(large.iter()) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    /// Exact evaluation is invariant under pattern order (score and
    /// answer-set equality).
    #[test]
    fn exact_is_pattern_order_invariant(
        rows in store_strategy(4, 30),
        mut patterns in proptest::collection::vec(pattern_strategy(3, 4), 2..4),
    ) {
        use trinit_query::exec::exact;
        use trinit_query::ExecMetrics;
        let store = build_store(&rows);
        let q1 = query_from(patterns.clone(), 1000);
        patterns.reverse();
        let q2 = query_from(patterns, 1000);
        let mut m = ExecMetrics::default();
        let a1 = exact::evaluate(&store, &q1, &q1.patterns, &[], 1.0, &mut m);
        let a2 = exact::evaluate(&store, &q2, &q2.patterns, &[], 1.0, &mut m);
        // The projection order differs between the two queries (variables
        // are numbered by first occurrence), so normalize keys by VarId.
        let normalize = |answers: &[trinit_query::Answer]| {
            let mut keys: Vec<Vec<(VarId, Option<TermId>)>> = answers
                .iter()
                .map(|a| {
                    let mut k = a.key.clone();
                    k.sort_by_key(|(v, _)| *v);
                    k
                })
                .collect();
            keys.sort();
            keys.dedup();
            keys
        };
        prop_assert_eq!(normalize(&a1), normalize(&a2));
    }
}
