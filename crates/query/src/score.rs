//! Query-likelihood answer scoring (paper §4).
//!
//! "A triple pattern is viewed as a document that emits triples with
//! certain probabilities. The probability assigned to an SPO fact in
//! response to a triple pattern is proportional to the frequency with
//! which the fact is observed (a tf-like effect) and inversely
//! proportional to the total number of matches for the triple pattern (an
//! idf-like effect corresponding to selectivity)."
//!
//! Concretely: `P(t | q) = weight(t) / Σ_{t' ∈ matches(q)} weight(t')`
//! with `weight(t) = support(t) × confidence(t)`. Relaxed matches are
//! attenuated by the rule weight; an answer's score is the product of its
//! pattern probabilities (kept in log space); the score of an answer is
//! the max over its derivations.
//!
//! [`ScoredMatches`] is a thin view over the store's shared posting
//! machinery ([`trinit_xkg::PostingList`]): patterns without repeated
//! variables delegate directly — predicate-only and unbound shapes are
//! borrowed slices of the build-time posting index, zero allocation and
//! zero sorting per query. Patterns that repeat a variable (`?x p ?x`)
//! filter the shared list and renormalize over the filtered set; since
//! the source is already score-sorted, filtering preserves order and no
//! re-sort happens. A [`PostingCache`] shares materialized lists across
//! an execution, so structural variants touching the same canonical
//! pattern never rebuild its matches.

use std::collections::HashMap;
use std::rc::Rc;

use trinit_relax::{QPattern, QTerm};
use trinit_xkg::{Posting, PostingList, SlotPattern, TripleId, XkgStore};

/// Bitmask of within-pattern variable-equality constraints: bit 0 =
/// subject/predicate, bit 1 = subject/object, bit 2 = predicate/object.
/// Two patterns with equal slot patterns and equal masks have identical
/// match sets and probabilities regardless of variable naming.
fn repetition_mask(pattern: &QPattern) -> u8 {
    let slots = pattern.slots();
    let mut mask = 0u8;
    for (bit, (i, j)) in [(0usize, 1usize), (0, 2), (1, 2)].into_iter().enumerate() {
        if let (QTerm::Var(a), QTerm::Var(b)) = (slots[i], slots[j]) {
            if a == b {
                mask |= 1 << bit;
            }
        }
    }
    mask
}

/// True if `triple` satisfies the variable-equality constraints in `mask`.
#[inline]
fn satisfies_mask(store: &XkgStore, id: TripleId, mask: u8) -> bool {
    if mask == 0 {
        return true;
    }
    let t = store.triple(id);
    (mask & 0b001 == 0 || t.s == t.p)
        && (mask & 0b010 == 0 || t.s == t.o)
        && (mask & 0b100 == 0 || t.p == t.o)
}

/// Canonical identity of a pattern's match set: the storage-level slot
/// pattern plus the repetition constraints.
pub type CanonicalPattern = (SlotPattern, u8);

/// The canonical key under which a pattern's matches are cached.
pub fn canonical_pattern(pattern: &QPattern) -> CanonicalPattern {
    (pattern.slot_pattern(), repetition_mask(pattern))
}

/// Per-execution cache of materialized posting lists, keyed by
/// [`CanonicalPattern`]. Borrow-served pattern shapes are never inserted
/// (they are already free); only shapes that would re-sort or re-filter
/// are shared.
#[derive(Debug, Default)]
pub struct PostingCache {
    map: HashMap<CanonicalPattern, (Rc<[Posting]>, f64)>,
}

impl PostingCache {
    /// An empty cache.
    pub fn new() -> PostingCache {
        PostingCache::default()
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Matches of a query pattern in descending probability order, with a
/// cursor for incremental sorted access.
///
/// Unlike a raw [`trinit_xkg::PostingList`], this respects *within-pattern*
/// variable repetition (`?x p ?x` only matches triples with `s == o`) and
/// normalizes probabilities over the filtered match set.
#[derive(Debug, Clone)]
pub struct ScoredMatches<'s> {
    list: PostingList<'s>,
}

impl<'s> ScoredMatches<'s> {
    /// Builds the scored matches of `pattern` over `store`.
    pub fn build(store: &'s XkgStore, pattern: &QPattern) -> ScoredMatches<'s> {
        let (slot, mask) = canonical_pattern(pattern);
        if mask == 0 {
            return ScoredMatches {
                list: PostingList::build(store, &slot),
            };
        }
        let (entries, total) = filtered_entries(store, &slot, mask);
        ScoredMatches {
            list: PostingList::from_owned(entries, total),
        }
    }

    /// Builds through `cache`, sharing materialized lists across patterns
    /// with the same canonical form. Returns the view and whether it was
    /// served from the cache. Borrow-served shapes bypass the cache
    /// entirely (they cost nothing to begin with).
    pub fn build_cached(
        store: &'s XkgStore,
        pattern: &QPattern,
        cache: &mut PostingCache,
    ) -> (ScoredMatches<'s>, bool) {
        let key = canonical_pattern(pattern);
        let (slot, mask) = key;
        if mask == 0 && is_borrow_served(&slot) {
            return (
                ScoredMatches {
                    list: PostingList::build(store, &slot),
                },
                false,
            );
        }
        if let Some((entries, total)) = cache.map.get(&key) {
            return (
                ScoredMatches {
                    list: PostingList::from_shared(Rc::clone(entries), *total),
                },
                true,
            );
        }
        let (entries, total) = if mask == 0 {
            let built = PostingList::build(store, &slot);
            let total = built.total_weight();
            (built.into_entries(), total)
        } else {
            filtered_entries(store, &slot, mask)
        };
        let shared: Rc<[Posting]> = entries.into();
        cache.map.insert(key, (Rc::clone(&shared), total));
        (
            ScoredMatches {
                list: PostingList::from_shared(shared, total),
            },
            false,
        )
    }

    /// Number of (filtered) matches.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the pattern has no matches.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Total emission weight over the filtered matches.
    pub fn total_weight(&self) -> f64 {
        self.list.total_weight()
    }

    /// All entries in descending probability order (ignores the cursor).
    pub fn entries(&self) -> &[Posting] {
        self.list.entries()
    }

    /// Emission probability of one triple under this pattern (0.0 if the
    /// triple does not match).
    pub fn prob_of(&self, id: TripleId) -> f64 {
        self.list
            .entries()
            .iter()
            .find(|e| e.triple == id)
            .map(|e| e.prob)
            .unwrap_or(0.0)
    }

    /// Probability of the next unconsumed entry.
    pub fn peek_prob(&self) -> Option<f64> {
        self.list.peek_prob()
    }

    /// Consumes and returns the next entry in descending order.
    pub fn next_entry(&mut self) -> Option<(TripleId, f64)> {
        self.list.next_posting().map(|p| (p.triple, p.prob))
    }

    /// Entries consumed so far.
    pub fn consumed(&self) -> usize {
        self.list.consumed()
    }
}

/// True if [`PostingList::build`] serves this shape as a borrowed slice
/// of the precomputed posting index.
#[inline]
fn is_borrow_served(slot: &SlotPattern) -> bool {
    matches!(
        (slot.s, slot.p, slot.o),
        (None, Some(_), None) | (None, None, None)
    )
}

/// Filters the shared posting list by the repetition constraints and
/// renormalizes. The source is already score-sorted, so the filtered
/// subset needs no re-sort.
fn filtered_entries(store: &XkgStore, slot: &SlotPattern, mask: u8) -> (Vec<Posting>, f64) {
    let source = PostingList::build(store, slot);
    let mut entries: Vec<Posting> = source
        .entries()
        .iter()
        .filter(|e| satisfies_mask(store, e.triple, mask))
        .copied()
        .collect();
    let total: f64 = entries.iter().map(|e| e.weight).sum();
    for e in &mut entries {
        e.prob = if total > 0.0 { e.weight / total } else { 0.0 };
    }
    (entries, total)
}

/// A log-space score. Probabilities multiply; log scores add.
pub const LOG_ZERO: f64 = f64::NEG_INFINITY;

/// Converts a probability (or rule weight) to log space.
#[inline]
pub fn ln_weight(p: f64) -> f64 {
    if p <= 0.0 {
        LOG_ZERO
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_relax::{QTerm, VarId};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "x");
        b.add_kg_resources("b", "p", "y");
        b.add_kg_resources("c", "p", "c"); // self-loop for repeated-var tests
        let src = b.intern_source("d");
        let s = b.dict_mut().resource("a");
        let pr = b.dict_mut().resource("p");
        let o = b.dict_mut().resource("z");
        b.add_extracted(s, pr, o, 0.5, src);
        b.build()
    }

    fn pat(store: &XkgStore, s: QTerm, o: QTerm) -> QPattern {
        QPattern::new(s, QTerm::Term(store.resource("p").unwrap()), o)
    }

    #[test]
    fn probabilities_normalize_over_matches() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 4);
        let sum: f64 = m.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // KG facts (weight 1.0) outrank the 0.5-confidence extraction.
        assert!(m.entries()[0].prob > m.entries()[3].prob - 1e-12);
        assert!((m.total_weight() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_var_filters_matches() {
        let store = store();
        let v = QTerm::Var(VarId(0));
        let p = pat(&store, v, v);
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 1, "only the self-loop matches ?x p ?x");
        let e = m.entries()[0];
        let t = store.triple(e.triple);
        assert_eq!(t.s, t.o);
        assert!((e.prob - 1.0).abs() < 1e-9, "renormalized over filtered set");
    }

    #[test]
    fn selectivity_acts_as_idf() {
        let store = store();
        // Selective pattern (bound subject) gives higher probability than
        // the unselective one for the same triple.
        let a = store.resource("a").unwrap();
        let broad = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let mb = ScoredMatches::build(&store, &broad);
        let mn = ScoredMatches::build(&store, &narrow);
        let id = mn.entries()[0].triple;
        assert!(mn.prob_of(id) > mb.prob_of(id));
    }

    #[test]
    fn cursor_and_prob_of() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        let first = m.next_entry().unwrap();
        assert_eq!(m.consumed(), 1);
        assert!((m.prob_of(first.0) - first.1).abs() < 1e-12);
        assert_eq!(m.prob_of(TripleId(999)), 0.0);
    }

    #[test]
    fn empty_pattern() {
        let store = store();
        let ghost = QTerm::Term(trinit_xkg::TermId::new(trinit_xkg::TermKind::Resource, 500));
        let p = QPattern::new(QTerm::Var(VarId(0)), ghost, QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        assert!(m.is_empty());
        assert_eq!(m.peek_prob(), None);
        assert_eq!(m.next_entry(), None);
    }

    #[test]
    fn cached_build_shares_materialized_lists() {
        let store = store();
        let mut cache = PostingCache::new();
        // Bound-subject pattern: materialized, so cached.
        let a = store.resource("a").unwrap();
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let (m1, hit1) = ScoredMatches::build_cached(&store, &narrow, &mut cache);
        assert!(!hit1);
        assert_eq!(cache.len(), 1);
        // Same canonical pattern under different variable names: hit.
        let renamed = pat(&store, QTerm::Term(a), QTerm::Var(VarId(7)));
        let (m2, hit2) = ScoredMatches::build_cached(&store, &renamed, &mut cache);
        assert!(hit2);
        assert_eq!(m1.entries(), m2.entries());
        assert_eq!(m1.total_weight(), m2.total_weight());
        // Borrow-served shape (predicate-only): never inserted.
        let broad = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let (_, hit3) = ScoredMatches::build_cached(&store, &broad, &mut cache);
        assert!(!hit3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_and_uncached_agree() {
        let store = store();
        let mut cache = PostingCache::new();
        let v = QTerm::Var(VarId(0));
        for p in [
            pat(&store, v, v),
            pat(&store, v, QTerm::Var(VarId(1))),
            pat(&store, QTerm::Term(store.resource("a").unwrap()), v),
        ] {
            let plain = ScoredMatches::build(&store, &p);
            let (cached, _) = ScoredMatches::build_cached(&store, &p, &mut cache);
            assert_eq!(plain.entries(), cached.entries());
            // And a second cached build (the hit path) agrees too.
            let (hit, _) = ScoredMatches::build_cached(&store, &p, &mut cache);
            assert_eq!(plain.entries(), hit.entries());
        }
    }

    #[test]
    fn ln_weight_handles_zero() {
        assert_eq!(ln_weight(0.0), LOG_ZERO);
        assert_eq!(ln_weight(-1.0), LOG_ZERO);
        assert!((ln_weight(1.0)).abs() < 1e-12);
    }
}
