//! Query-likelihood answer scoring (paper §4).
//!
//! "A triple pattern is viewed as a document that emits triples with
//! certain probabilities. The probability assigned to an SPO fact in
//! response to a triple pattern is proportional to the frequency with
//! which the fact is observed (a tf-like effect) and inversely
//! proportional to the total number of matches for the triple pattern (an
//! idf-like effect corresponding to selectivity)."
//!
//! Concretely: `P(t | q) = weight(t) / Σ_{t' ∈ matches(q)} weight(t')`
//! with `weight(t) = support(t) × confidence(t)`. Relaxed matches are
//! attenuated by the rule weight; an answer's score is the product of its
//! pattern probabilities (kept in log space); the score of an answer is
//! the max over its derivations.
//!
//! [`ScoredMatches`] is a thin view over the store's shared posting
//! machinery ([`trinit_xkg::PostingList`]): patterns without repeated
//! variables delegate directly — predicate-only, unbound, subject-only,
//! and object-only shapes are borrowed slices of the build-time posting
//! index (its anchored strata included), zero allocation and zero
//! sorting per query; the composite shapes filter an already-sorted
//! group. Patterns that repeat a variable (`?x p ?x`) filter the shared
//! list and renormalize over the filtered set; since the source is
//! already score-sorted, filtering preserves order and no re-sort
//! happens. A [`PostingCache`] shares materialized lists across an
//! execution, so structural variants touching the same canonical pattern
//! never rebuild its matches; the borrow-served shapes bypass the caches
//! entirely — they are already O(1).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use trinit_relax::{QPattern, QTerm};
use trinit_xkg::{EntriesRef, Posting, PostingList, ServeKind, SlotPattern, TripleId, XkgStore};

/// Bitmask of within-pattern variable-equality constraints: bit 0 =
/// subject/predicate, bit 1 = subject/object, bit 2 = predicate/object.
/// Two patterns with equal slot patterns and equal masks have identical
/// match sets and probabilities regardless of variable naming.
fn repetition_mask(pattern: &QPattern) -> u8 {
    let slots = pattern.slots();
    let mut mask = 0u8;
    for (bit, (i, j)) in [(0usize, 1usize), (0, 2), (1, 2)].into_iter().enumerate() {
        if let (QTerm::Var(a), QTerm::Var(b)) = (slots[i], slots[j]) {
            if a == b {
                mask |= 1 << bit;
            }
        }
    }
    mask
}

/// True if `triple` satisfies the variable-equality constraints in
/// `mask` (see [`canonical_pattern`]). Public so shard-level totals
/// providers can apply the exact same repetition semantics when they
/// aggregate a filtered pattern's emission weight across store slices.
#[inline]
pub fn satisfies_mask(store: &XkgStore, id: TripleId, mask: u8) -> bool {
    if mask == 0 {
        return true;
    }
    let t = store.triple(id);
    (mask & 0b001 == 0 || t.s == t.p)
        && (mask & 0b010 == 0 || t.s == t.o)
        && (mask & 0b100 == 0 || t.p == t.o)
}

/// Canonical identity of a pattern's match set: the storage-level slot
/// pattern plus the repetition constraints.
pub type CanonicalPattern = (SlotPattern, u8);

/// The canonical key under which a pattern's matches are cached.
pub fn canonical_pattern(pattern: &QPattern) -> CanonicalPattern {
    (pattern.slot_pattern(), repetition_mask(pattern))
}

/// One cached materialized list: shared entries, the build-time
/// prefix-sum column when the source had one (`Packed` stores decode
/// their hot shapes once per cache tier and keep the exact column so
/// `remaining_mass` stays bit-identical to the `Flat` borrow path), and
/// the total emission weight.
type CachedList = (Arc<[Posting]>, Option<Arc<[f64]>>, f64);

/// Per-execution cache of materialized posting lists, keyed by
/// [`CanonicalPattern`]. Borrow-served pattern shapes are never inserted
/// by `Flat` stores (they are already free); `Packed` stores insert
/// their decoded hot shapes here too, so one execution decodes each
/// group at most once.
#[derive(Debug, Default)]
pub struct PostingCache {
    map: HashMap<CanonicalPattern, CachedList>,
}

impl PostingCache {
    /// An empty cache.
    pub fn new() -> PostingCache {
        PostingCache::default()
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Supplies *global* normalization totals when the query engine runs
/// over one slice (shard) of a partitioned store.
///
/// The scoring model normalizes a pattern's emission probabilities over
/// the total weight of its match set (§4's idf-like selectivity). A
/// shard only sees its local matches, so a shard-local total would
/// inflate probabilities and break score equality with the monolithic
/// engine. A `GlobalTotals` provider answers, per canonical pattern,
/// the total emission weight of the match set *across every shard*;
/// [`ScoredMatches::build_global`] then normalizes local entries by
/// that global denominator, making every per-shard emission carry
/// exactly the probability the single-store engine would assign it.
pub trait GlobalTotals: Sync {
    /// Global total emission weight of `key`'s match set, or `None`
    /// when the local slice's own total is already global (for
    /// subject-bound shapes under subject-hash partitioning, all
    /// matches are co-located, so local *is* global).
    fn pattern_total(&self, key: &CanonicalPattern) -> Option<f64>;
}

/// Where a cached posting-list build was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// Materialized fresh (or borrow-served, which costs nothing).
    Built,
    /// Served from the per-execution [`PostingCache`].
    ExecHit,
    /// Served from a store-level [`SharedPostingCache`].
    SharedHit,
}

/// Hit/miss/eviction accounting of a [`SharedPostingCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to materialize (consultations that missed).
    pub misses: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
    /// Times the cache recovered from mutex poisoning (a panicking
    /// holder): the resident lists are dropped and execution degrades
    /// to cold misses instead of aborting.
    pub poison_recoveries: usize,
}

/// Sentinel slab index marking the end of the intrusive LRU list.
const LRU_NONE: usize = usize::MAX;

/// One resident list: the payload plus its links in the intrusive
/// recency list (slab indices, [`LRU_NONE`]-terminated).
#[derive(Debug)]
struct SharedEntry {
    key: CanonicalPattern,
    entries: Arc<[Posting]>,
    prefix: Option<Arc<[f64]>>,
    total: f64,
    prev: usize,
    next: usize,
}

/// Cache state: a slab of entries threaded onto a doubly linked recency
/// list (head = most recently used, tail = least), with a key → slab
/// index map. Recency bumps and evictions are O(1) pointer splices —
/// no scan over residents, however large the capacity.
#[derive(Debug)]
struct SharedInner {
    map: HashMap<CanonicalPattern, usize>,
    slab: Vec<SharedEntry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: SharedCacheStats,
    /// Store generation the resident lists were built against (see
    /// [`SharedPostingCache::ensure_generation`]).
    generation: u64,
}

impl SharedInner {
    /// Detaches slab entry `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == LRU_NONE {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == LRU_NONE {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[i].prev = LRU_NONE;
        self.slab[i].next = LRU_NONE;
    }

    /// Attaches slab entry `i` at the most-recently-used end.
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = LRU_NONE;
        self.slab[i].next = self.head;
        if self.head == LRU_NONE {
            self.tail = i;
        } else {
            self.slab[self.head].prev = i;
        }
        self.head = i;
    }

    /// Evicts the least-recently-used entry, recycling its slab slot.
    fn evict_tail(&mut self) {
        let i = self.tail;
        debug_assert!(i != LRU_NONE, "evict on empty cache");
        self.unlink(i);
        self.map.remove(&self.slab[i].key);
        self.slab[i].entries = Vec::new().into();
        self.slab[i].prefix = None;
        self.free.push(i);
        self.stats.evictions += 1;
    }
}

/// Store-level bounded LRU of materialized posting lists, keyed by
/// [`CanonicalPattern`] — the second cache tier above the per-execution
/// [`PostingCache`].
///
/// Interactive sessions (the paper's E6 workload) re-issue queries over
/// the same predicates and entity anchors; the per-execution cache dies
/// with each query, so consecutive queries rebuilt identical lists. A
/// `SharedPostingCache` lives behind a `Session` (or an entire system)
/// and hands out `Arc`-shared entry slices across queries. Borrow-served
/// shapes (predicate-only, fully unbound, subject-only, object-only)
/// bypass it — they are already O(1) reads of the store's frozen posting
/// index, anchored strata included.
///
/// Eviction is least-recently-used over an intrusive doubly linked
/// recency list, so hits and evictions are O(1) regardless of how many
/// lists are resident; capacity 0 disables retention entirely (every
/// consultation misses).
#[derive(Debug)]
pub struct SharedPostingCache {
    inner: Mutex<SharedInner>,
}

impl SharedPostingCache {
    /// A cache holding at most `capacity` materialized lists.
    pub fn new(capacity: usize) -> SharedPostingCache {
        SharedPostingCache {
            inner: Mutex::new(SharedInner {
                map: HashMap::new(),
                slab: Vec::new(),
                free: Vec::new(),
                head: LRU_NONE,
                tail: LRU_NONE,
                capacity,
                stats: SharedCacheStats::default(),
                generation: 0,
            }),
        }
    }

    /// Locks the cache, recovering from mutex poisoning. A panicking
    /// holder may have left the recency list half-spliced, so the
    /// poisoned state is not trusted: resident lists are dropped and
    /// the cache restarts cold (every list re-materializes on demand)
    /// — a performance degradation, never an abort. Capacity and
    /// counters survive; the poison flag is cleared so subsequent
    /// locks succeed normally.
    fn lock(&self) -> MutexGuard<'_, SharedInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.map.clear();
                guard.slab.clear();
                guard.free.clear();
                guard.head = LRU_NONE;
                guard.tail = LRU_NONE;
                guard.stats.poison_recoveries += 1;
                self.inner.clear_poison();
                guard
            }
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Number of lists currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lock().map.is_empty()
    }

    /// Accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> SharedCacheStats {
        self.lock().stats
    }

    /// Drops all cached lists (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.slab.clear();
        inner.free.clear();
        inner.head = LRU_NONE;
        inner.tail = LRU_NONE;
    }

    /// Stamps the cache with the store generation it is about to serve.
    /// Cached lists embed the store's contents *and* its global
    /// normalization totals, so any mutation (ingest, compaction) makes
    /// every resident entry stale; callers bump the store generation on
    /// mutation and call this at query entry. A mismatch drops all
    /// resident lists (a cold restart — counters survive); a match is
    /// one comparison. No entry built against an older generation can
    /// survive a stamp.
    pub fn ensure_generation(&self, generation: u64) {
        let mut inner = self.lock();
        if inner.generation != generation {
            inner.map.clear();
            inner.slab.clear();
            inner.free.clear();
            inner.head = LRU_NONE;
            inner.tail = LRU_NONE;
            inner.generation = generation;
        }
    }

    /// Looks up a canonical pattern, bumping its recency on hit. Counts
    /// one hit or one miss. O(1).
    fn get(&self, key: &CanonicalPattern) -> Option<CachedList> {
        let mut inner = self.lock();
        match inner.map.get(key).copied() {
            Some(i) => {
                inner.unlink(i);
                inner.push_front(i);
                inner.stats.hits += 1;
                Some((
                    Arc::clone(&inner.slab[i].entries),
                    inner.slab[i].prefix.clone(),
                    inner.slab[i].total,
                ))
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a materialized list, evicting least-recently-used entries
    /// (O(1) each, off the recency list's tail) if the capacity bound
    /// would be exceeded.
    fn insert(
        &self,
        key: CanonicalPattern,
        entries: Arc<[Posting]>,
        prefix: Option<Arc<[f64]>>,
        total: f64,
    ) {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        if let Some(i) = inner.map.get(&key).copied() {
            inner.slab[i].entries = entries;
            inner.slab[i].prefix = prefix;
            inner.slab[i].total = total;
            inner.unlink(i);
            inner.push_front(i);
            return;
        }
        while inner.map.len() >= inner.capacity {
            inner.evict_tail();
        }
        let node = SharedEntry {
            key,
            entries,
            prefix,
            total,
            prev: LRU_NONE,
            next: LRU_NONE,
        };
        let i = match inner.free.pop() {
            Some(i) => {
                inner.slab[i] = node;
                i
            }
            None => {
                inner.slab.push(node);
                inner.slab.len() - 1
            }
        };
        inner.map.insert(key, i);
        inner.push_front(i);
    }
}

/// Matches of a query pattern in descending probability order, with a
/// cursor for incremental sorted access.
///
/// Unlike a raw [`trinit_xkg::PostingList`], this respects *within-pattern*
/// variable repetition (`?x p ?x` only matches triples with `s == o`) and
/// normalizes probabilities over the filtered match set.
#[derive(Debug, Clone)]
pub struct ScoredMatches<'s> {
    list: PostingList<'s>,
    /// Multiplier applied to every probability the cursor API reports.
    /// 1.0 for locally normalized lists; `local_total / global_total`
    /// when a borrow-served list is re-normalized by a [`GlobalTotals`]
    /// provider *without* materializing a copy (the entries keep their
    /// baked-in local probabilities; the view rescales on the fly).
    scale: f64,
    /// How the underlying list was built when this view materialized it
    /// fresh (`None` for cache hits) — feeds the engine's
    /// `anchored_serves` / `posting_sorts` work counters.
    built: Option<ServeKind>,
}

impl<'s> ScoredMatches<'s> {
    fn unscaled(list: PostingList<'s>) -> ScoredMatches<'s> {
        ScoredMatches {
            list,
            scale: 1.0,
            built: None,
        }
    }

    fn fresh(list: PostingList<'s>, kind: ServeKind) -> ScoredMatches<'s> {
        ScoredMatches {
            list,
            scale: 1.0,
            built: Some(kind),
        }
    }

    /// Builds the scored matches of `pattern` over `store`.
    pub fn build(store: &'s XkgStore, pattern: &QPattern) -> ScoredMatches<'s> {
        let (slot, mask) = canonical_pattern(pattern);
        if mask == 0 {
            let list = PostingList::build(store, &slot);
            let kind = list.serve_kind();
            return ScoredMatches::fresh(list, kind);
        }
        let (entries, total, kind) = filtered_entries(store, &slot, mask);
        ScoredMatches::fresh(PostingList::from_owned(entries, total), kind)
    }

    /// How the underlying posting list was served, when this view built
    /// it fresh; `None` for lists shared out of a cache.
    pub fn build_kind(&self) -> Option<ServeKind> {
        self.built
    }

    /// Builds through the per-execution `cache` only. See
    /// [`ScoredMatches::build_tiered`] for the two-tier variant.
    pub fn build_cached(
        store: &'s XkgStore,
        pattern: &QPattern,
        cache: &mut PostingCache,
    ) -> (ScoredMatches<'s>, CacheSource) {
        ScoredMatches::build_tiered(store, pattern, cache, None)
    }

    /// Builds through the cache hierarchy: the per-execution `cache`
    /// (L1, shared across structural variants of one query), then the
    /// optional store-level `shared` LRU (L2, shared across queries of a
    /// session). Returns the view and where it was served from. Shared
    /// hits are promoted into the execution cache; fresh builds populate
    /// both tiers. Borrow-served shapes bypass both (they cost nothing
    /// to begin with).
    pub fn build_tiered(
        store: &'s XkgStore,
        pattern: &QPattern,
        cache: &mut PostingCache,
        shared: Option<&SharedPostingCache>,
    ) -> (ScoredMatches<'s>, CacheSource) {
        ScoredMatches::build_global(store, pattern, cache, shared, None)
    }

    /// Like [`ScoredMatches::build_tiered`], additionally renormalizing
    /// probabilities by a [`GlobalTotals`] provider — the build path of
    /// per-shard execution over a partitioned store. When the provider
    /// returns a global total for the pattern, the local slice's entries
    /// are materialized with `prob = weight / global_total` (borrow-served
    /// shapes included: their baked-in probabilities are shard-local, so
    /// they must be re-scaled); caches passed here must be dedicated to
    /// this store slice, since the entries they hold are slice-specific.
    pub fn build_global(
        store: &'s XkgStore,
        pattern: &QPattern,
        cache: &mut PostingCache,
        shared: Option<&SharedPostingCache>,
        totals: Option<&dyn GlobalTotals>,
    ) -> (ScoredMatches<'s>, CacheSource) {
        let key = canonical_pattern(pattern);
        let (slot, mask) = key;
        let global = totals.and_then(|t| t.pattern_total(&key));
        if mask == 0 && is_borrow_served(&slot) {
            // A global total only changes the normalization constant, so
            // hot-shape lists keep their locally normalized entries and
            // rescale on the fly — the cached/borrowed list is valid
            // under any totals provider.
            let rescale = |total: f64| match global {
                Some(t) if t > 0.0 => total / t,
                Some(_) => 0.0,
                None => 1.0,
            };
            if store.layout().is_flat() {
                // Zero-alloc: the borrowed slice of the frozen posting
                // index is reused with an on-the-fly probability rescale
                // instead of a copy. Anchored (s-/o-bound) shapes take
                // this path too — under subject-hash sharding their
                // lists stay per-shard borrowed slices with no per-shard
                // materialization at all.
                let list = PostingList::build(store, &slot);
                let scale = rescale(list.total_weight());
                let kind = list.serve_kind();
                return (
                    ScoredMatches {
                        list,
                        scale,
                        built: Some(kind),
                    },
                    CacheSource::Built,
                );
            }
            // Packed store: hot shapes decode the group into an owned
            // list, so the decode is shared through the cache tiers —
            // one decode per execution (or session) instead of one per
            // build. The exact prefix column rides along, keeping
            // `remaining_mass` bit-identical to the Flat borrow path.
            if let Some((entries, prefix, total)) = cache.map.get(&key) {
                let scale = rescale(*total);
                return (
                    ScoredMatches {
                        list: PostingList::from_shared_parts(
                            Arc::clone(entries),
                            prefix.clone(),
                            *total,
                        ),
                        scale,
                        built: None,
                    },
                    CacheSource::ExecHit,
                );
            }
            if let Some(store_cache) = shared {
                if let Some((entries, prefix, total)) = store_cache.get(&key) {
                    cache
                        .map
                        .insert(key, (Arc::clone(&entries), prefix.clone(), total));
                    let scale = rescale(total);
                    return (
                        ScoredMatches {
                            list: PostingList::from_shared_parts(entries, prefix, total),
                            scale,
                            built: None,
                        },
                        CacheSource::SharedHit,
                    );
                }
            }
            let built = PostingList::build(store, &slot);
            let kind = built.serve_kind();
            let scale = rescale(built.total_weight());
            let (entries, prefix, total) = built.into_shared_parts();
            cache
                .map
                .insert(key, (Arc::clone(&entries), prefix.clone(), total));
            if let Some(store_cache) = shared {
                store_cache.insert(key, Arc::clone(&entries), prefix.clone(), total);
            }
            return (
                ScoredMatches {
                    list: PostingList::from_shared_parts(entries, prefix, total),
                    scale,
                    built: Some(kind),
                },
                CacheSource::Built,
            );
        }
        if let Some((entries, prefix, total)) = cache.map.get(&key) {
            return (
                ScoredMatches::unscaled(PostingList::from_shared_parts(
                    Arc::clone(entries),
                    prefix.clone(),
                    *total,
                )),
                CacheSource::ExecHit,
            );
        }
        if let Some(store_cache) = shared {
            if let Some((entries, prefix, total)) = store_cache.get(&key) {
                cache
                    .map
                    .insert(key, (Arc::clone(&entries), prefix.clone(), total));
                return (
                    ScoredMatches::unscaled(PostingList::from_shared_parts(entries, prefix, total)),
                    CacheSource::SharedHit,
                );
            }
        }
        let (entries, total, kind) = match global {
            Some(t) => scaled_entries(store, &slot, mask, t),
            None if mask == 0 => {
                let (entries, total, kind) = PostingList::build_entries(store, &slot);
                (entries.into_vec(), total, kind)
            }
            None => filtered_entries(store, &slot, mask),
        };
        let rc: Arc<[Posting]> = entries.into();
        cache.map.insert(key, (Arc::clone(&rc), None, total));
        if let Some(store_cache) = shared {
            store_cache.insert(key, Arc::clone(&rc), None, total);
        }
        (
            ScoredMatches {
                list: PostingList::from_shared(rc, total),
                scale: 1.0,
                built: Some(kind),
            },
            CacheSource::Built,
        )
    }

    /// Number of (filtered) matches.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True if the pattern has no matches.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Total emission weight over the filtered matches.
    pub fn total_weight(&self) -> f64 {
        self.list.total_weight()
    }

    /// All entries in descending probability order (ignores the cursor).
    pub fn entries(&self) -> &[Posting] {
        self.list.entries()
    }

    /// Emission probability of one triple under this pattern (0.0 if the
    /// triple does not match).
    pub fn prob_of(&self, id: TripleId) -> f64 {
        self.list
            .entries()
            .iter()
            .find(|e| e.triple == id)
            .map(|e| e.prob * self.scale)
            .unwrap_or(0.0)
    }

    /// Probability of the next unconsumed entry.
    pub fn peek_prob(&self) -> Option<f64> {
        self.list.peek_prob().map(|p| p * self.scale)
    }

    /// Consumes and returns the next entry in descending order.
    pub fn next_entry(&mut self) -> Option<(TripleId, f64)> {
        self.list
            .next_posting()
            .map(|p| (p.triple, p.prob * self.scale))
    }

    /// Entries consumed so far.
    pub fn consumed(&self) -> usize {
        self.list.consumed()
    }

    /// Fraction of the emission mass not yet consumed by the cursor, in
    /// `[0, 1]`. O(1) for every list — the build-time prefix-sum columns
    /// for index-served lists, an incrementally tracked consumed weight
    /// for materialized ones. An upper bound on the probability of every
    /// remaining entry — and on their sum. Globally re-normalized views
    /// rescale exactly as the cursor probabilities do.
    pub fn remaining_mass(&self) -> f64 {
        let total = self.list.total_weight();
        if total > 0.0 {
            (self.list.remaining_weight() / total) * self.scale
        } else {
            0.0
        }
    }
}

/// Cheap sound upper bound on the head (best) emission probability of
/// `pattern`, without materializing its match list: exact for the shapes
/// the precomputed posting index serves (predicate-only, fully unbound,
/// subject-only, and object-only, no repeated variables), trivial (1.0)
/// otherwise. Patterns with repeated variables renormalize over a
/// *filtered* subset, which can only raise probabilities, so the group
/// head is not a bound there; composite anchored shapes renormalize over
/// a filtered group total for the same reason.
pub fn head_prob_bound(store: &XkgStore, pattern: &QPattern) -> f64 {
    let (slot, mask) = canonical_pattern(pattern);
    if mask != 0 {
        return 1.0;
    }
    store.head_prob(&slot).unwrap_or(1.0)
}

/// [`head_prob_bound`] under a [`GlobalTotals`] provider: the bound on a
/// *shard's* best emission when probabilities are normalized globally.
/// For index-served shapes (the anchored strata included) this reads the
/// shard's precomputed head *weight* and divides by the global total —
/// each shard enters the sharded merge at its exact local head, which is
/// ≤ the monolithic store's head bound for the same pattern. Shapes the
/// index cannot answer fall back to the trivial bound (probabilities are
/// ≤ 1 by construction, since every local weight participates in the
/// global total).
pub fn head_prob_bound_global(
    store: &XkgStore,
    pattern: &QPattern,
    totals: Option<&dyn GlobalTotals>,
) -> f64 {
    let key = canonical_pattern(pattern);
    let Some(t) = totals.and_then(|g| g.pattern_total(&key)) else {
        return head_prob_bound(store, pattern);
    };
    if t <= 0.0 {
        return 0.0;
    }
    let (slot, _) = key;
    // Head *weight* of the shard-local group; for repeated-variable
    // masks the unfiltered group head still bounds the filtered head.
    match store.head_weight(&slot) {
        Some(w) => (w / t).min(1.0),
        None => 1.0,
    }
}

/// True if [`PostingList::build`] serves this shape as a borrowed slice
/// of the precomputed posting index: predicate-only, fully unbound, and
/// the anchored subject-only / object-only strata. These shapes are O(1)
/// and are therefore never inserted into the posting caches.
#[inline]
fn is_borrow_served(slot: &SlotPattern) -> bool {
    matches!(
        (slot.s, slot.p, slot.o),
        (None, Some(_), None) | (None, None, None) | (Some(_), None, None) | (None, None, Some(_))
    )
}

/// Materializes the local slice's (possibly mask-filtered) entries with
/// probabilities normalized by an externally supplied global total. The
/// source list is already score-sorted; scaling by a constant preserves
/// the order.
fn scaled_entries(
    store: &XkgStore,
    slot: &SlotPattern,
    mask: u8,
    total: f64,
) -> (Vec<Posting>, f64, ServeKind) {
    // Entries-only build: the prefix column is never kept on this path,
    // so a Packed segment skips reconstructing it.
    let (source, _, kind) = PostingList::build_entries(store, slot);
    // A zero global total means the match set carries no emission mass
    // anywhere: serve empty, exactly like the index's own zero-mass
    // groups, so the 0 head bound reported for such patterns is exact.
    if total <= 0.0 {
        return (Vec::new(), 0.0, kind);
    }
    let mut entries: Vec<Posting> = match source {
        // An unmasked decoded group is already the exact entry set:
        // rescale it in place instead of copying.
        EntriesRef::Owned(v) if mask == 0 => v,
        source => source
            .as_slice()
            .iter()
            .filter(|e| mask == 0 || satisfies_mask(store, e.triple, mask))
            .copied()
            .collect(),
    };
    for e in &mut entries {
        e.prob = e.weight / total;
    }
    (entries, total, kind)
}

/// Filters the shared posting list by the repetition constraints and
/// renormalizes. The source is already score-sorted, so the filtered
/// subset needs no re-sort.
fn filtered_entries(store: &XkgStore, slot: &SlotPattern, mask: u8) -> (Vec<Posting>, f64, ServeKind) {
    // Entries-only build: the masked copy below never reads the prefix
    // column, so a Packed segment skips reconstructing it.
    let (source, _, kind) = PostingList::build_entries(store, slot);
    let mut entries: Vec<Posting> = source
        .as_slice()
        .iter()
        .filter(|e| satisfies_mask(store, e.triple, mask))
        .copied()
        .collect();
    let total: f64 = entries.iter().map(|e| e.weight).sum();
    // Zero-mass filtered sets emit nothing — the same contract as the
    // index's zero-mass groups, keeping masked shapes consistent with
    // the unmasked ones across every engine and the tightened skip.
    if total <= 0.0 {
        return (Vec::new(), 0.0, kind);
    }
    for e in &mut entries {
        e.prob = e.weight / total;
    }
    (entries, total, kind)
}

/// A log-space score. Probabilities multiply; log scores add.
pub const LOG_ZERO: f64 = f64::NEG_INFINITY;

/// Converts a probability (or rule weight) to log space.
#[inline]
pub fn ln_weight(p: f64) -> f64 {
    if p <= 0.0 {
        LOG_ZERO
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_relax::{QTerm, VarId};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "x");
        b.add_kg_resources("b", "p", "y");
        b.add_kg_resources("c", "p", "c"); // self-loop for repeated-var tests
        let src = b.intern_source("d");
        let s = b.dict_mut().resource("a");
        let pr = b.dict_mut().resource("p");
        let o = b.dict_mut().resource("z");
        b.add_extracted(s, pr, o, 0.5, src);
        b.build()
    }

    fn pat(store: &XkgStore, s: QTerm, o: QTerm) -> QPattern {
        QPattern::new(s, QTerm::Term(store.resource("p").unwrap()), o)
    }

    #[test]
    fn probabilities_normalize_over_matches() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 4);
        let sum: f64 = m.entries().iter().map(|e| e.prob).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // KG facts (weight 1.0) outrank the 0.5-confidence extraction.
        assert!(m.entries()[0].prob > m.entries()[3].prob - 1e-12);
        assert!((m.total_weight() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_var_filters_matches() {
        let store = store();
        let v = QTerm::Var(VarId(0));
        let p = pat(&store, v, v);
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 1, "only the self-loop matches ?x p ?x");
        let e = m.entries()[0];
        let t = store.triple(e.triple);
        assert_eq!(t.s, t.o);
        assert!((e.prob - 1.0).abs() < 1e-9, "renormalized over filtered set");
    }

    #[test]
    fn selectivity_acts_as_idf() {
        let store = store();
        // Selective pattern (bound subject) gives higher probability than
        // the unselective one for the same triple.
        let a = store.resource("a").unwrap();
        let broad = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let mb = ScoredMatches::build(&store, &broad);
        let mn = ScoredMatches::build(&store, &narrow);
        let id = mn.entries()[0].triple;
        assert!(mn.prob_of(id) > mb.prob_of(id));
    }

    #[test]
    fn cursor_and_prob_of() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        let first = m.next_entry().unwrap();
        assert_eq!(m.consumed(), 1);
        assert!((m.prob_of(first.0) - first.1).abs() < 1e-12);
        assert_eq!(m.prob_of(TripleId(999)), 0.0);
    }

    #[test]
    fn empty_pattern() {
        let store = store();
        let ghost = QTerm::Term(trinit_xkg::TermId::new(trinit_xkg::TermKind::Resource, 500));
        let p = QPattern::new(QTerm::Var(VarId(0)), ghost, QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        assert!(m.is_empty());
        assert_eq!(m.peek_prob(), None);
        assert_eq!(m.next_entry(), None);
    }

    #[test]
    fn cached_build_shares_materialized_lists() {
        let store = store();
        let mut cache = PostingCache::new();
        // Bound-subject pattern: materialized, so cached.
        let a = store.resource("a").unwrap();
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let (m1, src1) = ScoredMatches::build_cached(&store, &narrow, &mut cache);
        assert_eq!(src1, CacheSource::Built);
        assert_eq!(cache.len(), 1);
        // Same canonical pattern under different variable names: hit.
        let renamed = pat(&store, QTerm::Term(a), QTerm::Var(VarId(7)));
        let (m2, src2) = ScoredMatches::build_cached(&store, &renamed, &mut cache);
        assert_eq!(src2, CacheSource::ExecHit);
        assert_eq!(m1.entries(), m2.entries());
        assert_eq!(m1.total_weight(), m2.total_weight());
        // Borrow-served shape (predicate-only): never inserted.
        let broad = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let (_, src3) = ScoredMatches::build_cached(&store, &broad, &mut cache);
        assert_eq!(src3, CacheSource::Built);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_and_uncached_agree() {
        let store = store();
        let mut cache = PostingCache::new();
        let v = QTerm::Var(VarId(0));
        for p in [
            pat(&store, v, v),
            pat(&store, v, QTerm::Var(VarId(1))),
            pat(&store, QTerm::Term(store.resource("a").unwrap()), v),
        ] {
            let plain = ScoredMatches::build(&store, &p);
            let (cached, _) = ScoredMatches::build_cached(&store, &p, &mut cache);
            assert_eq!(plain.entries(), cached.entries());
            // And a second cached build (the hit path) agrees too.
            let (hit, _) = ScoredMatches::build_cached(&store, &p, &mut cache);
            assert_eq!(plain.entries(), hit.entries());
        }
    }

    #[test]
    fn shared_cache_serves_across_executions() {
        let store = store();
        let shared = SharedPostingCache::new(8);
        let a = store.resource("a").unwrap();
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        // First execution: builds and populates both tiers.
        let mut exec1 = PostingCache::new();
        let (m1, src1) = ScoredMatches::build_tiered(&store, &narrow, &mut exec1, Some(&shared));
        assert_eq!(src1, CacheSource::Built);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.stats().misses, 1);
        // Second execution (fresh L1): served by the shared tier and
        // promoted into the new execution cache.
        let mut exec2 = PostingCache::new();
        let (m2, src2) = ScoredMatches::build_tiered(&store, &narrow, &mut exec2, Some(&shared));
        assert_eq!(src2, CacheSource::SharedHit);
        assert_eq!(shared.stats().hits, 1);
        assert_eq!(exec2.len(), 1);
        assert_eq!(m1.entries(), m2.entries());
        // Within the same execution, L1 answers without touching L2.
        let (_, src3) = ScoredMatches::build_tiered(&store, &narrow, &mut exec2, Some(&shared));
        assert_eq!(src3, CacheSource::ExecHit);
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn shared_cache_evicts_least_recently_used() {
        let store = store();
        let shared = SharedPostingCache::new(2);
        let terms: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| store.resource(n).unwrap())
            .collect();
        let pats: Vec<QPattern> = terms
            .iter()
            .map(|&t| pat(&store, QTerm::Term(t), QTerm::Var(VarId(1))))
            .collect();
        let mut exec = PostingCache::new();
        ScoredMatches::build_tiered(&store, &pats[0], &mut exec, Some(&shared));
        ScoredMatches::build_tiered(&store, &pats[1], &mut exec, Some(&shared));
        assert_eq!(shared.len(), 2);
        // Touch pattern 0 through a fresh execution cache to bump recency.
        let mut exec2 = PostingCache::new();
        let (_, src) = ScoredMatches::build_tiered(&store, &pats[0], &mut exec2, Some(&shared));
        assert_eq!(src, CacheSource::SharedHit);
        // Inserting a third list evicts pattern 1 (the LRU), not 0.
        ScoredMatches::build_tiered(&store, &pats[2], &mut exec2, Some(&shared));
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.stats().evictions, 1);
        let mut exec3 = PostingCache::new();
        let (_, again0) = ScoredMatches::build_tiered(&store, &pats[0], &mut exec3, Some(&shared));
        assert_eq!(again0, CacheSource::SharedHit);
        let (_, again1) = ScoredMatches::build_tiered(&store, &pats[1], &mut exec3, Some(&shared));
        assert_eq!(again1, CacheSource::Built, "pattern 1 was evicted");
    }

    #[test]
    fn shared_cache_zero_capacity_retains_nothing() {
        let store = store();
        let shared = SharedPostingCache::new(0);
        let a = store.resource("a").unwrap();
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let mut exec = PostingCache::new();
        ScoredMatches::build_tiered(&store, &narrow, &mut exec, Some(&shared));
        assert!(shared.is_empty());
        let mut exec2 = PostingCache::new();
        let (_, src) = ScoredMatches::build_tiered(&store, &narrow, &mut exec2, Some(&shared));
        assert_eq!(src, CacheSource::Built);
        assert_eq!(shared.stats().misses, 2);
    }

    #[test]
    fn head_bound_is_exact_for_index_served_shapes() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let m = ScoredMatches::build(&store, &p);
        let head = m.peek_prob().unwrap();
        assert!((head_prob_bound(&store, &p) - head).abs() < 1e-12);
        // Repeated-variable and anchored shapes fall back to the trivial
        // bound.
        let v = QTerm::Var(VarId(0));
        assert_eq!(head_prob_bound(&store, &pat(&store, v, v)), 1.0);
        let a = store.resource("a").unwrap();
        assert_eq!(
            head_prob_bound(&store, &pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)))),
            1.0
        );
        // The bound is sound: never below the actual head emission.
        for q in [
            pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1))),
            pat(&store, v, v),
            pat(&store, QTerm::Term(a), QTerm::Var(VarId(1))),
        ] {
            let actual = ScoredMatches::build(&store, &q).peek_prob().unwrap_or(0.0);
            assert!(head_prob_bound(&store, &q) >= actual - 1e-12);
        }
    }

    #[test]
    fn remaining_mass_tracks_cursor() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        assert!((m.remaining_mass() - 1.0).abs() < 1e-9);
        let mut consumed_prob = 0.0;
        while let Some((_, prob)) = m.next_entry() {
            consumed_prob += prob;
            assert!((m.remaining_mass() - (1.0 - consumed_prob)).abs() < 1e-9);
            // The mass bounds every remaining entry.
            if let Some(peek) = m.peek_prob() {
                assert!(m.remaining_mass() >= peek - 1e-12);
            }
        }
        assert!(m.remaining_mass().abs() < 1e-9);
    }

    #[test]
    fn ln_weight_handles_zero() {
        assert_eq!(ln_weight(0.0), LOG_ZERO);
        assert_eq!(ln_weight(-1.0), LOG_ZERO);
        assert!((ln_weight(1.0)).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_recovers_from_poisoning_as_cold_restart() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let key = canonical_pattern(&p);
        let cache = SharedPostingCache::new(8);
        cache.insert(key, Vec::new().into(), None, 1.0);
        assert_eq!(cache.len(), 1);

        // Poison the mutex: a holder panics with the guard live.
        let died = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.inner.lock().unwrap();
                panic!("holder dies mid-update");
            })
            .join()
        });
        assert!(died.is_err(), "the holder must have panicked");

        // Every subsequent operation degrades to a cold cache instead
        // of aborting: residents are gone, structure is consistent.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().poison_recoveries, 1);
        assert!(cache.get(&key).is_none(), "resident list dropped, not trusted");
        assert_eq!(cache.capacity(), 8, "capacity survives recovery");

        // And the cache is fully usable again (poison flag cleared).
        cache.insert(key, Vec::new().into(), None, 1.0);
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.stats().poison_recoveries, 1, "recovered once, not per lock");
    }

    #[test]
    fn generation_stamp_drops_stale_entries_once_per_mutation() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let key = canonical_pattern(&p);
        let cache = SharedPostingCache::new(8);
        cache.ensure_generation(0);
        cache.insert(key, Vec::new().into(), None, 1.0);
        assert!(cache.get(&key).is_some());
        // Same generation: residents survive.
        cache.ensure_generation(0);
        assert!(cache.get(&key).is_some());
        // The store mutated (ingest/compact bumped its generation): every
        // pre-mutation list is dropped before the cache serves again.
        cache.ensure_generation(1);
        assert!(cache.get(&key).is_none(), "stale list served after ingest");
        // Re-stamping the same generation is a no-op for new residents.
        cache.insert(key, Vec::new().into(), None, 2.0);
        cache.ensure_generation(1);
        assert_eq!(cache.get(&key).map(|(_, _, t)| t), Some(2.0));
    }
}
