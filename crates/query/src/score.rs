//! Query-likelihood answer scoring (paper §4).
//!
//! "A triple pattern is viewed as a document that emits triples with
//! certain probabilities. The probability assigned to an SPO fact in
//! response to a triple pattern is proportional to the frequency with
//! which the fact is observed (a tf-like effect) and inversely
//! proportional to the total number of matches for the triple pattern (an
//! idf-like effect corresponding to selectivity)."
//!
//! Concretely: `P(t | q) = weight(t) / Σ_{t' ∈ matches(q)} weight(t')`
//! with `weight(t) = support(t) × confidence(t)`. Relaxed matches are
//! attenuated by the rule weight; an answer's score is the product of its
//! pattern probabilities (kept in log space); the score of an answer is
//! the max over its derivations.

use trinit_relax::QPattern;
use trinit_xkg::{TripleId, XkgStore};

/// Matches of a query pattern in descending probability order, with a
/// cursor for incremental sorted access.
///
/// Unlike [`trinit_xkg::PostingList`], this respects *within-pattern*
/// variable repetition (`?x p ?x` only matches triples with `s == o`) and
/// normalizes probabilities over the filtered match set.
#[derive(Debug, Clone)]
pub struct ScoredMatches {
    entries: Vec<(TripleId, f64)>,
    total_weight: f64,
    cursor: usize,
}

impl ScoredMatches {
    /// Builds the scored matches of `pattern` over `store`.
    pub fn build(store: &XkgStore, pattern: &QPattern) -> ScoredMatches {
        let slot = pattern.slot_pattern();
        let candidates = store.lookup(&slot);
        let mut entries: Vec<(TripleId, f64)> = Vec::with_capacity(candidates.len());
        let mut total_weight = 0.0f64;
        for &id in candidates {
            if !within_pattern_consistent(pattern, store, id) {
                continue;
            }
            let w = store.provenance(id).weight();
            total_weight += w;
            entries.push((id, w));
        }
        for e in &mut entries {
            e.1 = if total_weight > 0.0 {
                e.1 / total_weight
            } else {
                0.0
            };
        }
        entries.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("probabilities are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        ScoredMatches {
            entries,
            total_weight,
            cursor: 0,
        }
    }

    /// Number of (filtered) matches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the pattern has no matches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total emission weight over the filtered matches.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// All `(triple, probability)` entries in descending order.
    pub fn entries(&self) -> &[(TripleId, f64)] {
        &self.entries
    }

    /// Emission probability of one triple under this pattern (0.0 if the
    /// triple does not match).
    pub fn prob_of(&self, id: TripleId) -> f64 {
        self.entries
            .iter()
            .find(|(t, _)| *t == id)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// Probability of the next unconsumed entry.
    pub fn peek_prob(&self) -> Option<f64> {
        self.entries.get(self.cursor).map(|(_, p)| *p)
    }

    /// Consumes and returns the next entry in descending order.
    pub fn next_entry(&mut self) -> Option<(TripleId, f64)> {
        let e = self.entries.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(e)
    }

    /// Entries consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

/// Checks within-pattern variable-equality constraints of `pattern`
/// against a concrete triple.
fn within_pattern_consistent(pattern: &QPattern, store: &XkgStore, id: TripleId) -> bool {
    use trinit_relax::QTerm;
    let t = store.triple(id);
    let slots = pattern.slots();
    let values = [t.s, t.p, t.o];
    for i in 0..3 {
        for j in (i + 1)..3 {
            if let (QTerm::Var(a), QTerm::Var(b)) = (slots[i], slots[j]) {
                if a == b && values[i] != values[j] {
                    return false;
                }
            }
        }
    }
    true
}

/// A log-space score. Probabilities multiply; log scores add.
pub const LOG_ZERO: f64 = f64::NEG_INFINITY;

/// Converts a probability (or rule weight) to log space.
#[inline]
pub fn ln_weight(p: f64) -> f64 {
    if p <= 0.0 {
        LOG_ZERO
    } else {
        p.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_relax::{QTerm, VarId};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "x");
        b.add_kg_resources("b", "p", "y");
        b.add_kg_resources("c", "p", "c"); // self-loop for repeated-var tests
        let src = b.intern_source("d");
        let s = b.dict_mut().resource("a");
        let pr = b.dict_mut().resource("p");
        let o = b.dict_mut().resource("z");
        b.add_extracted(s, pr, o, 0.5, src);
        b.build()
    }

    fn pat(store: &XkgStore, s: QTerm, o: QTerm) -> QPattern {
        QPattern::new(s, QTerm::Term(store.resource("p").unwrap()), o)
    }

    #[test]
    fn probabilities_normalize_over_matches() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 4);
        let sum: f64 = m.entries().iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // KG facts (weight 1.0) outrank the 0.5-confidence extraction.
        assert!(m.entries()[0].1 > m.entries()[3].1 - 1e-12);
        assert!((m.total_weight() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_var_filters_matches() {
        let store = store();
        let v = QTerm::Var(VarId(0));
        let p = pat(&store, v, v);
        let m = ScoredMatches::build(&store, &p);
        assert_eq!(m.len(), 1, "only the self-loop matches ?x p ?x");
        let (id, prob) = m.entries()[0];
        let t = store.triple(id);
        assert_eq!(t.s, t.o);
        assert!((prob - 1.0).abs() < 1e-9, "renormalized over filtered set");
    }

    #[test]
    fn selectivity_acts_as_idf() {
        let store = store();
        // Selective pattern (bound subject) gives higher probability than
        // the unselective one for the same triple.
        let a = store.resource("a").unwrap();
        let broad = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let narrow = pat(&store, QTerm::Term(a), QTerm::Var(VarId(1)));
        let mb = ScoredMatches::build(&store, &broad);
        let mn = ScoredMatches::build(&store, &narrow);
        let (id, _) = mn.entries()[0];
        assert!(mn.prob_of(id) > mb.prob_of(id));
    }

    #[test]
    fn cursor_and_prob_of() {
        let store = store();
        let p = pat(&store, QTerm::Var(VarId(0)), QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        let first = m.next_entry().unwrap();
        assert_eq!(m.consumed(), 1);
        assert!((m.prob_of(first.0) - first.1).abs() < 1e-12);
        assert_eq!(m.prob_of(TripleId(999)), 0.0);
    }

    #[test]
    fn empty_pattern() {
        let store = store();
        let ghost = QTerm::Term(trinit_xkg::TermId::new(trinit_xkg::TermKind::Resource, 500));
        let p = QPattern::new(QTerm::Var(VarId(0)), ghost, QTerm::Var(VarId(1)));
        let mut m = ScoredMatches::build(&store, &p);
        assert!(m.is_empty());
        assert_eq!(m.peek_prob(), None);
        assert_eq!(m.next_entry(), None);
    }

    #[test]
    fn ln_weight_handles_zero() {
        assert_eq!(ln_weight(0.0), LOG_ZERO);
        assert_eq!(ln_weight(-1.0), LOG_ZERO);
        assert!((ln_weight(1.0)).abs() < 1e-12);
    }
}
