//! Answers, bindings, derivations, and top-k collection.
//!
//! An answer is a binding of the query's projection variables, scored in
//! log space, and carrying a [`Derivation`]: which triples matched which
//! patterns and which relaxation rules were invoked. Derivations power
//! the demo's *answer explanation* (paper §5). The same projected binding
//! can arise from several derivations; the collector keeps the
//! highest-scoring one (paper §4).

use std::collections::HashMap;

use trinit_relax::{QPattern, RuleId, VarId};
use trinit_xkg::{TermId, TripleId};

/// A partial or complete assignment of query variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<TermId>>,
}

impl Bindings {
    /// An empty assignment sized for `n_vars` variables.
    pub fn new(n_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; n_vars],
        }
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<TermId> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Binds `v` to `t`. Returns `false` (and leaves the binding
    /// unchanged) if `v` is already bound to a different term.
    pub fn bind(&mut self, v: VarId, t: TermId) -> bool {
        let idx = v.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        match self.slots[idx] {
            Some(existing) => existing == t,
            None => {
                self.slots[idx] = Some(t);
                true
            }
        }
    }

    /// Removes the binding of `v`, if any. Supports undo-based
    /// backtracking in the join engines, which bind candidate values
    /// into one shared scratch assignment instead of cloning it per
    /// candidate.
    #[inline]
    pub fn unbind(&mut self, v: VarId) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Binds `v` to `t` against the current assignment, recording a
    /// newly created binding in `undo` so the caller can backtrack with
    /// [`Bindings::unbind`]. Returns `false` on conflict without
    /// touching `undo` — the shared validate-then-bind discipline of
    /// both join engines.
    #[inline]
    pub fn try_bind_recorded(&mut self, v: VarId, t: TermId, undo: &mut Vec<VarId>) -> bool {
        match self.get(v) {
            Some(existing) => existing == t,
            None => {
                self.bind(v, t);
                undo.push(v);
                true
            }
        }
    }

    /// True if the two assignments agree on every commonly bound variable.
    pub fn compatible(&self, other: &Bindings) -> bool {
        self.slots
            .iter()
            .zip(&other.slots)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merges `other` into a copy of `self`; `None` if incompatible.
    pub fn merged(&self, other: &Bindings) -> Option<Bindings> {
        if !self.compatible(other) {
            return None;
        }
        let len = self.slots.len().max(other.slots.len());
        let mut out = Bindings {
            slots: vec![None; len],
        };
        for (i, slot) in out.slots.iter_mut().enumerate() {
            *slot = self
                .slots
                .get(i)
                .copied()
                .flatten()
                .or_else(|| other.slots.get(i).copied().flatten());
        }
        Some(out)
    }

    /// Projects onto `vars`, producing the answer key.
    pub fn project(&self, vars: &[VarId]) -> Vec<(VarId, Option<TermId>)> {
        vars.iter().map(|&v| (v, self.get(v))).collect()
    }
}

/// How an answer was obtained: matched triples and invoked rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Derivation {
    /// `(pattern as evaluated, matching triple)` pairs, one per pattern.
    pub triples: Vec<(QPattern, TripleId)>,
    /// Relaxation rules invoked to reach the evaluated form.
    pub rules: Vec<RuleId>,
    /// Product of the invoked rules' weights (1.0 when unrelaxed).
    pub rule_weight: f64,
}

impl Derivation {
    /// A derivation with no relaxations yet.
    pub fn unrelaxed() -> Derivation {
        Derivation {
            triples: Vec::new(),
            rules: Vec::new(),
            rule_weight: 1.0,
        }
    }

    /// True if no relaxation rule was invoked.
    pub fn is_exact(&self) -> bool {
        self.rules.is_empty()
    }
}

/// A scored answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The projected variable assignment (the deduplication key).
    pub key: Vec<(VarId, Option<TermId>)>,
    /// Full bindings including non-projected variables.
    pub bindings: Bindings,
    /// Log-space score (sum of pattern log-probabilities and rule
    /// log-weights).
    pub score: f64,
    /// The best derivation found for this answer.
    pub derivation: Derivation,
}

/// One collected answer plus its insertion sequence number — the stable
/// identity the tracked top-k list refers to (cheaper than cloning keys).
#[derive(Debug)]
struct Slot {
    seq: u64,
    answer: Answer,
}

/// Collects answers, deduplicating by projected key and keeping the
/// maximum score per key (paper §4: "the score of an answer \[is\] the
/// maximal one obtained through any such sequence").
///
/// A collector built with [`AnswerCollector::tracking`] additionally
/// maintains the current top-`k` scores **persistently on insert** — a
/// sorted size-k array updated in O(log k) search + O(k) shift per
/// accepted offer — so [`AnswerCollector::kth_score`] is O(1) with zero
/// allocation per call. The rank join calls it on every pull; the
/// previous implementation allocated and `select_nth`-ed a vector of
/// *all* candidate scores each time.
#[derive(Debug, Default)]
pub struct AnswerCollector {
    best: HashMap<Vec<(VarId, Option<TermId>)>, Slot>,
    /// The `k` this collector tracks persistently; 0 = untracked (the
    /// generic engines that never ask for a threshold).
    track_k: usize,
    /// `(score, seq)` of the current top `track_k` answers, descending
    /// by score. Invariant: every key outside this list has a score ≤
    /// the list's minimum (removals only happen when re-inserting a
    /// higher score for the same key or evicting the minimum, so the
    /// minimum never decreases).
    top: Vec<(f64, u64)>,
    next_seq: u64,
}

impl AnswerCollector {
    /// Creates an empty, untracked collector.
    pub fn new() -> AnswerCollector {
        AnswerCollector::default()
    }

    /// Creates a collector that persistently tracks the top-`k` scores,
    /// making [`AnswerCollector::kth_score`] for that `k` O(1) and
    /// allocation-free per call.
    pub fn tracking(k: usize) -> AnswerCollector {
        AnswerCollector {
            track_k: k,
            top: Vec::with_capacity(k.min(4096)),
            ..AnswerCollector::default()
        }
    }

    /// Offers an answer; kept only if it beats the current best for its
    /// key. Returns `true` if the collector changed.
    pub fn offer(&mut self, answer: Answer) -> bool {
        match self.best.get_mut(&answer.key) {
            Some(slot) if slot.answer.score >= answer.score => false,
            Some(slot) => {
                let seq = slot.seq;
                let score = answer.score;
                slot.answer = answer;
                if self.track_k > 0 {
                    // The key's old score may sit in the tracked list;
                    // drop it before re-offering the improved score.
                    if let Some(i) = self.top.iter().position(|&(_, s)| s == seq) {
                        self.top.remove(i);
                    }
                    self.offer_top(score, seq);
                }
                true
            }
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let score = answer.score;
                self.best.insert(answer.key.clone(), Slot { seq, answer });
                if self.track_k > 0 {
                    self.offer_top(score, seq);
                }
                true
            }
        }
    }

    /// Inserts a candidate into the tracked top list, evicting the
    /// minimum when over capacity. Scores only ever enter here after the
    /// key's stale entry (if any) was removed.
    fn offer_top(&mut self, score: f64, seq: u64) {
        if self.top.len() >= self.track_k {
            // A full list only admits scores above its minimum; equal
            // scores leave the k-th value unchanged either way.
            if self.top.last().is_some_and(|&(min, _)| score <= min) {
                return;
            }
        }
        let at = self.top.partition_point(|&(s, _)| s >= score);
        self.top.insert(at, (score, seq));
        self.top.truncate(self.track_k);
    }

    /// Number of distinct answers collected.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// The score of the `k`-th best answer (1-based), or `None` if fewer
    /// than `k` answers are held. O(1) and allocation-free when this
    /// collector was built with [`AnswerCollector::tracking`] for the
    /// same `k` (the rank join's per-pull path); other `k`s select over
    /// a scratch vector as before.
    pub fn kth_score(&self, k: usize) -> Option<f64> {
        if k == 0 || self.best.len() < k {
            return None;
        }
        if k == self.track_k {
            debug_assert_eq!(self.top.len(), k.min(self.best.len()));
            return self.top.last().map(|&(s, _)| s);
        }
        let mut scores: Vec<f64> = self.best.values().map(|s| s.answer.score).collect();
        let (_, kth, _) = scores.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
        Some(*kth)
    }

    /// Finalizes into the top-`k` answers, sorted by descending score
    /// (ties broken by key for determinism).
    pub fn into_top_k(self, k: usize) -> Vec<Answer> {
        let mut out: Vec<Answer> = self.best.into_values().map(|s| s.answer).collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.key.cmp(&b.key))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::TermKind;

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn bind_and_rebind() {
        let mut b = Bindings::new(2);
        assert!(b.bind(VarId(0), tid(1)));
        assert!(b.bind(VarId(0), tid(1)), "same value rebind ok");
        assert!(!b.bind(VarId(0), tid(2)), "conflicting rebind fails");
        assert_eq!(b.get(VarId(0)), Some(tid(1)));
        assert_eq!(b.get(VarId(1)), None);
    }

    #[test]
    fn bind_grows_automatically() {
        let mut b = Bindings::new(0);
        assert!(b.bind(VarId(5), tid(9)));
        assert_eq!(b.get(VarId(5)), Some(tid(9)));
    }

    #[test]
    fn compatibility_and_merge() {
        let mut a = Bindings::new(3);
        a.bind(VarId(0), tid(1));
        let mut b = Bindings::new(3);
        b.bind(VarId(1), tid(2));
        assert!(a.compatible(&b));
        let m = a.merged(&b).unwrap();
        assert_eq!(m.get(VarId(0)), Some(tid(1)));
        assert_eq!(m.get(VarId(1)), Some(tid(2)));

        let mut c = Bindings::new(3);
        c.bind(VarId(0), tid(7));
        assert!(!a.compatible(&c));
        assert!(a.merged(&c).is_none());
    }

    #[test]
    fn projection_includes_unbound() {
        let mut b = Bindings::new(2);
        b.bind(VarId(0), tid(1));
        let key = b.project(&[VarId(0), VarId(1)]);
        assert_eq!(key, vec![(VarId(0), Some(tid(1))), (VarId(1), None)]);
    }

    fn answer(key_term: u32, score: f64) -> Answer {
        Answer {
            key: vec![(VarId(0), Some(tid(key_term)))],
            bindings: Bindings::new(1),
            score,
            derivation: Derivation::unrelaxed(),
        }
    }

    #[test]
    fn collector_keeps_max_score_per_key() {
        let mut c = AnswerCollector::new();
        assert!(c.offer(answer(1, -2.0)));
        assert!(!c.offer(answer(1, -3.0)), "worse duplicate rejected");
        assert!(c.offer(answer(1, -1.0)), "better duplicate accepted");
        assert_eq!(c.len(), 1);
        let out = c.into_top_k(10);
        assert_eq!(out[0].score, -1.0);
    }

    #[test]
    fn top_k_sorted_and_truncated() {
        let mut c = AnswerCollector::new();
        for i in 0..5 {
            c.offer(answer(i, -(f64::from(i))));
        }
        assert_eq!(c.kth_score(3), Some(-2.0));
        assert_eq!(c.kth_score(9), None);
        assert_eq!(c.kth_score(0), None);
        let out = c.into_top_k(3);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn tracked_kth_score_matches_selection_under_updates() {
        // A deterministic pseudo-random stream of offers, including
        // score *upgrades* for existing keys (the case where a stale
        // entry may sit inside the tracked top list). After every offer,
        // the tracked O(1) kth must equal a from-scratch selection.
        for k in [1usize, 2, 3, 5, 8] {
            let mut tracked = AnswerCollector::tracking(k);
            let mut state: u64 = 0x9e3779b97f4a7c15;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..400 {
                let key = (rng() % 24) as u32;
                let score = -((rng() % 1000) as f64) / 100.0;
                tracked.offer(answer(key, score));
                // Reference: selection over all current scores.
                let reference = {
                    if tracked.len() < k {
                        None
                    } else {
                        let mut scores: Vec<f64> =
                            tracked.best.values().map(|s| s.answer.score).collect();
                        scores.sort_by(|a, b| b.total_cmp(a));
                        Some(scores[k - 1])
                    }
                };
                assert_eq!(tracked.kth_score(k), reference, "k = {k}");
                // Untracked k values still answer via selection.
                if k > 1 {
                    let mut plain_scores: Vec<f64> =
                        tracked.best.values().map(|s| s.answer.score).collect();
                    plain_scores.sort_by(|a, b| b.total_cmp(a));
                    let want = (tracked.len() >= k - 1).then(|| plain_scores[k - 2]);
                    assert_eq!(tracked.kth_score(k - 1), want);
                }
            }
        }
    }

    #[test]
    fn tracked_collector_finalizes_like_untracked() {
        let mut a = AnswerCollector::new();
        let mut b = AnswerCollector::tracking(3);
        for (key, score) in [(1u32, -2.0), (2, -1.0), (1, -0.5), (3, -3.0), (4, -0.7)] {
            a.offer(answer(key, score));
            b.offer(answer(key, score));
        }
        let xa = a.into_top_k(3);
        let xb = b.into_top_k(3);
        assert_eq!(xa.len(), xb.len());
        for (x, y) in xa.iter().zip(&xb) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.score, y.score);
        }
    }

    #[test]
    fn derivation_exactness() {
        assert!(Derivation::unrelaxed().is_exact());
        let d = Derivation {
            triples: Vec::new(),
            rules: vec![RuleId(0)],
            rule_weight: 0.8,
        };
        assert!(!d.is_exact());
    }
}
