//! Answers, bindings, derivations, and top-k collection.
//!
//! An answer is a binding of the query's projection variables, scored in
//! log space, and carrying a [`Derivation`]: which triples matched which
//! patterns and which relaxation rules were invoked. Derivations power
//! the demo's *answer explanation* (paper §5). The same projected binding
//! can arise from several derivations; the collector keeps the
//! highest-scoring one (paper §4).

use std::collections::HashMap;

use trinit_relax::{QPattern, RuleId, VarId};
use trinit_xkg::{TermId, TripleId};

/// A partial or complete assignment of query variables to terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<TermId>>,
}

impl Bindings {
    /// An empty assignment sized for `n_vars` variables.
    pub fn new(n_vars: usize) -> Bindings {
        Bindings {
            slots: vec![None; n_vars],
        }
    }

    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<TermId> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Binds `v` to `t`. Returns `false` (and leaves the binding
    /// unchanged) if `v` is already bound to a different term.
    pub fn bind(&mut self, v: VarId, t: TermId) -> bool {
        let idx = v.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        match self.slots[idx] {
            Some(existing) => existing == t,
            None => {
                self.slots[idx] = Some(t);
                true
            }
        }
    }

    /// Removes the binding of `v`, if any. Supports undo-based
    /// backtracking in the join engines, which bind candidate values
    /// into one shared scratch assignment instead of cloning it per
    /// candidate.
    #[inline]
    pub fn unbind(&mut self, v: VarId) {
        if let Some(slot) = self.slots.get_mut(v.0 as usize) {
            *slot = None;
        }
    }

    /// Binds `v` to `t` against the current assignment, recording a
    /// newly created binding in `undo` so the caller can backtrack with
    /// [`Bindings::unbind`]. Returns `false` on conflict without
    /// touching `undo` — the shared validate-then-bind discipline of
    /// both join engines.
    #[inline]
    pub fn try_bind_recorded(&mut self, v: VarId, t: TermId, undo: &mut Vec<VarId>) -> bool {
        match self.get(v) {
            Some(existing) => existing == t,
            None => {
                self.bind(v, t);
                undo.push(v);
                true
            }
        }
    }

    /// True if the two assignments agree on every commonly bound variable.
    pub fn compatible(&self, other: &Bindings) -> bool {
        self.slots
            .iter()
            .zip(&other.slots)
            .all(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            })
    }

    /// Merges `other` into a copy of `self`; `None` if incompatible.
    pub fn merged(&self, other: &Bindings) -> Option<Bindings> {
        if !self.compatible(other) {
            return None;
        }
        let len = self.slots.len().max(other.slots.len());
        let mut out = Bindings {
            slots: vec![None; len],
        };
        for (i, slot) in out.slots.iter_mut().enumerate() {
            *slot = self
                .slots
                .get(i)
                .copied()
                .flatten()
                .or_else(|| other.slots.get(i).copied().flatten());
        }
        Some(out)
    }

    /// Projects onto `vars`, producing the answer key.
    pub fn project(&self, vars: &[VarId]) -> Vec<(VarId, Option<TermId>)> {
        vars.iter().map(|&v| (v, self.get(v))).collect()
    }
}

/// How an answer was obtained: matched triples and invoked rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Derivation {
    /// `(pattern as evaluated, matching triple)` pairs, one per pattern.
    pub triples: Vec<(QPattern, TripleId)>,
    /// Relaxation rules invoked to reach the evaluated form.
    pub rules: Vec<RuleId>,
    /// Product of the invoked rules' weights (1.0 when unrelaxed).
    pub rule_weight: f64,
}

impl Derivation {
    /// A derivation with no relaxations yet.
    pub fn unrelaxed() -> Derivation {
        Derivation {
            triples: Vec::new(),
            rules: Vec::new(),
            rule_weight: 1.0,
        }
    }

    /// True if no relaxation rule was invoked.
    pub fn is_exact(&self) -> bool {
        self.rules.is_empty()
    }
}

/// A scored answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The projected variable assignment (the deduplication key).
    pub key: Vec<(VarId, Option<TermId>)>,
    /// Full bindings including non-projected variables.
    pub bindings: Bindings,
    /// Log-space score (sum of pattern log-probabilities and rule
    /// log-weights).
    pub score: f64,
    /// The best derivation found for this answer.
    pub derivation: Derivation,
}

/// Collects answers, deduplicating by projected key and keeping the
/// maximum score per key (paper §4: "the score of an answer \[is\] the
/// maximal one obtained through any such sequence").
#[derive(Debug, Default)]
pub struct AnswerCollector {
    best: HashMap<Vec<(VarId, Option<TermId>)>, Answer>,
}

impl AnswerCollector {
    /// Creates an empty collector.
    pub fn new() -> AnswerCollector {
        AnswerCollector::default()
    }

    /// Offers an answer; kept only if it beats the current best for its
    /// key. Returns `true` if the collector changed.
    pub fn offer(&mut self, answer: Answer) -> bool {
        match self.best.get(&answer.key) {
            Some(existing) if existing.score >= answer.score => false,
            _ => {
                self.best.insert(answer.key.clone(), answer);
                true
            }
        }
    }

    /// Number of distinct answers collected.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// The score of the `k`-th best answer (1-based), or `None` if fewer
    /// than `k` answers are held. Used as the top-k termination bound —
    /// called once per rank-join pull, so it selects (O(n)) rather than
    /// sorts.
    pub fn kth_score(&self, k: usize) -> Option<f64> {
        if k == 0 || self.best.len() < k {
            return None;
        }
        let mut scores: Vec<f64> = self.best.values().map(|a| a.score).collect();
        let (_, kth, _) =
            scores.select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("finite scores"));
        Some(*kth)
    }

    /// Finalizes into the top-`k` answers, sorted by descending score
    /// (ties broken by key for determinism).
    pub fn into_top_k(self, k: usize) -> Vec<Answer> {
        let mut out: Vec<Answer> = self.best.into_values().collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then_with(|| a.key.cmp(&b.key))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::TermKind;

    fn tid(i: u32) -> TermId {
        TermId::new(TermKind::Resource, i)
    }

    #[test]
    fn bind_and_rebind() {
        let mut b = Bindings::new(2);
        assert!(b.bind(VarId(0), tid(1)));
        assert!(b.bind(VarId(0), tid(1)), "same value rebind ok");
        assert!(!b.bind(VarId(0), tid(2)), "conflicting rebind fails");
        assert_eq!(b.get(VarId(0)), Some(tid(1)));
        assert_eq!(b.get(VarId(1)), None);
    }

    #[test]
    fn bind_grows_automatically() {
        let mut b = Bindings::new(0);
        assert!(b.bind(VarId(5), tid(9)));
        assert_eq!(b.get(VarId(5)), Some(tid(9)));
    }

    #[test]
    fn compatibility_and_merge() {
        let mut a = Bindings::new(3);
        a.bind(VarId(0), tid(1));
        let mut b = Bindings::new(3);
        b.bind(VarId(1), tid(2));
        assert!(a.compatible(&b));
        let m = a.merged(&b).unwrap();
        assert_eq!(m.get(VarId(0)), Some(tid(1)));
        assert_eq!(m.get(VarId(1)), Some(tid(2)));

        let mut c = Bindings::new(3);
        c.bind(VarId(0), tid(7));
        assert!(!a.compatible(&c));
        assert!(a.merged(&c).is_none());
    }

    #[test]
    fn projection_includes_unbound() {
        let mut b = Bindings::new(2);
        b.bind(VarId(0), tid(1));
        let key = b.project(&[VarId(0), VarId(1)]);
        assert_eq!(key, vec![(VarId(0), Some(tid(1))), (VarId(1), None)]);
    }

    fn answer(key_term: u32, score: f64) -> Answer {
        Answer {
            key: vec![(VarId(0), Some(tid(key_term)))],
            bindings: Bindings::new(1),
            score,
            derivation: Derivation::unrelaxed(),
        }
    }

    #[test]
    fn collector_keeps_max_score_per_key() {
        let mut c = AnswerCollector::new();
        assert!(c.offer(answer(1, -2.0)));
        assert!(!c.offer(answer(1, -3.0)), "worse duplicate rejected");
        assert!(c.offer(answer(1, -1.0)), "better duplicate accepted");
        assert_eq!(c.len(), 1);
        let out = c.into_top_k(10);
        assert_eq!(out[0].score, -1.0);
    }

    #[test]
    fn top_k_sorted_and_truncated() {
        let mut c = AnswerCollector::new();
        for i in 0..5 {
            c.offer(answer(i, -(f64::from(i))));
        }
        assert_eq!(c.kth_score(3), Some(-2.0));
        assert_eq!(c.kth_score(9), None);
        assert_eq!(c.kth_score(0), None);
        let out = c.into_top_k(3);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn derivation_exactness() {
        assert!(Derivation::unrelaxed().is_exact());
        let d = Derivation {
            triples: Vec::new(),
            rules: vec![RuleId(0)],
            rule_weight: 0.8,
        };
        assert!(!d.is_exact());
    }
}
