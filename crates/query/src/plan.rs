//! Join-order planning.
//!
//! Orders a query's triple patterns most-selective-first, preferring
//! patterns that share variables with the already-planned prefix so the
//! backtracking join stays bound (classic greedy left-deep planning over
//! exact cardinalities, which the permutation indexes give for free).

use trinit_relax::{QPattern, VarId};
use trinit_xkg::XkgStore;

/// Returns the evaluation order of `patterns` as indices.
///
/// The greedy selection scans the remaining patterns each round
/// (inherent to left-deep planning), but its bookkeeping is sub-linear:
/// the bound-variable set is kept **sorted** so connectivity checks are
/// a binary search instead of a linear `contains`, and the picked
/// pattern leaves `remaining` by **swap-remove** at its scanned
/// position instead of a full `retain` pass. Tie order is still
/// deterministic — the selection key ends in the pattern *index*, which
/// is independent of `remaining`'s internal order.
pub fn plan_order(store: &XkgStore, patterns: &[QPattern]) -> Vec<usize> {
    let cards: Vec<usize> = patterns
        .iter()
        .map(|p| store.count(&p.slot_pattern()))
        .collect();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    // Sorted at all times: membership is a binary search.
    let mut bound_vars: Vec<VarId> = Vec::new();

    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let connected = patterns[i]
                    .vars()
                    .any(|v| bound_vars.binary_search(&v).is_ok());
                // Connected patterns first (0), then by cardinality, then
                // by pattern index for determinism.
                (
                    if order.is_empty() || connected { 0 } else { 1 },
                    cards[i],
                    i,
                )
            })
            .expect("remaining is non-empty");
        let pick = remaining.swap_remove(pos);
        for v in patterns[pick].vars() {
            if let Err(insert_at) = bound_vars.binary_search(&v) {
                bound_vars.insert(insert_at, v);
            }
        }
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_relax::QTerm;
    use trinit_xkg::XkgBuilder;

    #[test]
    fn selective_pattern_goes_first() {
        let mut b = XkgBuilder::new();
        for i in 0..50 {
            b.add_kg_resources(&format!("p{i}"), "bornIn", "Ulm");
        }
        b.add_kg_resources("p0", "affiliation", "IAS");
        let store = b.build();
        let born = store.resource("bornIn").unwrap();
        let aff = store.resource("affiliation").unwrap();
        let ulm = store.resource("Ulm").unwrap();
        let ias = store.resource("IAS").unwrap();
        let x = QTerm::Var(VarId(0));
        let patterns = vec![
            QPattern::new(x, QTerm::Term(born), QTerm::Term(ulm)), // 50 matches
            QPattern::new(x, QTerm::Term(aff), QTerm::Term(ias)),  // 1 match
        ];
        assert_eq!(plan_order(&store, &patterns), vec![1, 0]);
    }

    #[test]
    fn connected_patterns_preferred_over_cheaper_disconnected() {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "b");
        b.add_kg_resources("c", "q", "d");
        for i in 0..10 {
            b.add_kg_resources(&format!("x{i}"), "r", "b");
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let q = store.resource("q").unwrap();
        let r = store.resource("r").unwrap();
        let (x, y, z) = (QTerm::Var(VarId(0)), QTerm::Var(VarId(1)), QTerm::Var(VarId(2)));
        let patterns = vec![
            QPattern::new(x, QTerm::Term(p), y), // card 1, starts
            QPattern::new(z, QTerm::Term(q), z), // card small but disconnected
            QPattern::new(x, QTerm::Term(r), y), // connected to first
        ];
        let order = plan_order(&store, &patterns);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 2, "connected pattern beats disconnected");
    }

    #[test]
    fn empty_query_plans_empty() {
        let store = XkgBuilder::new().build();
        assert!(plan_order(&store, &[]).is_empty());
    }

    /// The sorted-set / swap-remove bookkeeping is behaviourally
    /// identical to the original `contains` / `retain` version — pinned
    /// against a local reference implementation, including on tied
    /// cardinalities (where determinism comes from the pattern-index
    /// tie-break, not from `remaining`'s internal order).
    #[test]
    fn matches_reference_bookkeeping_with_ties() {
        fn reference(store: &XkgStore, patterns: &[QPattern]) -> Vec<usize> {
            let cards: Vec<usize> = patterns
                .iter()
                .map(|p| store.count(&p.slot_pattern()))
                .collect();
            let mut remaining: Vec<usize> = (0..patterns.len()).collect();
            let mut order = Vec::with_capacity(patterns.len());
            let mut bound_vars: Vec<VarId> = Vec::new();
            while !remaining.is_empty() {
                let pick = remaining
                    .iter()
                    .copied()
                    .min_by_key(|&i| {
                        let connected = patterns[i].vars().any(|v| bound_vars.contains(&v));
                        (
                            if order.is_empty() || connected { 0 } else { 1 },
                            cards[i],
                            i,
                        )
                    })
                    .expect("remaining is non-empty");
                remaining.retain(|&i| i != pick);
                for v in patterns[pick].vars() {
                    if !bound_vars.contains(&v) {
                        bound_vars.push(v);
                    }
                }
                order.push(pick);
            }
            order
        }

        let mut b = XkgBuilder::new();
        for i in 0..6 {
            b.add_kg_resources(&format!("s{i}"), "p", "hub");
            b.add_kg_resources(&format!("s{i}"), "q", "hub");
            b.add_kg_resources("solo", &format!("r{i}"), &format!("t{i}"));
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let q = store.resource("q").unwrap();
        let r0 = store.resource("r0").unwrap();
        let r1 = store.resource("r1").unwrap();
        let vars: Vec<QTerm> = (0..6).map(|i| QTerm::Var(VarId(i))).collect();
        let cases: Vec<Vec<QPattern>> = vec![
            // Tied cardinalities (p and q both match 6).
            vec![
                QPattern::new(vars[0], QTerm::Term(q), vars[1]),
                QPattern::new(vars[0], QTerm::Term(p), vars[1]),
                QPattern::new(vars[2], QTerm::Term(r0), vars[3]),
            ],
            // Chain with disconnected tail and repeated variables.
            vec![
                QPattern::new(vars[0], QTerm::Term(p), vars[0]),
                QPattern::new(vars[1], QTerm::Term(r1), vars[2]),
                QPattern::new(vars[0], QTerm::Term(q), vars[3]),
                QPattern::new(vars[4], QTerm::Term(r0), vars[5]),
            ],
            // Single pattern and fully disconnected set.
            vec![QPattern::new(vars[0], QTerm::Term(p), vars[1])],
            vec![
                QPattern::new(vars[0], QTerm::Term(r0), vars[1]),
                QPattern::new(vars[2], QTerm::Term(r1), vars[3]),
            ],
        ];
        for patterns in &cases {
            assert_eq!(
                plan_order(&store, patterns),
                reference(&store, patterns),
                "order diverged for {patterns:?}"
            );
        }
    }
}
