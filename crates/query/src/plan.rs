//! Join-order planning.
//!
//! Orders a query's triple patterns most-selective-first, preferring
//! patterns that share variables with the already-planned prefix so the
//! backtracking join stays bound (classic greedy left-deep planning over
//! exact cardinalities, which the permutation indexes give for free).

use trinit_relax::{QPattern, VarId};
use trinit_xkg::XkgStore;

/// Returns the evaluation order of `patterns` as indices.
pub fn plan_order(store: &XkgStore, patterns: &[QPattern]) -> Vec<usize> {
    let cards: Vec<usize> = patterns
        .iter()
        .map(|p| store.count(&p.slot_pattern()))
        .collect();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut bound_vars: Vec<VarId> = Vec::new();

    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .copied()
            .min_by_key(|&i| {
                let connected = patterns[i].vars().any(|v| bound_vars.contains(&v));
                // Connected patterns first (0), then by cardinality, then
                // by index for determinism.
                (
                    if order.is_empty() || connected { 0 } else { 1 },
                    cards[i],
                    i,
                )
            })
            .expect("remaining is non-empty");
        remaining.retain(|&i| i != pick);
        for v in patterns[pick].vars() {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_relax::QTerm;
    use trinit_xkg::XkgBuilder;

    #[test]
    fn selective_pattern_goes_first() {
        let mut b = XkgBuilder::new();
        for i in 0..50 {
            b.add_kg_resources(&format!("p{i}"), "bornIn", "Ulm");
        }
        b.add_kg_resources("p0", "affiliation", "IAS");
        let store = b.build();
        let born = store.resource("bornIn").unwrap();
        let aff = store.resource("affiliation").unwrap();
        let ulm = store.resource("Ulm").unwrap();
        let ias = store.resource("IAS").unwrap();
        let x = QTerm::Var(VarId(0));
        let patterns = vec![
            QPattern::new(x, QTerm::Term(born), QTerm::Term(ulm)), // 50 matches
            QPattern::new(x, QTerm::Term(aff), QTerm::Term(ias)),  // 1 match
        ];
        assert_eq!(plan_order(&store, &patterns), vec![1, 0]);
    }

    #[test]
    fn connected_patterns_preferred_over_cheaper_disconnected() {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("a", "p", "b");
        b.add_kg_resources("c", "q", "d");
        for i in 0..10 {
            b.add_kg_resources(&format!("x{i}"), "r", "b");
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let q = store.resource("q").unwrap();
        let r = store.resource("r").unwrap();
        let (x, y, z) = (QTerm::Var(VarId(0)), QTerm::Var(VarId(1)), QTerm::Var(VarId(2)));
        let patterns = vec![
            QPattern::new(x, QTerm::Term(p), y), // card 1, starts
            QPattern::new(z, QTerm::Term(q), z), // card small but disconnected
            QPattern::new(x, QTerm::Term(r), y), // connected to first
        ];
        let order = plan_order(&store, &patterns);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 2, "connected pattern beats disconnected");
    }

    #[test]
    fn empty_query_plans_empty() {
        let store = XkgBuilder::new().build();
        assert!(plan_order(&store, &[]).is_empty());
    }
}
