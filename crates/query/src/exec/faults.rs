//! Deterministic fault injection for robustness tests (feature
//! `faults`, never compiled into default builds).
//!
//! The harness is a process-global [`FaultPlan`] installed by a test
//! through [`FaultScope::install`] and consulted by cheap hooks the
//! execution layer calls at its failure-relevant points:
//!
//! * [`on_pull`] — inside the rank-join pull loop; injects artificial
//!   per-pull latency and allocation-pressure stalls, the knobs the
//!   deadline-fidelity tests turn.
//! * [`on_seed_task`] — at the start of a per-shard seed task under the
//!   work-stealing batch scheduler; panics for planned `(query, shard)`
//!   pairs, or probabilistically under a seeded coin.
//! * [`on_merge`] — at the start of a query's merge phase; panics for
//!   planned query indices.
//!
//! Injection is *deterministic*: planned sites fire exactly, and the
//! probabilistic mode hashes `(seed, query, shard)` with a
//! splitmix64-style mixer, so a failing configuration replays from its
//! seed alone. The scope guard also serializes tests that install
//! plans (the plan is process-global), so `cargo test` parallelism
//! cannot interleave two harnesses.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What to inject, and where. Installed with [`FaultScope::install`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed tasks that panic: `(query index, shard index)` pairs as the
    /// batch scheduler numbers them.
    pub seed_panics: Vec<(usize, usize)>,
    /// Query indices whose merge phase panics.
    pub merge_panics: Vec<usize>,
    /// Seed for the probabilistic panic coin.
    pub seed_panic_seed: u64,
    /// Probability in `[0, 1]` that any given seed task panics
    /// (deterministic per `(seed, query, shard)`).
    pub seed_panic_prob: f64,
    /// Artificial latency added to every rank-join pull.
    pub pull_delay: Option<Duration>,
    /// Bytes allocated (and immediately dropped) per pull, modelling
    /// allocation-pressure stalls.
    pub alloc_pressure: usize,
}

static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static SCOPE_GATE: Mutex<()> = Mutex::new(());

fn lock_active() -> MutexGuard<'static, Option<FaultPlan>> {
    // Injected panics routinely poison these locks from worker
    // threads; the harness itself must shrug that off.
    ACTIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// RAII installation of a [`FaultPlan`]. Holding the scope keeps the
/// plan active and excludes every other scope (tests serialize);
/// dropping it clears the plan.
pub struct FaultScope {
    _gate: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// Installs `plan` process-wide until the returned scope drops.
    /// Blocks while another scope is alive.
    pub fn install(plan: FaultPlan) -> FaultScope {
        let gate = SCOPE_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        *lock_active() = Some(plan);
        FaultScope { _gate: gate }
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *lock_active() = None;
    }
}

/// Pull-loop hook: injected latency and allocation pressure.
pub fn on_pull() {
    let (delay, pressure) = {
        let guard = lock_active();
        match guard.as_ref() {
            None => return,
            Some(p) => (p.pull_delay, p.alloc_pressure),
        }
    };
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    if pressure > 0 {
        // Touch the allocation so it cannot be optimized away.
        let scratch = vec![0u8; pressure];
        std::hint::black_box(&scratch);
    }
}

/// Seed-task hook: panics when the plan targets `(query, shard)`,
/// either explicitly or through the seeded coin.
pub fn on_seed_task(query: usize, shard: usize) {
    let fire = {
        let guard = lock_active();
        match guard.as_ref() {
            None => return,
            Some(p) => {
                p.seed_panics.contains(&(query, shard))
                    || (p.seed_panic_prob > 0.0
                        && coin(p.seed_panic_seed, query as u64, shard as u64)
                            < p.seed_panic_prob)
            }
        }
    };
    if fire {
        // lint:allow(no-panic-hot-path): deliberate injected fault — panicking here is the harness's purpose
        panic!("injected fault: seed task (query {query}, shard {shard})");
    }
}

/// Merge-phase hook: panics when the plan targets `query`.
pub fn on_merge(query: usize) {
    let fire = {
        let guard = lock_active();
        match guard.as_ref() {
            None => return,
            Some(p) => p.merge_panics.contains(&query),
        }
    };
    if fire {
        // lint:allow(no-panic-hot-path): deliberate injected fault — panicking here is the harness's purpose
        panic!("injected fault: merge phase (query {query})");
    }
}

/// Splitmix64-style mix of `(seed, a, b)` into a uniform `[0, 1)`
/// double — the deterministic coin behind probabilistic injection.
fn coin(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed
        ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_installs_and_clears_the_plan() {
        {
            let _scope = FaultScope::install(FaultPlan {
                merge_panics: vec![3],
                ..FaultPlan::default()
            });
            assert!(lock_active().is_some(), "plan active inside the scope");
            on_merge(2); // not targeted: must not panic
        }
        assert!(lock_active().is_none(), "plan cleared after the scope");
        on_merge(3); // no plan: must not panic
    }

    #[test]
    fn planned_merge_panic_fires_with_identifying_payload() {
        let _scope = FaultScope::install(FaultPlan {
            merge_panics: vec![1],
            ..FaultPlan::default()
        });
        let err = std::panic::catch_unwind(|| on_merge(1)).unwrap_err();
        let msg = crate::exec::budget::describe_panic(err.as_ref());
        assert!(msg.contains("merge phase (query 1)"), "payload was: {msg}");
    }

    #[test]
    fn coin_is_deterministic_and_roughly_uniform() {
        assert_eq!(coin(42, 3, 5), coin(42, 3, 5));
        assert_ne!(coin(42, 3, 5), coin(43, 3, 5));
        let n = 4096;
        let hits = (0..n)
            .filter(|&i| coin(7, i as u64, 0) < 0.25)
            .count();
        let frac = hits as f64 / n as f64;
        assert!((0.18..0.32).contains(&frac), "fraction was {frac}");
    }
}
