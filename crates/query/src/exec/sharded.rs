//! Partitioned top-k execution: the staged pipeline over shard slices.
//!
//! A sharded store splits the triple table into N independent
//! [`XkgStore`] slices (subject-hash partitioned, sharing one term
//! dictionary — see `trinit-xkg`'s `XkgBuilder::build_sharded`). This
//! module runs the *same* staged operator pipeline over all slices at
//! once by swapping only stage 1:
//!
//! * each query pattern gets one [`ShardedMerge`] — a merge-of-merges
//!   holding one [`IncrementalMerge`] per shard, emitting the union of
//!   the shards' posting streams in globally descending probability
//!   order behind the same [`RankSource`] seam the monolithic source
//!   implements;
//! * probabilities are normalized by a [`GlobalTotals`] provider, so a
//!   shard's emissions carry exactly the probability the monolithic
//!   engine would assign them (a shard-local denominator would inflate
//!   them);
//! * the emitted triple ids are remapped into a global id space
//!   (per-shard offset + local id), and the rank join resolves them
//!   through a caller-supplied [`TripleLookup`];
//! * stages 2–4 — the join, threshold/capping policy, and the driver
//!   loop — are literally the monolithic engine's code:
//!   [`run_partitioned`] calls the same
//!   [`drive::run_pipeline`](crate::exec::drive::run_pipeline) with a
//!   `ShardedMerge` factory instead of an `IncrementalMerge` factory.
//!   Each shard's posting-index head bounds enter the merge exactly as
//!   the single store's do, so the global k-th answer terminates the
//!   join as soon as it dominates every shard's remaining frontier —
//!   and the ε-approximate mass criterion sums the shards' remaining
//!   masses into one envelope with the same guarantee.
//!
//! **Soundness / completeness.** The union of the shards' match sets is
//! exactly the monolithic match set (the partition is total and
//! disjoint), and [`ShardedMerge::next_merged`] only emits a shard's
//! head after [`IncrementalMerge::tighten_head`] has made it exact and
//! no other shard's upper bound exceeds it — so the union stream is
//! emitted in the same globally descending order the monolithic merge
//! produces, and every threshold argument of the single-store engine
//! carries over verbatim.

use std::cell::RefCell;
use std::rc::Rc;

use trinit_relax::{ConditionOracle, RuleSet};
use trinit_xkg::{TripleId, XkgStore};

use crate::answer::Answer;
use crate::ast::Query;
use crate::exec::budget::{Completeness, Governor};
use crate::exec::drive::{self, TopkConfig};
use crate::exec::merge::{IncrementalMerge, Merged, RankSource};
use crate::exec::{ExecMetrics, TripleLookup};
use crate::score::{GlobalTotals, PostingCache, SharedPostingCache};

/// Per-pattern sorted access over every shard of a partitioned store:
/// one [`IncrementalMerge`] per shard, pulled head-first across shards.
pub struct ShardedMerge<'a> {
    shards: Vec<IncrementalMerge<'a>>,
    offsets: &'a [u32],
    /// Work counters attributed per shard, shared by every pattern's
    /// merge of one execution (drained into the aggregate at the end).
    metrics: Rc<RefCell<Vec<ExecMetrics>>>,
}

impl RankSource for ShardedMerge<'_> {
    fn peek_bound(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(IncrementalMerge::peek_bound)
            .max_by(f64::total_cmp)
    }

    fn next_merged(&mut self, _metrics: &mut ExecMetrics) -> Option<Merged> {
        let mut shard_metrics = self.metrics.borrow_mut();
        loop {
            // The shard with the highest upper bound (ties to the lowest
            // shard index, keeping emission order deterministic).
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in self.shards.iter().enumerate() {
                if let Some(b) = m.peek_bound() {
                    if best.is_none_or(|(_, cur)| b > cur) {
                        best = Some((i, b));
                    }
                }
            }
            let (i, _) = best?;
            // A bound can be loose (unopened alternatives). Tighten the
            // candidate's head to its exact next probability; if another
            // shard's bound now exceeds it, re-elect.
            let Some(tight) = self.shards[i].tighten_head(&mut shard_metrics[i]) else {
                continue;
            };
            let dominated = self
                .shards
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && m.peek_bound().is_some_and(|b| b > tight));
            if dominated {
                continue;
            }
            let mut merged = self.shards[i]
                .next_merged(&mut shard_metrics[i])
                .expect("tightened head must emit");
            // Remap into the global id space.
            merged.triple = TripleId(self.offsets[i] + merged.triple.0);
            return Some(merged);
        }
    }

    fn remaining_mass(&self) -> f64 {
        // The shards' match sets are disjoint, so their per-slice mass
        // envelopes sum to a sound envelope on the union stream: the
        // sum dominates each shard's own mass, hence every future
        // emission, and also the collective unconsumed mass. O(shards)
        // of O(1) reads — the same order as the head election every
        // emission already pays, and each shard's envelope moves inside
        // `tighten_head`/`next_merged`, so there is no cheaper place to
        // maintain the sum without threading deltas out of them.
        self.shards.iter().map(IncrementalMerge::remaining_mass).sum()
    }
}

/// The result of one partitioned execution.
#[derive(Debug)]
pub struct PartitionedRun {
    /// Top-k answers, best first. Derivation triple ids are global
    /// (shard offset + local id).
    pub answers: Vec<Answer>,
    /// Aggregate work counters, per-shard merge work included.
    pub metrics: ExecMetrics,
    /// Merge-level work (posting lists built, postings scanned, cache
    /// hits, relaxations opened) attributed to each shard.
    pub per_shard: Vec<ExecMetrics>,
    /// The exactness guarantee of `answers`, read off the run's budget
    /// tracker: `Exact` unless an ε/θ criterion genuinely retired work
    /// or a hard budget cutoff fired.
    pub completeness: Completeness,
}

/// Runs incremental top-k over the shards of a partitioned store,
/// returning exactly the answers (keys *and* scores) the monolithic
/// engine returns on the union of the shards.
///
/// * `offsets[i]` is shard `i`'s base in the global triple-id space;
///   `lookup` resolves those global ids.
/// * `totals` supplies cross-shard normalization totals; `oracle`
///   verifies structural-rule data conditions across every shard.
/// * `shard_caches`, when given, holds one store-level posting cache
///   *per shard* (cached lists are slice-specific, so shards must never
///   share one).
/// * `seed` pre-loads the answer collector — a sharded executor passes
///   the answers its parallel per-shard runs already found, so the
///   threshold starts tight. Seeds must carry true (globally
///   normalized) scores and global triple ids.
/// * `governor` carries the query's budget state into the pipeline
///   (pass `Governor::primary` over a fresh
///   [`BudgetTracker`](crate::exec::budget::BudgetTracker) for a
///   standalone run); the returned completeness is read off its
///   tracker.
#[allow(clippy::too_many_arguments)]
pub fn run_partitioned(
    shards: &[&XkgStore],
    offsets: &[u32],
    lookup: &dyn TripleLookup,
    totals: &dyn GlobalTotals,
    oracle: Option<&dyn ConditionOracle>,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shard_caches: Option<&[SharedPostingCache]>,
    seed: Vec<Answer>,
    governor: Governor<'_>,
) -> PartitionedRun {
    assert_eq!(shards.len(), offsets.len(), "one offset per shard");
    if let Some(caches) = shard_caches {
        assert_eq!(caches.len(), shards.len(), "one cache per shard");
    }
    let n_shards = shards.len();
    let mut metrics = ExecMetrics::default();

    // One per-execution posting cache per shard: a cached list holds one
    // slice's entries, so the cache key space is per shard.
    let exec_caches: Vec<Rc<RefCell<PostingCache>>> = (0..n_shards)
        .map(|_| Rc::new(RefCell::new(PostingCache::new())))
        .collect();
    let shard_metrics = Rc::new(RefCell::new(vec![ExecMetrics::default(); n_shards]));

    // The same pipeline as the monolithic engine, assembled around a
    // cross-shard stage-1 source: one IncrementalMerge per shard per
    // pattern, unioned by ShardedMerge behind the RankSource seam.
    let answers = drive::run_pipeline(
        lookup,
        oracle,
        query,
        rules,
        cfg,
        seed,
        &mut metrics,
        governor,
        |pattern, fresh_base| {
            let merges = (0..n_shards)
                .map(|s| {
                    IncrementalMerge::for_pattern(
                        shards[s],
                        pattern,
                        rules,
                        cfg,
                        fresh_base,
                        Rc::clone(&exec_caches[s]),
                        shard_caches.map(|c| &c[s]),
                        Some(totals),
                    )
                })
                .collect();
            ShardedMerge {
                shards: merges,
                offsets,
                metrics: Rc::clone(&shard_metrics),
            }
        },
    );

    let per_shard = shard_metrics.borrow().clone();
    for m in &per_shard {
        metrics.merge(m);
    }
    let completeness = governor.tracker().completeness(&answers);
    PartitionedRun {
        answers,
        metrics,
        per_shard,
        completeness,
    }
}
