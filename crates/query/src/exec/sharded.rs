//! Partitioned top-k execution: the staged pipeline over shard slices.
//!
//! A sharded store splits the triple table into N independent
//! [`XkgStore`] slices (subject-hash partitioned, sharing one term
//! dictionary — see `trinit-xkg`'s `XkgBuilder::build_sharded`). This
//! module runs the *same* staged operator pipeline over all slices at
//! once by swapping only stage 1:
//!
//! * each query pattern gets one [`ShardedMerge`] — a merge-of-merges
//!   holding one [`IncrementalMerge`] per shard, emitting the union of
//!   the shards' posting streams in globally descending probability
//!   order behind the same [`RankSource`] seam the monolithic source
//!   implements;
//! * probabilities are normalized by a [`GlobalTotals`] provider, so a
//!   shard's emissions carry exactly the probability the monolithic
//!   engine would assign them (a shard-local denominator would inflate
//!   them);
//! * the emitted triple ids are remapped into a global id space
//!   (per-shard offset + local id), and the rank join resolves them
//!   through a caller-supplied [`TripleLookup`];
//! * stages 2–4 — the join, threshold/capping policy, and the driver
//!   loop — are literally the monolithic engine's code:
//!   [`run_partitioned`] calls the same
//!   [`drive::run_pipeline`](crate::exec::drive::run_pipeline) with a
//!   `ShardedMerge` factory instead of an `IncrementalMerge` factory.
//!   Each shard's posting-index head bounds enter the merge exactly as
//!   the single store's do, so the global k-th answer terminates the
//!   join as soon as it dominates every shard's remaining frontier —
//!   and the ε-approximate mass criterion sums the shards' remaining
//!   masses into one envelope with the same guarantee.
//!
//! **Soundness / completeness.** The union of the shards' match sets is
//! exactly the monolithic match set (the partition is total and
//! disjoint), and [`ShardedMerge::next_merged`] only emits a shard's
//! head after [`IncrementalMerge::tighten_head`] has made it exact and
//! no other shard's upper bound exceeds it — so the union stream is
//! emitted in the same globally descending order the monolithic merge
//! produces, and every threshold argument of the single-store engine
//! carries over verbatim.
//!
//! **Election cost.** The best shard is elected from a small max-heap
//! keyed by per-shard bounds (O(log shards) per emission instead of a
//! linear rescan), and the union's remaining-mass envelope is an
//! incrementally maintained sum (O(1) per read). The heap's entries are
//! always exact: a shard's bound only moves inside its own `&mut` calls
//! (`tighten_head` / `next_merged`), each of which is followed by a
//! re-push here — the emission order is property-pinned identical to
//! the linear-scan election at 1/2/4/7 shards.
//!
//! A slice need not be a subject-hash shard: segmented (base + delta)
//! stores pass their segments as extra slices, and the `restrict`
//! parameter of [`run_partitioned`] confines one query pattern to a
//! sub-range of slices — the seam semi-naive delta queries ("which
//! answers did this batch introduce?") are built on.

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::rc::Rc;

use trinit_obs::{now_ns, SpanRecord, Stage, TraceRecorder};
use trinit_relax::{ConditionOracle, RuleSet};
use trinit_xkg::{TripleId, XkgStore};

use crate::answer::Answer;
use crate::ast::Query;
use crate::exec::budget::{Completeness, Governor};
use crate::exec::drive::{self, TopkConfig};
use crate::exec::merge::{IncrementalMerge, Merged, RankSource};
use crate::exec::{ExecMetrics, TripleLookup};
use crate::score::{GlobalTotals, PostingCache, SharedPostingCache};

/// One shard's standing in the election: its current exact upper bound.
/// Max-heap order — higher bound first, ties to the lowest shard index
/// (keeping emission order deterministic and identical to the previous
/// linear scan's first-maximum election).
struct ShardEntry {
    bound: f64,
    idx: usize,
}

impl PartialEq for ShardEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.idx == other.idx
    }
}

impl Eq for ShardEntry {}

impl PartialOrd for ShardEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ShardEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// Per-pattern sorted access over every shard of a partitioned store:
/// one [`IncrementalMerge`] per shard, pulled head-first across shards
/// via a bound-keyed max-heap.
pub struct ShardedMerge<'a> {
    shards: Vec<IncrementalMerge<'a>>,
    /// Each shard's base in the global triple-id space (parallel to
    /// `shards`).
    offsets: Vec<u32>,
    /// Each shard's slot in the shared `metrics` vector (parallel to
    /// `shards`; restricted merges cover a sub-range of the slots).
    slots: Vec<usize>,
    /// Work counters attributed per shard, shared by every pattern's
    /// merge of one execution (drained into the aggregate at the end).
    metrics: Rc<RefCell<Vec<ExecMetrics>>>,
    /// Election heap: exactly one entry per non-exhausted shard, each
    /// carrying the shard's *current* [`IncrementalMerge::peek_bound`]
    /// (bounds move only inside that shard's `&mut` calls, which
    /// re-push here).
    heap: BinaryHeap<ShardEntry>,
    /// Incrementally maintained sum of the shards' remaining-mass
    /// envelopes: deltas are folded in around every `tighten_head` /
    /// `next_merged`, making [`RankSource::remaining_mass`] O(1).
    mass: f64,
    /// Elections in the current observation window (see
    /// [`RankSource::next_merged`]'s batching: one [`Stage::Election`]
    /// span per 64 elections keeps the clock off the per-pull path).
    obs_elections: u32,
    /// Wall start of the current election window.
    obs_window_start: u64,
}

impl<'a> ShardedMerge<'a> {
    fn new(
        shards: Vec<IncrementalMerge<'a>>,
        offsets: Vec<u32>,
        slots: Vec<usize>,
        metrics: Rc<RefCell<Vec<ExecMetrics>>>,
    ) -> ShardedMerge<'a> {
        let heap = shards
            .iter()
            .enumerate()
            .filter_map(|(idx, m)| m.peek_bound().map(|bound| ShardEntry { bound, idx }))
            .collect();
        let mass = shards.iter().map(IncrementalMerge::remaining_mass).sum();
        ShardedMerge {
            shards,
            offsets,
            slots,
            metrics,
            heap,
            mass,
            obs_elections: 0,
            obs_window_start: 0,
        }
    }

    /// Runs `f` against shard `i`'s merge, folding the move of its mass
    /// envelope into the incrementally tracked union sum. The work `f`
    /// records lands in **both** the shard's per-shard slot and the
    /// caller's aggregate metrics (`passed`), so monolithic and sharded
    /// accounting read the same way — the aggregate sees merge-phase
    /// pulls as they happen, the slots keep per-shard attribution.
    fn with_mass_delta<T>(
        &mut self,
        i: usize,
        passed: &mut ExecMetrics,
        f: impl FnOnce(&mut IncrementalMerge<'a>, &mut ExecMetrics) -> T,
    ) -> T {
        let slot = self.slots[i];
        let before = self.shards[i].remaining_mass();
        let mut local = ExecMetrics::default();
        let out = f(&mut self.shards[i], &mut local);
        self.mass += self.shards[i].remaining_mass() - before;
        self.metrics.borrow_mut()[slot].merge(&local);
        passed.merge(&local);
        out
    }
}

impl RankSource for ShardedMerge<'_> {
    fn peek_bound(&self) -> Option<f64> {
        // The heap invariant (one exact entry per live shard) makes the
        // top the max over all shards' current bounds.
        self.heap.peek().map(|e| e.bound)
    }

    fn next_merged(
        &mut self,
        metrics: &mut ExecMetrics,
        recorder: &mut TraceRecorder,
    ) -> Option<Merged> {
        let obs_on = recorder.is_enabled();
        if obs_on && self.obs_elections == 0 {
            self.obs_window_start = now_ns();
        }
        let out = loop {
            // The shard with the highest upper bound (ties to the lowest
            // shard index).
            let Some(ShardEntry { idx: i, .. }) = self.heap.pop() else {
                break None;
            };
            // A bound can be loose (unopened alternatives). Tighten the
            // candidate's head to its exact next probability; if another
            // shard's bound now exceeds it, re-elect.
            let tightened = self.with_mass_delta(i, metrics, |shard, m| shard.tighten_head(m));
            let Some(tight) = tightened else {
                // Exhausted while tightening — drop out of the election
                // (re-enter only if a bound somehow remains).
                if let Some(bound) = self.shards[i].peek_bound() {
                    self.heap.push(ShardEntry { bound, idx: i });
                }
                continue;
            };
            if self.heap.peek().is_some_and(|top| top.bound > tight) {
                self.heap.push(ShardEntry {
                    bound: tight,
                    idx: i,
                });
                continue;
            }
            let Some(mut merged) = self
                .with_mass_delta(i, metrics, |shard, m| shard.next_merged(m))
            else {
                // A just-tightened head always emits; if the invariant
                // ever broke, dropping the shard from this election
                // degrades to a skipped emission instead of panicking.
                continue;
            };
            if let Some(bound) = self.shards[i].peek_bound() {
                self.heap.push(ShardEntry { bound, idx: i });
            }
            // Remap into the global id space.
            merged.triple = TripleId(self.offsets[i] + merged.triple.0);
            break Some(merged);
        };
        if obs_on {
            self.obs_elections += 1;
            if self.obs_elections >= 64 {
                self.flush_election_window(recorder);
            }
        }
        out
    }

    fn remaining_mass(&self) -> f64 {
        // The shards' match sets are disjoint, so their per-slice mass
        // envelopes sum to a sound envelope on the union stream: the
        // sum dominates each shard's own mass, hence every future
        // emission, and also the collective unconsumed mass. The sum is
        // tracked incrementally around the per-shard calls that move it.
        self.mass.max(0.0)
    }

    fn finish_obs(&mut self, recorder: &mut TraceRecorder) {
        if recorder.is_enabled() {
            self.flush_election_window(recorder);
        }
    }
}

impl ShardedMerge<'_> {
    /// Record the pending [`Stage::Election`] window span (covers the
    /// wall interval its `detail` elections ran in) and reset it.
    fn flush_election_window(&mut self, recorder: &mut TraceRecorder) {
        if self.obs_elections == 0 {
            return;
        }
        let now = now_ns();
        recorder.record_span(SpanRecord {
            stage: Stage::Election,
            detail: self.obs_elections,
            start_ns: self.obs_window_start,
            dur_ns: now.saturating_sub(self.obs_window_start),
        });
        self.obs_window_start = now;
        self.obs_elections = 0;
    }
}

/// The result of one partitioned execution.
#[derive(Debug)]
pub struct PartitionedRun {
    /// Top-k answers, best first. Derivation triple ids are global
    /// (shard offset + local id).
    pub answers: Vec<Answer>,
    /// Aggregate work counters, per-shard merge work included.
    pub metrics: ExecMetrics,
    /// Merge-level work (posting lists built, postings scanned, cache
    /// hits, relaxations opened) attributed to each shard.
    pub per_shard: Vec<ExecMetrics>,
    /// The exactness guarantee of `answers`, read off the run's budget
    /// tracker: `Exact` unless an ε/θ criterion genuinely retired work
    /// or a hard budget cutoff fired.
    pub completeness: Completeness,
}

/// Runs incremental top-k over the shards of a partitioned store,
/// returning exactly the answers (keys *and* scores) the monolithic
/// engine returns on the union of the shards.
///
/// * `offsets[i]` is shard `i`'s base in the global triple-id space;
///   `lookup` resolves those global ids.
/// * `totals` supplies cross-shard normalization totals; `oracle`
///   verifies structural-rule data conditions across every slice.
/// * `shard_caches`, when given, holds one store-level posting cache
///   per *leading* slice (cached lists are slice-specific, so slices
///   must never share one); trailing slices — e.g. freshly built delta
///   segments, whose lists change every ingest — run uncached.
/// * `seed` pre-loads the answer collector — a sharded executor passes
///   the answers its parallel per-shard runs already found, so the
///   threshold starts tight. Seeds must carry true (globally
///   normalized) scores and global triple ids.
/// * `governor` carries the query's budget state into the pipeline
///   (pass `Governor::primary` over a fresh
///   [`BudgetTracker`](crate::exec::budget::BudgetTracker) for a
///   standalone run); the returned completeness is read off its
///   tracker.
/// * `restrict`, when `Some((j, range))`, confines query pattern `j`'s
///   merge source to the slice sub-range `range` — the semi-naive
///   delta-query seam: a pattern restricted to the delta slices matches
///   only newly ingested triples, while every other pattern still reads
///   the full union. Scores stay exact because `totals` normalizes over
///   the whole store either way.
/// * `recorder` receives the run's stage spans (variant spans, pull
///   windows, election windows, threshold/cutoff events); pass
///   [`TraceRecorder::off`] for an uninstrumented run.
#[allow(clippy::too_many_arguments)]
pub fn run_partitioned(
    shards: &[&XkgStore],
    offsets: &[u32],
    lookup: &dyn TripleLookup,
    totals: &dyn GlobalTotals,
    oracle: Option<&dyn ConditionOracle>,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shard_caches: Option<&[SharedPostingCache]>,
    seed: Vec<Answer>,
    governor: Governor<'_>,
    restrict: Option<(usize, Range<usize>)>,
    recorder: &mut TraceRecorder,
) -> PartitionedRun {
    assert_eq!(shards.len(), offsets.len(), "one offset per shard");
    if let Some(caches) = shard_caches {
        assert!(
            caches.len() <= shards.len(),
            "at most one cache per slice, leading slices first"
        );
    }
    if let Some((_, range)) = &restrict {
        assert!(
            range.start < range.end && range.end <= shards.len(),
            "restricted slice range out of bounds"
        );
    }
    let n_shards = shards.len();
    let mut metrics = ExecMetrics::default();

    // One per-execution posting cache per shard: a cached list holds one
    // slice's entries, so the cache key space is per shard.
    let exec_caches: Vec<Rc<RefCell<PostingCache>>> = (0..n_shards)
        .map(|_| Rc::new(RefCell::new(PostingCache::new())))
        .collect();
    let shard_metrics = Rc::new(RefCell::new(vec![ExecMetrics::default(); n_shards]));

    // The same pipeline as the monolithic engine, assembled around a
    // cross-shard stage-1 source: one IncrementalMerge per shard per
    // pattern, unioned by ShardedMerge behind the RankSource seam.
    let answers = drive::run_pipeline(
        lookup,
        oracle,
        query,
        rules,
        cfg,
        seed,
        &mut metrics,
        governor,
        recorder,
        |pattern, fresh_base, position| {
            let range = match &restrict {
                Some((j, range)) if *j == position => range.clone(),
                _ => 0..n_shards,
            };
            let merges = range
                .clone()
                .map(|s| {
                    IncrementalMerge::for_pattern(
                        shards[s],
                        pattern,
                        rules,
                        cfg,
                        fresh_base,
                        Rc::clone(&exec_caches[s]),
                        shard_caches.and_then(|c| c.get(s)),
                        Some(totals),
                    )
                })
                .collect();
            ShardedMerge::new(
                merges,
                range.clone().map(|s| offsets[s]).collect(),
                range.collect(),
                Rc::clone(&shard_metrics),
            )
        },
    );

    // No end-fold: per-shard merge work already flowed into the
    // aggregate at call time (ShardedMerge::with_mass_delta records
    // into both the shard slot and the passed metrics), so folding the
    // slots here would double-count it.
    let per_shard = shard_metrics.borrow().clone();
    let completeness = governor.tracker().completeness(&answers);
    PartitionedRun {
        answers,
        metrics,
        per_shard,
        completeness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::segmented::SegmentedExec;
    use trinit_relax::QPattern;
    use trinit_xkg::XkgBuilder;

    fn builder() -> XkgBuilder {
        let mut b = XkgBuilder::new();
        for i in 0..60u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{}", i % 6));
            if i % 2 == 0 {
                let s = b.dict_mut().resource(&format!("s{i}"));
                let p = b.dict_mut().token("close to");
                let o = b.dict_mut().resource(&format!("o{}", (i + 1) % 6));
                let src = b.intern_source(&format!("doc{i}"));
                b.add_extracted(s, p, o, 0.3 + (i % 7) as f32 * 0.09, src);
            }
        }
        b
    }

    /// The previous election algorithm, kept verbatim as the reference:
    /// a linear scan for the highest bound (ties to the lowest index),
    /// tighten, linear dominance re-check, emit.
    fn reference_next(
        shards: &mut [IncrementalMerge<'_>],
        offsets: &[u32],
        metrics: &mut [ExecMetrics],
    ) -> Option<Merged> {
        loop {
            let mut best: Option<(usize, f64)> = None;
            for (i, m) in shards.iter().enumerate() {
                if let Some(b) = m.peek_bound() {
                    if best.is_none_or(|(_, cur)| b > cur) {
                        best = Some((i, b));
                    }
                }
            }
            let (i, _) = best?;
            let Some(tight) = shards[i].tighten_head(&mut metrics[i]) else {
                continue;
            };
            let dominated = shards
                .iter()
                .enumerate()
                .any(|(j, m)| j != i && m.peek_bound().is_some_and(|b| b > tight));
            if dominated {
                continue;
            }
            let mut merged = shards[i]
                .next_merged(&mut metrics[i])
                .expect("tightened head must emit");
            merged.triple = TripleId(offsets[i] + merged.triple.0);
            return Some(merged);
        }
    }

    fn merges_for<'a>(
        slices: &'a [XkgStore],
        pattern: &QPattern,
        rules: &'a RuleSet,
        cfg: &'a TopkConfig,
        totals: &'a dyn GlobalTotals,
    ) -> Vec<IncrementalMerge<'a>> {
        slices
            .iter()
            .map(|s| {
                IncrementalMerge::for_pattern(
                    s,
                    pattern,
                    rules,
                    cfg,
                    8,
                    Rc::new(RefCell::new(PostingCache::new())),
                    None,
                    Some(totals),
                )
            })
            .collect()
    }

    #[test]
    fn heap_election_is_emission_order_identical_to_linear_scan() {
        let b = builder();
        let probe = {
            let store = b.clone().build();
            store.resource("p").unwrap()
        };
        for n in [1usize, 2, 4, 7] {
            let slices = b.clone().build_sharded(n);
            let refs: Vec<&XkgStore> = slices.iter().collect();
            let mut offsets = Vec::new();
            let mut base = 0u32;
            for s in &slices {
                offsets.push(base);
                base += s.len() as u32;
            }
            let exec = SegmentedExec::new(&refs, &offsets);
            let rules = RuleSet::new();
            let cfg = TopkConfig::default();
            // Both shapes the merge serves heavily: predicate-bound and
            // fully unbound.
            for pattern in [
                QPattern::new(
                    trinit_relax::QTerm::Var(trinit_relax::VarId(0)),
                    trinit_relax::QTerm::Term(probe),
                    trinit_relax::QTerm::Var(trinit_relax::VarId(1)),
                ),
                QPattern::new(
                    trinit_relax::QTerm::Var(trinit_relax::VarId(0)),
                    trinit_relax::QTerm::Var(trinit_relax::VarId(2)),
                    trinit_relax::QTerm::Var(trinit_relax::VarId(1)),
                ),
            ] {
                let mut reference = merges_for(&slices, &pattern, &rules, &cfg, &exec);
                let mut ref_metrics = vec![ExecMetrics::default(); n];
                let heap_metrics = Rc::new(RefCell::new(vec![ExecMetrics::default(); n]));
                let mut heap_merge = ShardedMerge::new(
                    merges_for(&slices, &pattern, &rules, &cfg, &exec),
                    offsets.clone(),
                    (0..n).collect(),
                    Rc::clone(&heap_metrics),
                );
                let mut scratch = ExecMetrics::default();
                let mut emitted = 0usize;
                loop {
                    // The incremental mass sum must always agree with a
                    // re-sum of the per-shard envelopes.
                    let resummed: f64 = heap_merge
                        .shards
                        .iter()
                        .map(IncrementalMerge::remaining_mass)
                        .sum();
                    assert!(
                        (heap_merge.remaining_mass() - resummed.max(0.0)).abs() < 1e-9,
                        "mass drifted from re-sum at {n} shards after {emitted} emissions"
                    );
                    let want = reference_next(&mut reference, &offsets, &mut ref_metrics);
                    let got = heap_merge.next_merged(&mut scratch, &mut TraceRecorder::off());
                    match (want, got) {
                        (None, None) => break,
                        (Some(w), Some(g)) => {
                            assert_eq!(w.triple, g.triple, "{n} shards, emission {emitted}");
                            assert_eq!(
                                w.prob.to_bits(),
                                g.prob.to_bits(),
                                "{n} shards, emission {emitted}"
                            );
                            assert_eq!(w.pattern, g.pattern);
                        }
                        (w, g) => panic!(
                            "streams diverge at {n} shards, emission {emitted}: \
                             reference {w:?} vs heap {g:?}"
                        ),
                    }
                    emitted += 1;
                }
                assert!(emitted > 0, "fixture must emit");
                assert_eq!(heap_merge.peek_bound(), None, "drained merge still bounds");
                // Identical per-shard work too: the elections visited the
                // same shards in the same order.
                assert_eq!(&*heap_metrics.borrow(), &ref_metrics);
                // Shard-pull attribution: the metrics passed into
                // `next_merged` receive exactly the union of the
                // per-shard slots — monolithic and sharded accounting
                // read the same way, with no work visible only in the
                // slots.
                let mut folded = ExecMetrics::default();
                for m in heap_metrics.borrow().iter() {
                    folded.merge(m);
                }
                assert_eq!(scratch, folded);
            }
        }
    }
}
