//! Exact conjunctive evaluation (no relaxation).
//!
//! Backtracking index-nested-loop join in the order chosen by
//! [`crate::plan`]. Scores use the *as-written* pattern probabilities
//! (see [`crate::score`]): the probability of a match is computed against
//! the pattern's full match set, not the partially-bound lookup used for
//! enumeration — enumeration strategy must not change scores.

use std::collections::HashMap;

use trinit_relax::{QPattern, QTerm, RuleId};
use trinit_xkg::{SlotPattern, TripleId, XkgStore};

use crate::answer::{Answer, Bindings, Derivation};
use crate::ast::Query;
use crate::exec::ExecMetrics;
use crate::plan::plan_order;
use crate::score::{ln_weight, ScoredMatches};

/// Evaluates a conjunctive pattern list exhaustively.
///
/// Every complete assignment becomes an [`Answer`] whose score is the sum
/// of pattern log-probabilities plus `ln(rule_weight)` for the supplied
/// relaxation trace (empty trace and weight 1.0 for an unrelaxed query).
pub fn evaluate(
    store: &XkgStore,
    query: &Query,
    patterns: &[QPattern],
    rule_trace: &[RuleId],
    rule_weight: f64,
    metrics: &mut ExecMetrics,
) -> Vec<Answer> {
    let projection = query.effective_projection();
    if patterns.is_empty() {
        return Vec::new();
    }

    // Scorers for the as-written patterns.
    let scorers: Vec<ScoredMatches<'_>> = patterns
        .iter()
        .map(|p| {
            metrics.posting_lists_built += 1;
            ScoredMatches::build(store, p)
        })
        .collect();
    if scorers.iter().any(ScoredMatches::is_empty) {
        return Vec::new();
    }
    // O(1) probability probes for the join recursion (a linear scan per
    // candidate would make the join quadratic in the match-set size).
    let prob_maps: Vec<HashMap<TripleId, f64>> = scorers
        .iter()
        .map(|s| s.entries().iter().map(|e| (e.triple, e.prob)).collect())
        .collect();

    let order = plan_order(store, patterns);
    let n_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m as usize + 1);

    let mut out = Vec::new();
    let mut bindings = Bindings::new(n_vars);
    let mut matched: Vec<MatchedTriple> = Vec::with_capacity(patterns.len());
    // One candidate scratch buffer per join depth: Packed segments decode
    // probe ranges into these instead of allocating per probe (Flat
    // segments borrow and never touch them).
    let mut scratch: Vec<Vec<TripleId>> = vec![Vec::new(); order.len()];
    let base_score = ln_weight(rule_weight);

    recurse(
        store,
        patterns,
        &prob_maps,
        &order,
        0,
        &mut bindings,
        &mut matched,
        &mut scratch,
        base_score,
        &mut |bindings, matched, score| {
            out.push(Answer {
                key: bindings.project(&projection),
                bindings: bindings.clone(),
                score,
                derivation: Derivation {
                    triples: matched.to_vec(),
                    rules: rule_trace.to_vec(),
                    rule_weight,
                },
            });
        },
        metrics,
    );
    out
}

/// A match emitted during join recursion: the pattern as evaluated and
/// the triple that satisfied it.
type MatchedTriple = (QPattern, trinit_xkg::TripleId);

/// Substitutes current bindings into a pattern for index lookup.
fn substituted(pattern: &QPattern, bindings: &Bindings) -> SlotPattern {
    let slot = |t: QTerm| match t {
        QTerm::Term(id) => Some(id),
        QTerm::Var(v) => bindings.get(v),
    };
    SlotPattern::new(slot(pattern.s), slot(pattern.p), slot(pattern.o))
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    store: &XkgStore,
    patterns: &[QPattern],
    prob_maps: &[HashMap<TripleId, f64>],
    order: &[usize],
    depth: usize,
    bindings: &mut Bindings,
    matched: &mut Vec<MatchedTriple>,
    scratch: &mut Vec<Vec<TripleId>>,
    score: f64,
    emit: &mut dyn FnMut(&Bindings, &[MatchedTriple], f64),
    metrics: &mut ExecMetrics,
) {
    let Some(&pi) = order.get(depth) else {
        emit(bindings, matched, score);
        return;
    };
    let pattern = &patterns[pi];
    let lookup = substituted(pattern, bindings);
    // This depth's scratch buffer is taken for the duration of the probe
    // loop (deeper recursion uses its own depth's buffer) and returned
    // below, so a Packed decode's allocation is reused across probes.
    let mut buf = std::mem::take(scratch.get_mut(depth).map_or(&mut Vec::new(), |b| b));
    let candidates = store.lookup_in(&lookup, &mut buf);
    // Validate-then-bind with undo: candidate compatibility is checked
    // against the shared assignment in place, so a failing candidate
    // costs no allocation (the old per-candidate `Bindings` clone made
    // every rejected triple pay for the accepted ones).
    let mut newly_bound: Vec<trinit_relax::VarId> = Vec::with_capacity(3);
    for &id in candidates {
        metrics.postings_scanned += 1;
        let t = store.triple(id);
        newly_bound.clear();
        let mut ok = true;
        for (slot, value) in pattern.slots().into_iter().zip([t.s, t.p, t.o]) {
            if let QTerm::Var(v) = slot {
                if !bindings.try_bind_recorded(v, value, &mut newly_bound) {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            metrics.join_candidates += 1;
            let prob = prob_maps[pi].get(&id).copied().unwrap_or(0.0);
            let step = ln_weight(prob);
            matched.push((*pattern, id));
            recurse(
                store,
                patterns,
                prob_maps,
                order,
                depth + 1,
                bindings,
                matched,
                scratch,
                score + step,
                emit,
                metrics,
            );
            matched.pop();
        }
        for &v in &newly_bound {
            bindings.unbind(v);
        }
    }
    if let Some(slot) = scratch.get_mut(depth) {
        *slot = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        b.add_kg_resources("MaxPlanck", "bornIn", "Kiel");
        b.add_kg_resources("Ulm", "locatedIn", "Germany");
        b.add_kg_resources("Kiel", "locatedIn", "Germany");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        b.build()
    }

    fn eval(store: &XkgStore, query: &Query) -> Vec<Answer> {
        let mut m = ExecMetrics::default();
        evaluate(store, query, &query.patterns, &[], 1.0, &mut m)
    }

    #[test]
    fn single_pattern_query() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .build();
        let answers = eval(&store, &q);
        assert_eq!(answers.len(), 1);
        let einstein = store.resource("AlbertEinstein").unwrap();
        assert_eq!(answers[0].key[0].1, Some(einstein));
        assert!(answers[0].derivation.is_exact());
    }

    #[test]
    fn join_query_who_born_in_germany_city() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "bornIn", "c")
            .pattern_v_r_r("c", "locatedIn", "Germany")
            .project(&["x"])
            .build();
        let answers = eval(&store, &q);
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn unsatisfiable_query_returns_empty() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Atlantis")
            .build();
        assert!(eval(&store, &q).is_empty());
    }

    #[test]
    fn join_on_shared_variable_filters() {
        let store = store();
        // Who is born in Ulm AND affiliated with IAS? Only Einstein.
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .pattern_v_r_r("x", "affiliation", "IAS")
            .build();
        let answers = eval(&store, &q);
        assert_eq!(answers.len(), 1);
        // And Planck born-in-Ulm + IAS affiliation is empty.
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Kiel")
            .pattern_v_r_r("x", "affiliation", "IAS")
            .build();
        assert!(eval(&store, &q).is_empty());
    }

    #[test]
    fn scores_are_join_order_independent() {
        let store = store();
        let q1 = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "bornIn", "c")
            .pattern_v_r_r("c", "locatedIn", "Germany")
            .build();
        let q2 = QueryBuilder::new(&store)
            .pattern_v_r_r("c", "locatedIn", "Germany")
            .pattern_v_r_v("x", "bornIn", "c")
            .build();
        let mut a1 = eval(&store, &q1);
        let mut a2 = eval(&store, &q2);
        let sort = |v: &mut Vec<Answer>| {
            v.sort_by(|a, b| a.score.total_cmp(&b.score));
        };
        sort(&mut a1);
        sort(&mut a2);
        assert_eq!(a1.len(), a2.len());
        for (x, y) in a1.iter().zip(&a2) {
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }

    #[test]
    fn ground_pattern_contributes_score_only() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .build();
        let answers = eval(&store, &q);
        assert_eq!(answers.len(), 1);
        // P = 1.0 for the unique match → log score 0.
        assert!(answers[0].score.abs() < 1e-9);
    }

    #[test]
    fn rule_weight_attenuates_score() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "bornIn", "Ulm")
            .build();
        let mut m = ExecMetrics::default();
        let full = evaluate(&store, &q, &q.patterns, &[], 1.0, &mut m);
        let relaxed = evaluate(&store, &q, &q.patterns, &[RuleId(0)], 0.5, &mut m);
        assert!((relaxed[0].score - (full[0].score + 0.5f64.ln())).abs() < 1e-9);
        assert!(!relaxed[0].derivation.is_exact());
    }

    #[test]
    fn metrics_count_work() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "bornIn", "c")
            .pattern_v_r_r("c", "locatedIn", "Germany")
            .build();
        let mut m = ExecMetrics::default();
        let _ = evaluate(&store, &q, &q.patterns, &[], 1.0, &mut m);
        assert_eq!(m.posting_lists_built, 2);
        assert!(m.postings_scanned > 0);
        assert!(m.join_candidates > 0);
    }
}
