//! Stage 1 of the top-k operator pipeline: **sorted-access sources**.
//!
//! This module owns everything that turns one query pattern into a
//! stream of scored matches in globally descending probability order:
//!
//! * **Pattern alternatives** — the pattern plus its relaxed forms under
//!   single-pattern rules (chained up to a depth), each with a combined
//!   weight ([`pattern_alternatives`]).
//! * **[`IncrementalMerge`]** — a priority queue over one pattern's
//!   alternatives (Theobald et al. style). Unopened alternatives are
//!   held at their upper bound; an alternative's posting list is
//!   materialized only when that bound rises to the top — the paper's
//!   "invoked only when it can contribute" behaviour.
//! * **[`RankSource`]** — the seam to stage 2 (the rank join,
//!   [`crate::exec::join`]): a source of emissions in descending order
//!   with a sound upper bound on the next one and an O(1) bound on the
//!   collective remaining emission mass. `IncrementalMerge` is the
//!   single-store source; the sharded engine's
//!   [`crate::exec::sharded::ShardedMerge`] implements the same seam
//!   over one merge per shard, so every stage above this one is shared
//!   verbatim between monolithic and partitioned execution.
//!
//! The remaining-mass envelope exposed through
//! [`RankSource::remaining_mass`] is tracked O(1) — via the posting
//! index's prefix-sum columns for index-served lists, an incremental
//! consumed-weight cursor otherwise. It provably dominates the frontier
//! (a property test pins the invariant), serving as the exact engine's
//! verified soundness envelope and as the **load-bearing termination
//! criterion** of the ε-approximate mode
//! ([`crate::exec::drive::TopkConfig::epsilon`], enforced by
//! [`crate::exec::threshold`]).

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::rc::Rc;

use trinit_obs::TraceRecorder;
use trinit_relax::{apply_rule, QPattern, QTerm, Rule, RuleId, RuleSet, VarId};
use trinit_xkg::{TripleId, XkgStore};

use crate::exec::drive::TopkConfig;
use crate::exec::ExecMetrics;
use crate::score::{
    head_prob_bound_global, CacheSource, GlobalTotals, PostingCache, ScoredMatches,
    SharedPostingCache,
};

/// True if a rule can participate in per-pattern incremental merging:
/// one pattern in, one pattern out, constant LHS predicate.
pub(crate) fn is_mergeable(rule: &Rule) -> bool {
    rule.lhs.len() == 1 && rule.rhs.len() == 1 && rule.lhs_predicate().is_some()
}

/// One relaxed form of a single pattern.
#[derive(Debug, Clone)]
pub(crate) struct Alternative<'s> {
    pub(crate) pattern: QPattern,
    pub(crate) weight: f64,
    pub(crate) trace: Vec<RuleId>,
    pub(crate) matches: Option<ScoredMatches<'s>>,
    /// Sound upper bound on this alternative's best emission probability
    /// before its list is opened: the exact head probability for
    /// index-served shapes under the tightened threshold, 1.0 otherwise.
    pub(crate) head_bound: f64,
}

/// Computes the alternatives of one pattern under the mergeable rules.
///
/// `fresh_base` is the first variable id this pattern may allocate for
/// RHS-fresh rule variables; callers give each pattern a disjoint range
/// so fresh variables of different streams never alias.
pub(crate) fn pattern_alternatives<'s>(
    pattern: &QPattern,
    rules: &RuleSet,
    cfg: &TopkConfig,
    fresh_base: u16,
) -> Vec<Alternative<'s>> {
    let mut out: Vec<Alternative<'s>> = vec![Alternative {
        pattern: *pattern,
        weight: 1.0,
        trace: Vec::new(),
        matches: None,
        head_bound: 1.0,
    }];
    let mut fresh_next = fresh_base;
    let mut frontier = vec![0usize]; // indices into `out`
    for _ in 0..cfg.chain_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_pattern, cur_weight, cur_trace) = {
                let a = &out[idx];
                (a.pattern, a.weight, a.trace.clone())
            };
            let Some(pred) = cur_pattern.p.term() else {
                continue;
            };
            for &rule_id in rules.rules_for_predicate(pred) {
                let rule = rules.get(rule_id);
                if !is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule(&[cur_pattern], rule, rule_id) {
                    let [new_pattern] = rewriting.patterns.as_slice() else {
                        continue;
                    };
                    // Remap any fresh variables into this pattern's range.
                    let new_pattern = remap_fresh(*new_pattern, &cur_pattern, &mut fresh_next);
                    match out.iter_mut().find(|a| a.pattern == new_pattern) {
                        Some(existing) => {
                            if weight > existing.weight {
                                existing.weight = weight;
                                existing.trace = cur_trace
                                    .iter()
                                    .copied()
                                    .chain(std::iter::once(rule_id))
                                    .collect();
                            }
                        }
                        None => {
                            if out.len() >= cfg.max_alternatives {
                                continue;
                            }
                            let mut trace = cur_trace.clone();
                            trace.push(rule_id);
                            out.push(Alternative {
                                pattern: new_pattern,
                                weight,
                                trace,
                                matches: None,
                                head_bound: 1.0,
                            });
                            next_frontier.push(out.len() - 1);
                        }
                    }
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Remaps variables of `pattern` that do not occur in `origin` (i.e.
/// rule-introduced fresh variables) into the caller-controlled range.
fn remap_fresh(pattern: QPattern, origin: &QPattern, fresh_next: &mut u16) -> QPattern {
    let origin_vars: Vec<VarId> = origin.vars().collect();
    let mut mapping: Vec<(VarId, VarId)> = Vec::new();
    let map = |t: QTerm, fresh_next: &mut u16, mapping: &mut Vec<(VarId, VarId)>| match t {
        QTerm::Var(v) if !origin_vars.contains(&v) => {
            if let Some(&(_, nv)) = mapping.iter().find(|(old, _)| *old == v) {
                QTerm::Var(nv)
            } else {
                let nv = VarId(*fresh_next);
                *fresh_next += 1;
                mapping.push((v, nv));
                QTerm::Var(nv)
            }
        }
        other => other,
    };
    QPattern::new(
        map(pattern.s, fresh_next, &mut mapping),
        map(pattern.p, fresh_next, &mut mapping),
        map(pattern.o, fresh_next, &mut mapping),
    )
}

/// Heap entry of the incremental merge: an alternative keyed by an upper
/// bound on its next emission.
#[derive(Debug)]
struct MergeEntry {
    bound: f64,
    alt: usize,
    opened: bool,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.alt == other.alt && self.opened == other.opened
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.alt.cmp(&self.alt))
    }
}

/// A source of rank-join stream items: emissions in globally descending
/// combined-probability order with a sound upper bound on the next one —
/// the narrow seam between the merge stage and the join stage.
///
/// [`IncrementalMerge`] is the single-store source; the sharded executor
/// merges one `IncrementalMerge` per shard into a
/// [`crate::exec::sharded::ShardedMerge`]. The rank join itself is
/// generic over this trait, so partitioned execution reuses the exact
/// join, threshold, and capping machinery of the monolithic engine.
pub trait RankSource {
    /// Upper bound on the probability of the next emission, or `None`
    /// if exhausted.
    fn peek_bound(&self) -> Option<f64>;

    /// Produces the next emission in descending order. `recorder`
    /// receives source-level spans (the sharded union batches election
    /// windows into it); the single-store source ignores it.
    fn next_merged(&mut self, metrics: &mut ExecMetrics, recorder: &mut TraceRecorder)
        -> Option<Merged>;

    /// Flush any batched span state into `recorder` — called once per
    /// stream when the rank join over it ends. Default: nothing.
    fn finish_obs(&mut self, _recorder: &mut TraceRecorder) {}

    /// Sound upper bound on the *collective* probability mass of every
    /// emission this source can still produce — hence also on each
    /// single one. Always ≥ [`RankSource::peek_bound`]. Must be cheap
    /// enough to read once per stream per pull round: O(1) for the
    /// single-store source (incrementally tracked), O(shards) summing
    /// per-shard O(1) envelopes for the sharded union — both dominated
    /// by the pull itself. The ε-approximate mode's termination
    /// criterion reads this envelope (see
    /// [`crate::exec::threshold::ThresholdPolicy`]).
    fn remaining_mass(&self) -> f64;
}

/// An emission of the incremental merge.
#[derive(Debug, Clone)]
pub struct Merged {
    /// The matched triple.
    pub triple: TripleId,
    /// Combined probability `w_alt × P(t | alt pattern)`.
    pub prob: f64,
    /// The alternative's pattern (needed to bind variables).
    pub pattern: QPattern,
    /// Rules on the alternative's chain.
    pub trace: Vec<RuleId>,
    /// The alternative's weight.
    pub weight: f64,
}

/// Incremental merge over one pattern's alternatives (Theobald et al.
/// style): emits matches across all alternatives in globally descending
/// combined-probability order, opening an alternative's posting list only
/// when its upper bound reaches the top of the queue.
pub struct IncrementalMerge<'a> {
    store: &'a XkgStore,
    alts: Vec<Alternative<'a>>,
    heap: BinaryHeap<MergeEntry>,
    /// Shared per-execution posting cache: structural variants and
    /// alternatives with the same canonical pattern reuse one
    /// materialized list.
    cache: Rc<RefCell<PostingCache>>,
    /// Optional store-level cache shared across executions (sessions).
    shared: Option<&'a SharedPostingCache>,
    /// Optional global normalization totals: set when `store` is one
    /// shard of a partitioned store, `None` for monolithic execution.
    totals: Option<&'a dyn GlobalTotals>,
    /// Incrementally maintained sound upper bound on every single
    /// emission the merge can still produce: Σ over alternatives of
    /// `weight × remaining`, where `remaining` is the head bound until
    /// an alternative opens and its list's unconsumed mass afterwards
    /// (each of which bounds that alternative's next emission). Each
    /// emission subtracts its own contribution, so reading the bound is
    /// O(1) per capping round.
    mass_upper: f64,
}

impl<'a> IncrementalMerge<'a> {
    pub(crate) fn new(
        store: &'a XkgStore,
        mut alts: Vec<Alternative<'a>>,
        cache: Rc<RefCell<PostingCache>>,
        shared: Option<&'a SharedPostingCache>,
        tighten: bool,
        totals: Option<&'a dyn GlobalTotals>,
    ) -> IncrementalMerge<'a> {
        let mut heap = BinaryHeap::with_capacity(alts.len());
        for (i, alt) in alts.iter_mut().enumerate() {
            if tighten {
                // Exact head probability for index-served shapes
                // (anchored subject/object strata included), read in
                // O(1) from the precomputed posting index — the
                // alternative enters the queue at its true first-emission
                // bound instead of the trivial `weight × 1.0`. Under a
                // partitioned store the head weight is divided by the
                // *global* total, so each shard enters the merge at its
                // exact globally-normalized head.
                alt.head_bound = head_prob_bound_global(store, &alt.pattern, totals);
                // A head bound of exactly 0 is only reported for
                // index-served shapes whose match set carries no
                // emission mass (empty or all-zero-weight groups, which
                // the index serves as empty lists): skip such
                // alternatives outright instead of letting a zero-keyed
                // heap entry linger for the threshold to trip over.
                if alt.head_bound <= 0.0 {
                    continue;
                }
            }
            heap.push(MergeEntry {
                bound: alt.weight * alt.head_bound,
                alt: i,
                opened: false,
            });
        }
        let mass_upper = alts.iter().map(|a| a.weight * a.head_bound).sum();
        IncrementalMerge {
            store,
            alts,
            heap,
            cache,
            shared,
            totals,
            mass_upper,
        }
    }

    /// Builds the merge over `pattern`'s alternatives under `rules` —
    /// the building block both the monolithic driver and the sharded
    /// merge instantiate, once per pattern (per shard).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_pattern(
        store: &'a XkgStore,
        pattern: &QPattern,
        rules: &RuleSet,
        cfg: &TopkConfig,
        fresh_base: u16,
        cache: Rc<RefCell<PostingCache>>,
        shared: Option<&'a SharedPostingCache>,
        totals: Option<&'a dyn GlobalTotals>,
    ) -> IncrementalMerge<'a> {
        let alts = pattern_alternatives(pattern, rules, cfg, fresh_base);
        IncrementalMerge::new(store, alts, cache, shared, cfg.tighten_threshold, totals)
    }

    /// Upper bound on the probability of the next emission, or `None` if
    /// exhausted.
    pub fn peek_bound(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.bound)
    }

    /// Upper bound on any probability the merge can still emit — and,
    /// once alternatives are open, on their collective unconsumed mass
    /// (kept current by the list cursors' O(1) weight tracking; unopened
    /// alternatives contribute their head bound). Always ≥ any single
    /// future emission, hence a sound — if loose — termination bound.
    pub fn remaining_mass(&self) -> f64 {
        self.mass_upper.max(0.0)
    }

    /// Opens an unopened heap entry's posting list — the moment its
    /// relaxation is "invoked" — and re-queues it at its exact head
    /// probability.
    fn open_entry(&mut self, entry: MergeEntry, metrics: &mut ExecMetrics) {
        let alt = &mut self.alts[entry.alt];
        // The cache serves structural variants sharing this canonical
        // pattern.
        if !alt.trace.is_empty() {
            metrics.relaxations_opened += 1;
        }
        let (matches, source) = ScoredMatches::build_global(
            self.store,
            &alt.pattern,
            &mut self.cache.borrow_mut(),
            self.shared,
            self.totals,
        );
        match source {
            CacheSource::Built => metrics.posting_lists_built += 1,
            CacheSource::ExecHit => metrics.posting_cache_hits += 1,
            CacheSource::SharedHit => metrics.shared_cache_hits += 1,
        }
        // Serve-kind accounting for fresh builds: anchored-index serves
        // never sort; `ranged_serves` are the selective exact-range
        // orderings (bounded sorts, chosen over larger group walks);
        // `posting_sorts` counts the unbounded materialize-and-sort
        // fallback, which the index makes unreachable — it must stay 0.
        if let Some(kind) = matches.build_kind() {
            match kind {
                k if k.is_anchored() => metrics.anchored_serves += 1,
                trinit_xkg::ServeKind::Range => metrics.ranged_serves += 1,
                trinit_xkg::ServeKind::Scanned => metrics.posting_sorts += 1,
                _ => {}
            }
        }
        if let Some(p) = matches.peek_prob() {
            self.heap.push(MergeEntry {
                bound: alt.weight * p,
                alt: entry.alt,
                opened: true,
            });
        }
        // Replace the alternative's head-bound contribution with its
        // actual (full) list mass.
        self.mass_upper += alt.weight * (matches.remaining_mass() - alt.head_bound);
        alt.matches = Some(matches);
    }

    /// Opens alternatives until the top of the queue is an *opened* list
    /// head, making [`IncrementalMerge::peek_bound`] the exact
    /// probability of the next emission (not just an upper bound).
    /// Returns that exact bound, or `None` if the merge is exhausted.
    /// The sharded merge uses this to order emissions across shards
    /// without pulling speculatively.
    pub fn tighten_head(&mut self, metrics: &mut ExecMetrics) -> Option<f64> {
        loop {
            let opened = self.heap.peek()?.opened;
            if opened {
                return self.peek_bound();
            }
            let entry = self.heap.pop()?;
            self.open_entry(entry, metrics);
        }
    }

    /// Produces the next emission in descending order.
    pub fn next_merged(&mut self, metrics: &mut ExecMetrics) -> Option<Merged> {
        loop {
            let entry = self.heap.pop()?;
            if !entry.opened {
                self.open_entry(entry, metrics);
                continue;
            }
            let alt = &mut self.alts[entry.alt];
            // An `opened` entry always has materialized matches; if the
            // invariant ever broke, dropping the entry degrades to a
            // skipped alternative instead of panicking mid-serve.
            let Some(matches) = alt.matches.as_mut() else {
                continue;
            };
            let Some((triple, prob)) = matches.next_entry() else {
                continue;
            };
            self.mass_upper -= alt.weight * prob;
            metrics.postings_scanned += 1;
            if let Some(p) = matches.peek_prob() {
                self.heap.push(MergeEntry {
                    bound: alt.weight * p,
                    alt: entry.alt,
                    opened: true,
                });
            }
            return Some(Merged {
                triple,
                prob: alt.weight * prob,
                pattern: alt.pattern,
                trace: alt.trace.clone(),
                weight: alt.weight,
            });
        }
    }
}

impl RankSource for IncrementalMerge<'_> {
    #[inline]
    fn peek_bound(&self) -> Option<f64> {
        IncrementalMerge::peek_bound(self)
    }

    #[inline]
    fn next_merged(
        &mut self,
        metrics: &mut ExecMetrics,
        _recorder: &mut TraceRecorder,
    ) -> Option<Merged> {
        IncrementalMerge::next_merged(self, metrics)
    }

    #[inline]
    fn remaining_mass(&self) -> f64 {
        IncrementalMerge::remaining_mass(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testfix::store;
    use trinit_relax::{Rule, RuleProvenance};

    #[test]
    fn remaining_mass_dominates_frontier_throughout() {
        // The soundness envelope the capping bound relies on: at every
        // point of a merge's lifetime, the O(1)-tracked remaining mass
        // is ≥ the frontier (the next emission's upper bound), so
        // capping on the frontier can never be less sound than capping
        // on the mass — and the ε-approximate mode's mass criterion is
        // sound against every future emission. Exercised across
        // relaxation chains, cache hits, and exhaustion.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite("a", aff, lectured, 0.7, RuleProvenance::UserDefined));
        rules.add(Rule::predicate_rewrite("b", aff, housed, 0.6, RuleProvenance::UserDefined));
        let cfg = TopkConfig {
            min_weight: 0.0,
            ..TopkConfig::default()
        };
        for pattern in [
            QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(aff), QTerm::Var(VarId(1))),
            QPattern::new(
                QTerm::Term(store.resource("AlbertEinstein").unwrap()),
                QTerm::Term(aff),
                QTerm::Var(VarId(1)),
            ),
        ] {
            for tighten in [true, false] {
                let alts = pattern_alternatives(&pattern, &rules, &cfg, 10);
                let cache = Rc::new(RefCell::new(PostingCache::new()));
                let mut merge = IncrementalMerge::new(&store, alts, cache, None, tighten, None);
                let mut metrics = ExecMetrics::default();
                let mut total_emitted = 0.0;
                loop {
                    let mass = merge.remaining_mass();
                    match merge.peek_bound() {
                        Some(bound) => assert!(
                            mass >= bound - 1e-12,
                            "mass {mass} < frontier {bound} (tighten={tighten})"
                        ),
                        None => break,
                    }
                    let Some(m) = merge.next_merged(&mut metrics) else {
                        break;
                    };
                    // The emission itself is covered by the pre-pull mass.
                    assert!(mass >= m.prob - 1e-12);
                    total_emitted += m.prob;
                }
                assert!(merge.remaining_mass() >= -1e-12);
                assert!(total_emitted > 0.0);
            }
        }
    }
}
