//! Stage 4 of the top-k operator pipeline: the **driver** — variant
//! enumeration, stream assembly, and the pull loop.
//!
//! "TriniT uses a top-k approach to query processing that is an extension
//! of the incremental top-k algorithm of [Theobald et al., SIGIR'05],
//! guided by \[the\] scoring scheme ... Top-k query processing is based on
//! the ability to access answers for a triple pattern in sorted order of
//! their scores, allowing us to go only as far as necessary into each
//! triple pattern index list." (paper §4)
//!
//! The driver composes the three stages below it through two narrow
//! seams and owns nothing else:
//!
//! * **[`crate::exec::merge`]** (stage 1) supplies per-pattern sorted
//!   access behind the [`RankSource`] trait. The driver never sees
//!   posting lists, caches, or relaxation chains — only
//!   `peek_bound` / `next_merged` / `remaining_mass`.
//! * **[`crate::exec::join`]** (stage 2) holds the per-stream join
//!   state ([`Stream`]) and combines each arrival against the other
//!   streams' partitions ([`join::join_with_others`]).
//! * **[`crate::exec::threshold`]** (stage 3) decides termination: the
//!   driver asks [`ThresholdPolicy::admit_variant`] before opening a
//!   variant and [`ThresholdPolicy::after_round`] after every pull.
//!
//! [`run_pipeline`] is the seam partitioned execution shares: it is
//! generic over a *source factory* (`FnMut(&QPattern, u16) -> M`), so
//! the monolithic engine ([`run_scaled`] with an [`IncrementalMerge`]
//! factory) and the sharded engine
//! ([`crate::exec::sharded::run_partitioned`] with a `ShardedMerge`
//! factory) assemble the identical pipeline around different stage-1
//! sources — every line of join, threshold, capping, and collection
//! logic is shared, which is what makes the sharded engine's
//! score-equality (and the ε mode's guarantee) carry over verbatim.
//!
//! **Structural variants** (multi-pattern rules, e.g. paper rule 1)
//! rewrite the query as a whole; each variant runs through the pipeline
//! above, sharing one global answer collector.

use std::cell::RefCell;
use std::rc::Rc;

use trinit_obs::{now_ns, ObsConfig, QueryTrace, SpanRecord, Stage, TraceRecorder};
use trinit_relax::{
    apply_rule_oracle, canonical_key, ConditionOracle, QPattern, RuleId, RuleSet,
};
use trinit_xkg::XkgStore;

use crate::answer::{Answer, AnswerCollector, Bindings};
use crate::ast::Query;
use crate::exec::budget::{BudgetTracker, Completeness, ExecBudget, Governor};
use crate::exec::join::{self, Stream};
use crate::exec::merge::{is_mergeable, IncrementalMerge, RankSource};
use crate::exec::threshold::{Admission, RoundVerdict, ThresholdPolicy};
use crate::exec::{ExecMetrics, TripleLookup};
use crate::score::{ln_weight, GlobalTotals, PostingCache, SharedPostingCache};

/// Configuration of the incremental top-k processor.
#[derive(Debug, Clone)]
pub struct TopkConfig {
    /// Maximum chain length of single-pattern rules per pattern.
    pub chain_depth: usize,
    /// Maximum applications of structural (multi-pattern / multi-RHS)
    /// rules at the query level.
    pub structural_depth: usize,
    /// Alternatives and variants below this weight are pruned.
    pub min_weight: f64,
    /// Cap on alternatives per pattern.
    pub max_alternatives: usize,
    /// Cap on structural query variants.
    pub max_variants: usize,
    /// Wire the precomputed posting index into the termination bound:
    /// exact head probabilities for unopened alternatives, head-bound
    /// variant pruning, and remaining-mass stream capping. Answers are
    /// identical with or without; tightening only reduces the work
    /// ([`ExecMetrics::pulls`]).
    pub tighten_threshold: bool,
    /// ε-approximate top-k: answers forfeited by early termination are
    /// guaranteed to score at most ε (probability space, absolute), so
    /// for every rank `r` the returned answer satisfies
    /// `prob(approx[r]) ≥ prob(exact[r]) − ε` while carrying its exact
    /// score. The merge stage's prefix-sum remaining-mass envelope is
    /// the load-bearing criterion (see [`crate::exec::threshold`]):
    /// streams retire once everything they can still contribute is
    /// within ε, and hopeless variants are skipped outright —
    /// retirements counted in [`ExecMetrics::approx_cutoffs`]. `0.0`
    /// (the default) is the exact mode, bit-identical in answers *and*
    /// pull counts to an engine without the criterion.
    pub epsilon: f64,
    /// Relative-θ approximate top-k (θ ∈ \[0, 1)): the round loop also
    /// stops once `kth ≥ threshold · (1 − θ)` in probability space, so
    /// every returned rank `r` keeps `prob(approx[r]) ≥ (1 − θ) ·
    /// prob(exact[r])` — a scale-free counterpart to the absolute ε
    /// criterion (see [`crate::exec::threshold`]). `0.0` (the default)
    /// coincides with the exact criterion and changes nothing.
    pub theta: f64,
    /// Execution budget: wall-clock deadline, pull limit,
    /// answer-materialization limit, and the degradation ladder that
    /// escalates ε / θ inside the soft budget region instead of dying
    /// at the wall ([`crate::exec::budget`]). Unlimited by default —
    /// and then every governed check reduces to one branch, keeping
    /// the exact path bit-identical.
    pub budget: ExecBudget,
    /// Instrumentation: per-query stage spans captured into a bounded
    /// ring and folded into the process registry by the engine facade.
    /// [`ObsConfig::off`] is the zero-overhead mode — every record
    /// site reduces to one branch and the clock is never read.
    pub obs: ObsConfig,
}

impl Default for TopkConfig {
    fn default() -> Self {
        TopkConfig {
            chain_depth: 2,
            structural_depth: 1,
            min_weight: 0.05,
            max_alternatives: 64,
            max_variants: 16,
            tighten_threshold: true,
            epsilon: 0.0,
            theta: 0.0,
            budget: ExecBudget::default(),
            obs: ObsConfig::default(),
        }
    }
}

/// Enumerates structural query variants (non-mergeable rules applied at
/// the query level), keeping original rule ids in traces. Data
/// conditions are verified through `oracle` — the whole store for the
/// monolithic engine, a cross-shard oracle for partitioned execution.
pub(crate) fn structural_variants(
    oracle: Option<&dyn ConditionOracle>,
    patterns: &[QPattern],
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> Vec<(Vec<QPattern>, f64, Vec<RuleId>)> {
    let original_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);
    let mut out: Vec<(Vec<QPattern>, f64, Vec<RuleId>)> =
        vec![(patterns.to_vec(), 1.0, Vec::new())];
    let mut keys = vec![canonical_key(patterns, original_vars)];
    let mut frontier = vec![0usize];
    for _ in 0..cfg.structural_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_patterns, cur_weight, cur_trace) = out[idx].clone();
            for (rule_id, rule) in rules.iter() {
                if is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule_oracle(&cur_patterns, rule, rule_id, oracle) {
                    let key = canonical_key(&rewriting.patterns, original_vars);
                    if keys.contains(&key) || out.len() >= cfg.max_variants {
                        continue;
                    }
                    keys.push(key);
                    let mut trace = cur_trace.clone();
                    trace.push(rule_id);
                    out.push((rewriting.patterns, weight, trace));
                    next_frontier.push(out.len() - 1);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Runs incremental top-k processing for `query` under `rules`.
///
/// Returns the top `query.k` answers (identical to what
/// [`crate::exec::expand::run`] would return for an equivalent rule
/// budget) and the work metrics, which are the point: posting lists are
/// only materialized, and relaxations only invoked, when they can still
/// contribute to the top-k.
pub fn run(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> (Vec<Answer>, ExecMetrics) {
    run_cached(store, query, rules, cfg, None)
}

/// Like [`run`], additionally consulting a store-level posting cache
/// shared across executions — the session tier of the cache hierarchy.
/// Interactive workloads that re-issue queries over the same canonical
/// patterns (the paper's E6 setting) reuse materialized lists across
/// consecutive queries; hits are counted in
/// [`ExecMetrics::shared_cache_hits`].
pub fn run_cached(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
) -> (Vec<Answer>, ExecMetrics) {
    run_scaled(store, query, rules, cfg, shared, None, Some(store), Vec::new())
}

/// Like [`run_cached`], with the three extension points partitioned
/// execution needs: a [`GlobalTotals`] provider (so a store *slice*
/// scores its emissions with globally-correct normalization), an
/// explicit [`ConditionOracle`] for structural-rule data conditions
/// (existence across every slice), and a `seed` of already-known answers
/// offered to the collector before any posting list is opened (a
/// sharded executor seeds with the answers its per-shard runs found,
/// tightening the threshold from the first pull). With `totals = None`,
/// `oracle = Some(store)`, and an empty seed this *is* the monolithic
/// engine.
#[allow(clippy::too_many_arguments)]
pub fn run_scaled(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
    totals: Option<&dyn GlobalTotals>,
    oracle: Option<&dyn ConditionOracle>,
    seed: Vec<Answer>,
) -> (Vec<Answer>, ExecMetrics) {
    let tracker = BudgetTracker::new(cfg);
    run_scaled_with(
        store,
        query,
        rules,
        cfg,
        shared,
        totals,
        oracle,
        seed,
        Governor::primary(&tracker),
    )
}

/// [`run_scaled`] with an explicit budget [`Governor`]: the seam a
/// sharded executor uses to make every phase of one query (per-shard
/// seed tasks, the cross-shard merge) observe a *shared*
/// [`BudgetTracker`]. Seed phases pass an advisory governor — they
/// draw down the budget and stop on cutoffs, but only a primary phase
/// determines the run's [`Completeness`].
#[allow(clippy::too_many_arguments)]
pub fn run_scaled_with(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
    totals: Option<&dyn GlobalTotals>,
    oracle: Option<&dyn ConditionOracle>,
    seed: Vec<Answer>,
    governor: Governor<'_>,
) -> (Vec<Answer>, ExecMetrics) {
    run_scaled_traced(
        store,
        query,
        rules,
        cfg,
        shared,
        totals,
        oracle,
        seed,
        governor,
        &mut TraceRecorder::off(),
    )
}

/// [`run_scaled_with`] with an explicit span recorder: the seam every
/// instrumented caller (the sharded executor's seed tasks, the engine
/// facade) threads its per-query [`TraceRecorder`] through. Passing
/// [`TraceRecorder::off`] makes this identical to [`run_scaled_with`].
#[allow(clippy::too_many_arguments)]
pub fn run_scaled_traced(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
    totals: Option<&dyn GlobalTotals>,
    oracle: Option<&dyn ConditionOracle>,
    seed: Vec<Answer>,
    governor: Governor<'_>,
    recorder: &mut TraceRecorder,
) -> (Vec<Answer>, ExecMetrics) {
    let mut metrics = ExecMetrics::default();
    // One posting cache for the whole execution: structural variants that
    // share a relaxed pattern never rebuild its matches.
    let cache = Rc::new(RefCell::new(PostingCache::new()));
    let answers = run_pipeline(
        store,
        oracle,
        query,
        rules,
        cfg,
        seed,
        &mut metrics,
        governor,
        recorder,
        |pattern, fresh_base, _| {
            IncrementalMerge::for_pattern(
                store,
                pattern,
                rules,
                cfg,
                fresh_base,
                Rc::clone(&cache),
                shared,
                totals,
            )
        },
    );
    (answers, metrics)
}

/// A governed monolithic run: answers, metrics, and the typed
/// [`Completeness`] of the result.
#[derive(Debug)]
pub struct GovernedRun {
    /// Top-k answers, best first.
    pub answers: Vec<Answer>,
    /// Work counters, budget cutoffs and degradation steps included.
    pub metrics: ExecMetrics,
    /// What the ranking is guaranteed to be relative to the exact
    /// engine's ([`Completeness::Exact`] unless a cutoff or an ε / θ
    /// retirement actually fired).
    pub completeness: Completeness,
    /// Per-stage span trace of the run (empty under
    /// [`ObsConfig::off`]).
    pub trace: QueryTrace,
}

/// Like [`run_cached`], additionally reporting the run's typed
/// [`Completeness`] — the serving-tier entry point for budgeted
/// monolithic execution.
pub fn run_governed(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
) -> GovernedRun {
    let tracker = BudgetTracker::new(cfg);
    let mut recorder = cfg.obs.recorder();
    let span_start = recorder.start();
    let (answers, metrics) = run_scaled_traced(
        store,
        query,
        rules,
        cfg,
        shared,
        None,
        Some(store),
        Vec::new(),
        Governor::primary(&tracker),
        &mut recorder,
    );
    let completeness = tracker.completeness(&answers);
    recorder.record(Stage::Query, answers.len() as u32, span_start);
    GovernedRun {
        answers,
        metrics,
        completeness,
        trace: recorder.finish(),
    }
}

/// Assembles and drives the full pipeline for one query: enumerates
/// structural variants, builds one [`Stream`] per pattern around the
/// stage-1 source `source_for` yields, and runs the rank join per
/// variant into one shared collector.
///
/// This is the composition seam between the monolithic and partitioned
/// engines: [`run_scaled`] passes an [`IncrementalMerge`] factory,
/// [`crate::exec::sharded::run_partitioned`] a `ShardedMerge` factory —
/// everything downstream of the factory is the same code.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pipeline<M: RankSource>(
    lookup: &dyn TripleLookup,
    oracle: Option<&dyn ConditionOracle>,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    seed: Vec<Answer>,
    metrics: &mut ExecMetrics,
    governor: Governor<'_>,
    recorder: &mut TraceRecorder,
    mut source_for: impl FnMut(&QPattern, u16, usize) -> M,
) -> Vec<Answer> {
    let projection = query.effective_projection();
    let k = query.k.max(1);
    // Tracked collector: the k-th score the threshold reads on every
    // pull is maintained persistently on insert (O(1), zero allocation
    // per pull) instead of re-selected from all candidate scores.
    let mut collector = AnswerCollector::tracking(k);
    for answer in seed {
        collector.offer(answer);
    }
    let variants = structural_variants(oracle, &query.patterns, rules, cfg);
    let mut cut = false;
    for (variant_idx, (patterns, variant_weight, variant_trace)) in
        variants.into_iter().enumerate()
    {
        if cut {
            // A hard budget cutoff stopped the pipeline: the remaining
            // variants are forfeited wholesale. Their answers score at
            // most the variant weight (stream probabilities are ≤ 1),
            // which keeps the truncation bound sound.
            governor.note_truncated(ln_weight(variant_weight));
            continue;
        }
        metrics.rewritings_evaluated += 1;
        if patterns.is_empty() {
            continue;
        }
        let variant_start = recorder.start();
        let max_var = join::max_var_of(&patterns);
        let join_vars = join::join_vars_of(&patterns);
        let mut streams: Vec<Stream<M>> = patterns
            .iter()
            .zip(join_vars)
            .enumerate()
            .map(|(i, (pattern, join_vars))| {
                // Disjoint fresh-variable ranges per pattern — and the
                // same base across shards, so every slice derives the
                // identical alternative set.
                let fresh_base = max_var + (i as u16) * 8;
                // `i` is the pattern's position in the (variant's) query
                // — segmented execution uses it to restrict one pattern
                // to the delta slices (semi-naive delta queries).
                Stream::new(source_for(pattern, fresh_base, i), join_vars)
            })
            .collect();
        cut = !rank_join(
            lookup,
            cfg,
            &mut streams,
            ln_weight(variant_weight),
            &variant_trace,
            &projection,
            k,
            max_var as usize + 64, // headroom for fresh variables
            &mut collector,
            metrics,
            governor,
            recorder,
        );
        for stream in &mut streams {
            stream.merge.finish_obs(recorder);
        }
        recorder.record(Stage::Variant, variant_idx as u32, variant_start);
    }
    collector.into_top_k(query.k)
}

/// Windowed batching of per-pull [`Stage::JoinRound`] spans: the clock
/// is read only every 64 pulls (and at flush), so the per-pull cost of
/// enabled tracing is one branch and a counter increment. A window
/// span covers the wall interval in which its `detail` pulls ran.
struct PullWindow {
    on: bool,
    start: u64,
    pulls: u32,
}

impl PullWindow {
    /// Pulls per recorded window span.
    const WINDOW: u32 = 64;

    fn new(recorder: &TraceRecorder) -> PullWindow {
        let on = recorder.is_enabled();
        PullWindow {
            on,
            start: if on { now_ns() } else { 0 },
            pulls: 0,
        }
    }

    #[inline]
    fn tick(&mut self, recorder: &mut TraceRecorder) {
        if !self.on {
            return;
        }
        self.pulls += 1;
        if self.pulls >= Self::WINDOW {
            self.flush(recorder);
        }
    }

    fn flush(&mut self, recorder: &mut TraceRecorder) {
        if !self.on || self.pulls == 0 {
            return;
        }
        let now = now_ns();
        recorder.record_span(SpanRecord {
            stage: Stage::JoinRound,
            detail: self.pulls,
            start_ns: self.start,
            dur_ns: now.saturating_sub(self.start),
        });
        self.start = now;
        self.pulls = 0;
    }
}

/// The rank join over one variant's streams: pulls the highest-frontier
/// stream, joins each arrival against the other streams' seen
/// partitions (stage 2), and stops when the termination policy (stage
/// 3) says so. Generic over the stream source so the monolithic and
/// sharded engines share every line of join, threshold, and capping
/// logic; `lookup` resolves emitted triple ids (global ids, for a
/// sharded source).
///
/// Returns `false` when a hard budget cutoff fired — the caller must
/// stop opening further variants (the policy has already recorded the
/// forfeit bound); `true` on every normal termination.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_join<M: RankSource>(
    lookup: &dyn TripleLookup,
    cfg: &TopkConfig,
    streams: &mut [Stream<M>],
    variant_log: f64,
    variant_trace: &[RuleId],
    projection: &[trinit_relax::VarId],
    k: usize,
    n_vars: usize,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
    governor: Governor<'_>,
    recorder: &mut TraceRecorder,
) -> bool {
    let mut policy = ThresholdPolicy::new(cfg, k, streams.len(), governor);
    match policy.admit_variant(streams, variant_log, collector, metrics) {
        Admission::Admit => {}
        Admission::Skip => return true,
        Admission::Stop(_) => {
            recorder.event(Stage::Cutoff, 0);
            return false;
        }
    }

    // Scratch assignment for the combination loop; `join_with_others`
    // always restores it to fully unbound.
    let mut scratch = Bindings::new(n_vars);
    let mut window = PullWindow::new(recorder);

    // Pick the non-exhausted, non-capped stream with the highest
    // frontier each round.
    while let Some(next) = (0..streams.len())
        .filter(|&i| !streams[i].exhausted && !streams[i].capped)
        .max_by(|&a, &b| streams[a].frontier_log().total_cmp(&streams[b].frontier_log()))
    {
        metrics.pulls += 1;
        governor.on_pull();
        window.tick(recorder);
        #[cfg(feature = "faults")]
        crate::exec::faults::on_pull();
        let merged = streams[next].merge.next_merged(metrics, recorder);
        match merged {
            None => {
                streams[next].exhausted = true;
                // A stream with no matches at all kills the variant.
                if streams[next].seen.is_empty() {
                    window.flush(recorder);
                    return true;
                }
            }
            Some(m) => {
                let Some(bound) = join::bind_pairs(&m.pattern, lookup, m.triple) else {
                    continue;
                };
                let log_score = ln_weight(m.prob);
                let item = join::SeenItem {
                    bound,
                    log_score,
                    pattern: m.pattern,
                    triple: m.triple,
                    trace: m.trace,
                    weight: m.weight,
                };

                // Join the new item with the seen items of other streams
                // (its own stream is skipped, so joining before remembering
                // the item is equivalent).
                join::join_with_others(
                    streams, next, &item, variant_log, variant_trace, projection, &mut scratch,
                    collector, metrics,
                );
                streams[next].push_seen(item);
            }
        }

        match policy.after_round(streams, variant_log, collector, metrics) {
            RoundVerdict::Continue => {}
            RoundVerdict::Done => {
                window.flush(recorder);
                recorder.event(Stage::Threshold, metrics.pulls as u32);
                break;
            }
            RoundVerdict::DeadVariant => {
                window.flush(recorder);
                recorder.event(Stage::Threshold, metrics.pulls as u32);
                return true;
            }
            RoundVerdict::Cutoff(_) => {
                window.flush(recorder);
                recorder.event(Stage::Cutoff, metrics.pulls as u32);
                return false;
            }
        }
    }
    window.flush(recorder);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use crate::exec::budget::{CutoffReason, DegradationRung};
    use crate::exec::expand;
    use crate::exec::testfix::store;
    use trinit_relax::{ExpandOptions, QTerm, Rule, RuleProvenance, RuleSet};
    use trinit_xkg::XkgBuilder;

    fn advisor_rules(store: &XkgStore) -> (RuleSet, trinit_xkg::TermId) {
        let mut qb = QueryBuilder::new(store);
        let has_advisor = qb.resource("hasAdvisor");
        let has_student = store.resource("hasStudent").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::inversion(
            "advisor/student",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        (rules, has_advisor)
    }

    #[test]
    fn lazy_merge_recovers_inverted_answer() {
        let store = store();
        let (rules, _) = advisor_rules(&store);
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "hasAdvisor", "x")
            .build();
        let (answers, metrics) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 1);
        let kleiner = store.resource("AlfredKleiner").unwrap();
        assert_eq!(answers[0].key[0].1, Some(kleiner));
        assert_eq!(metrics.relaxations_opened, 1);
    }

    #[test]
    fn lectured_at_relaxation_for_affiliation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .limit(5)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 2);
        let ias = store.resource("IAS").unwrap();
        let princeton = store.resource("PrincetonUniversity").unwrap();
        assert_eq!(answers[0].key[0].1, Some(ias));
        assert_eq!(answers[1].key[0].1, Some(princeton));
        assert!(answers[1].score < answers[0].score);
    }

    #[test]
    fn agrees_with_full_expansion() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "a",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "b",
            aff,
            housed,
            0.6,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "c",
            lectured,
            housed,
            0.5,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .limit(50)
            .build();
        let (inc, _) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                chain_depth: 2,
                structural_depth: 0,
                min_weight: 0.0,
                ..Default::default()
            },
        );
        let (full, _) = expand::run(
            &store,
            &q,
            &rules,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 1024,
            },
        );
        assert_eq!(inc.len(), full.len());
        for (a, b) in inc.iter().zip(&full) {
            assert_eq!(a.key, b.key, "same answers in same order");
            assert!((a.score - b.score).abs() < 1e-9, "same scores");
        }
    }

    #[test]
    fn relaxations_not_opened_when_k_satisfied_early() {
        // With k=1 and a strong exact answer, the weak relaxation's
        // posting list should never be materialized.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("E", "p", "O1");
        let weak = b.dict_mut().token("weak predicate");
        for i in 0..100 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            let src = b.intern_source("d");
            b.add_extracted(s, weak, o, 0.9, src);
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let weak = store.token("weak predicate").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            p,
            weak,
            0.05,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(1)
            .build();
        let (answers, metrics) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(answers.len(), 1);
        // Exact match has prob 1.0 > bound 0.05 of the relaxation.
        assert_eq!(metrics.relaxations_opened, 0, "{metrics:?}");
    }

    #[test]
    fn join_query_with_relaxation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        // Who is affiliated with something housed in Princeton?
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .pattern_r_t_v("IAS", "housed in", "z")
            .limit(10)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert!(!answers.is_empty());
    }

    #[test]
    fn empty_query_variant_is_safe() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "nonexistentPredicate", "Nowhere")
            .build();
        let (answers, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert!(answers.is_empty());
    }

    /// Reference evaluation for the partition tests: full expansion
    /// evaluates every rewriting with a nested-loop join, so its answer
    /// set is exactly what the hash-partitioned combine must reproduce.
    fn reference(store: &XkgStore, q: &crate::ast::Query, rules: &RuleSet) -> Vec<crate::answer::Answer> {
        let (full, _) = expand::run(
            store,
            q,
            rules,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 4096,
            },
        );
        full
    }

    fn assert_same_answers(a: &[crate::answer::Answer], b: &[crate::answer::Answer]) {
        assert_eq!(a.len(), b.len(), "answer counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key, y.key, "answer keys differ");
            assert!((x.score - y.score).abs() < 1e-9, "scores differ");
        }
    }

    #[test]
    fn no_shared_variables_is_a_cross_product() {
        // Streams without join variables share the single empty-key
        // bucket: every seen item of the other stream is probed, i.e. a
        // genuine cross product, identical to nested-loop evaluation.
        let mut b = XkgBuilder::new();
        for i in 0..3 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
        }
        for i in 0..4 {
            b.add_kg_resources(&format!("t{i}"), "q", &format!("u{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("a", "p", "b")
            .pattern_v_r_v("c", "q", "d")
            .limit(1000)
            .build();
        let (inc, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), 12, "3 × 4 cross product");
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn repeated_variable_pattern_joins_correctly() {
        // `?x p ?x` filters to self-loops and shares ?x with the second
        // stream; the partition key must use the deduplicated binding.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("loop", "p", "loop");
        b.add_kg_resources("a", "p", "b"); // not a self-loop
        b.add_kg_resources("loop", "q", "c");
        b.add_kg_resources("a", "q", "d");
        let store = b.build();
        let mut qb = QueryBuilder::new(&store);
        let x = QTerm::Var(qb.var("x"));
        let y = QTerm::Var(qb.var("y"));
        let p = QTerm::Term(qb.resource("p"));
        let qq = QTerm::Term(qb.resource("q"));
        let q = qb.pattern(x, p, x).pattern(x, qq, y).limit(1000).build();
        let (inc, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), 1, "only the self-loop joins");
        let loop_id = store.resource("loop").unwrap();
        assert_eq!(inc[0].bindings.get(trinit_relax::VarId(0)), Some(loop_id));
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn empty_bucket_probes_produce_nothing_and_test_no_candidates() {
        // Join-key value sets are disjoint: every probe lands in an
        // absent bucket, so the combine tests zero candidates (a full
        // scan would have tested every pair) and yields no answers.
        let mut b = XkgBuilder::new();
        for i in 0..5 {
            b.add_kg_resources(&format!("a{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("b{i}"), "q", &format!("z{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1000)
            .build();
        let (inc, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert!(inc.is_empty());
        assert_eq!(
            metrics.join_candidates, 0,
            "disjoint keys must never be probed: {metrics:?}"
        );
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn partitioning_cuts_join_candidates_on_one_to_one_joins() {
        // 30 1:1 join pairs. A full seen-list scan tests O(n²)
        // candidates; the partitioned probe touches one bucket of size 1
        // per arriving item.
        let n = 30usize;
        let mut b = XkgBuilder::new();
        for i in 0..n {
            b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("x{i}"), "q", &format!("z{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1000)
            .build();
        let (inc, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), n);
        assert!(
            metrics.join_candidates <= 2 * n,
            "partitioned probes should be linear, got {} for n = {n}",
            metrics.join_candidates
        );
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn tightened_threshold_caps_hopeless_streams() {
        // Stream A: one strong lonely item, one joining item, then a
        // heavy tail of lonely items whose frontier stays above stream
        // B's. Stream B: a strong joining head and a long tail. Once the
        // best join is collected, no unseen A item can beat it (its
        // frontier × B's best is below the answer), but B must still be
        // drained. The untightened engine keeps pulling A (highest
        // frontier); the tightened one caps A and pulls only B.
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("p");
        let q = b.dict_mut().resource("q");
        let src = b.intern_source("d");
        let add = |s: &str, pred: trinit_xkg::TermId, o: &str, conf: f32, b: &mut XkgBuilder| {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, pred, o, conf, src);
        };
        add("LA", p, "y0", 0.9, &mut b);
        add("J", p, "y1", 0.018, &mut b);
        for i in 0..50 {
            add(&format!("a{i}"), p, &format!("ya{i}"), 0.016, &mut b);
        }
        add("J", q, "z0", 0.9, &mut b);
        for i in 0..150 {
            add(&format!("b{i}"), q, &format!("zb{i}"), 0.5, &mut b);
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1)
            .build();
        let rules = RuleSet::new();
        let (tight, m_tight) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                tighten_threshold: true,
                ..TopkConfig::default()
            },
        );
        let (loose, m_loose) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                tighten_threshold: false,
                ..TopkConfig::default()
            },
        );
        assert_same_answers(&tight, &loose);
        assert_eq!(tight.len(), 1);
        assert!(
            m_tight.pulls < m_loose.pulls,
            "capping must save pulls: {} vs {}",
            m_tight.pulls,
            m_loose.pulls
        );
        assert!(m_tight.early_cutoffs > 0, "{m_tight:?}");
        assert_eq!(m_loose.early_cutoffs, 0, "{m_loose:?}");
    }

    #[test]
    fn head_bound_prunes_hopeless_variants() {
        // A structural variant whose head-bound product cannot reach the
        // already-collected k-th answer is skipped without opening a
        // single posting list.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        // A non-mergeable (two-RHS) rule creates a structural variant
        // with a tiny weight (paper rule 3 shape).
        let (x, y, z) = (
            trinit_relax::TTerm::Var(trinit_relax::RVar(0)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(1)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(2)),
        );
        rules.add(Rule::structural(
            "weak structural",
            vec![trinit_relax::Template::new(
                x,
                trinit_relax::TTerm::Const(aff),
                y,
            )],
            vec![
                trinit_relax::Template::new(x, trinit_relax::TTerm::Const(aff), z),
                trinit_relax::Template::new(z, trinit_relax::TTerm::Const(housed), y),
            ],
            0.0001,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .limit(1)
            .build();
        let (answers, metrics) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                ..TopkConfig::default()
            },
        );
        assert_eq!(answers.len(), 1);
        assert!(
            metrics.early_cutoffs > 0,
            "weak variant should be pruned by its head bound: {metrics:?}"
        );
    }

    #[test]
    fn zero_mass_groups_agree_with_untightened_and_expansion() {
        // A predicate whose entire match set has weight 0 (confidence 0
        // extractions): its posting group serves as an empty list and
        // its head bound is 0. The tightened threshold skips the
        // alternative outright; the untightened engine and the
        // full-expansion reference open it and emit nothing. All three
        // must agree — this is the "head bound 0 caps the stream before
        // pulling" regression.
        let mut b = XkgBuilder::new();
        let ghost = b.dict_mut().resource("ghost");
        let p = b.dict_mut().resource("p");
        let src = b.intern_source("d");
        for i in 0..5u32 {
            let s = b.dict_mut().resource(&format!("g{i}"));
            let o = b.dict_mut().resource(&format!("go{i}"));
            b.add_extracted(s, ghost, o, 0.0, src);
        }
        // Zero-weight self-loops: the repeated-variable (masked) shape
        // `?x ghost ?x` filters to a zero-mass set too.
        for i in 0..2u32 {
            let s = b.dict_mut().resource(&format!("loop{i}"));
            b.add_extracted(s, ghost, s, 0.0, src);
        }
        for i in 0..4u32 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            b.add_extracted(s, p, o, 0.5 + 0.1 * i as f32, src);
        }
        let store = b.build();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "into the void",
            store.resource("p").unwrap(),
            store.resource("ghost").unwrap(),
            0.9,
            RuleProvenance::UserDefined,
        ));
        let repeated = {
            let mut qb = QueryBuilder::new(&store);
            let x = QTerm::Var(qb.var("x"));
            let g = QTerm::Term(qb.resource("ghost"));
            qb.pattern(x, g, x).limit(20).build()
        };
        for query in [
            QueryBuilder::new(&store).pattern_v_r_v("x", "p", "y").limit(20).build(),
            QueryBuilder::new(&store).pattern_v_r_v("x", "ghost", "y").limit(20).build(),
            repeated,
        ] {
            let (tight, _) = run(
                &store,
                &query,
                &rules,
                &TopkConfig { tighten_threshold: true, min_weight: 0.0, ..Default::default() },
            );
            let (loose, _) = run(
                &store,
                &query,
                &rules,
                &TopkConfig { tighten_threshold: false, min_weight: 0.0, ..Default::default() },
            );
            assert_same_answers(&tight, &loose);
            let (full, _) = expand::run(
                &store,
                &query,
                &rules,
                &ExpandOptions { max_depth: 2, min_weight: 0.0, max_rewritings: 1024 },
            );
            assert_same_answers(&tight, &full);
        }
    }

    #[test]
    fn anchored_patterns_serve_from_index_without_sorting() {
        // The acceptance counter: an anchored-heavy query performs zero
        // materialize-and-sort list builds; s-/o-bound patterns are
        // anchored-index serves.
        let mut b = XkgBuilder::new();
        for i in 0..20u32 {
            b.add_kg_resources(&format!("s{i}"), "p", "hub");
            b.add_kg_resources(&format!("s{i}"), "q", &format!("o{i}"));
        }
        let store = b.build();
        let queries = [
            // s-bound (subject stratum, borrowed slice).
            QueryBuilder::new(&store).pattern_r_r_v("s3", "p", "y").limit(5).build(),
            // o-bound via a variable predicate: (?x ?p hub).
            {
                let mut qb = QueryBuilder::new(&store);
                let x = QTerm::Var(qb.var("x"));
                let pv = QTerm::Var(qb.var("pv"));
                let hub = QTerm::Term(qb.resource("hub"));
                qb.pattern(x, pv, hub).limit(5).build()
            },
        ];
        for q in queries {
            let (answers, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
            assert!(!answers.is_empty());
            assert!(
                metrics.anchored_serves > 0,
                "anchored shapes must be served by the index: {metrics:?}"
            );
            assert_eq!(
                metrics.posting_sorts, 0,
                "the unbounded materialize-and-sort fallback must be unreachable: {metrics:?}"
            );
            assert_eq!(
                metrics.ranged_serves, 0,
                "these anchored lookups fit their groups — no range cutover expected: {metrics:?}"
            );
        }
    }

    #[test]
    fn selective_hub_probe_counts_as_ranged_serve_with_identical_answers() {
        // A ground probe over hub terms whose exact permutation range is
        // ≥4× smaller than every covering group takes the
        // `ServeKind::Range` cutover. The cutover may only change the
        // `ranged_serves` vs `anchored_serves` accounting — answers (and
        // scores) must match the full-expansion reference exactly.
        let mut b = XkgBuilder::new();
        // Hub subject and hub object, each with many triples, so the sp
        // probe's covering groups are all large while its exact match
        // range is a single triple.
        for i in 0..40u32 {
            b.add_kg_resources("hubS", "p", &format!("o{i}"));
            b.add_kg_resources(&format!("s{i}"), "p", "hubO");
        }
        b.add_kg_resources("hubS", "rare", "hubO");
        let store = b.build();
        let mut qb = QueryBuilder::new(&store);
        let pv = QTerm::Var(qb.var("pv"));
        let hub_s = QTerm::Term(qb.resource("hubS"));
        let hub_o = QTerm::Term(qb.resource("hubO"));
        // (hubS ?p hubO): so-shape, 1 exact match, covering groups of 41.
        let q = qb.pattern(hub_s, pv, hub_o).limit(5).build();
        let (answers, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(answers.len(), 1);
        assert!(
            metrics.ranged_serves > 0,
            "selective composite probe must take the range cutover: {metrics:?}"
        );
        assert_eq!(metrics.posting_sorts, 0, "{metrics:?}");
        assert_same_answers(&answers, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn epsilon_zero_is_exact_with_no_approx_cutoffs() {
        // ε = 0 must be the exact engine, bit-identical: same answers,
        // same pull counts, and the approximate criterion never fires.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        for query in [
            QueryBuilder::new(&store).pattern_v_r_v("x", "affiliation", "y").limit(5).build(),
            QueryBuilder::new(&store)
                .pattern_v_r_v("x", "affiliation", "y")
                .pattern_r_t_v("IAS", "housed in", "z")
                .limit(10)
                .build(),
        ] {
            let (exact, m_exact) = run(&store, &query, &rules, &TopkConfig::default());
            let (eps0, m_eps0) = run(
                &store,
                &query,
                &rules,
                &TopkConfig { epsilon: 0.0, ..TopkConfig::default() },
            );
            assert_same_answers(&eps0, &exact);
            assert_eq!(m_eps0.pulls, m_exact.pulls, "ε=0 must not change pull counts");
            assert_eq!(m_eps0.approx_cutoffs, 0);
            assert_eq!(m_exact.approx_cutoffs, 0);
        }
    }

    #[test]
    fn epsilon_mode_retires_negligible_tails_within_guarantee() {
        // k exceeds the number of strong answers, so the exact engine
        // can never establish a k-th score and must drain the weak
        // relaxation's entire 200-entry list. The ε engine retires the
        // stream as soon as its remaining mass (weak alternative weight
        // 0.04 after the strong list drains) is within ε = 0.05 —
        // forfeiting only answers provably ≤ ε.
        let mut b = XkgBuilder::new();
        let src = b.intern_source("d");
        let p = b.dict_mut().resource("p");
        let weak = b.dict_mut().token("weakly related");
        let e = b.dict_mut().resource("E");
        for i in 0..3u32 {
            let o = b.dict_mut().resource(&format!("strong{i}"));
            b.add_extracted(e, p, o, 0.9, src);
        }
        for i in 0..200u32 {
            let o = b.dict_mut().resource(&format!("weak{i}"));
            b.add_extracted(e, weak, o, 0.9, src);
        }
        let store = b.build();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            store.resource("p").unwrap(),
            store.token("weakly related").unwrap(),
            0.04,
            RuleProvenance::UserDefined,
        ));
        // k above the total answer count (203): the exact engine never
        // collects a k-th score, so nothing bounds the weak tail.
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(300)
            .build();
        let cfg = TopkConfig { min_weight: 0.0, ..TopkConfig::default() };
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        let (approx, m_approx) = run(
            &store,
            &q,
            &rules,
            &TopkConfig { epsilon: 0.05, ..cfg.clone() },
        );
        assert!(m_exact.pulls > 200, "exact must drain the weak tail: {m_exact:?}");
        assert!(
            m_approx.pulls < m_exact.pulls / 10,
            "ε mode must retire the tail: {} vs {}",
            m_approx.pulls,
            m_exact.pulls
        );
        assert!(m_approx.approx_cutoffs > 0, "{m_approx:?}");
        // Rank-wise guarantee: prob(approx[r]) ≥ prob(exact[r]) − ε.
        for (r, e_ans) in exact.iter().enumerate() {
            let pe = e_ans.score.exp();
            let pa = approx.get(r).map_or(0.0, |a| a.score.exp());
            assert!(
                pa >= pe - 0.05 - 1e-9,
                "rank {r}: approx {pa} not within ε of exact {pe}"
            );
        }
        // The strong answers survive with their exact scores.
        assert!(approx.len() >= 3);
        for (a, e_ans) in approx.iter().take(3).zip(exact.iter().take(3)) {
            assert_eq!(a.key, e_ans.key);
            assert!((a.score - e_ans.score).abs() < 1e-12);
        }
    }

    #[test]
    fn epsilon_skips_hopeless_variants_before_opening_lists() {
        // A structural variant whose best conceivable answer is ≤ ε is
        // skipped by the admission check without a single posting-list
        // open — even when no k-th answer exists yet.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        let (x, y, z) = (
            trinit_relax::TTerm::Var(trinit_relax::RVar(0)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(1)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(2)),
        );
        rules.add(Rule::structural(
            "negligible structural",
            vec![trinit_relax::Template::new(
                x,
                trinit_relax::TTerm::Const(aff),
                y,
            )],
            vec![
                trinit_relax::Template::new(x, trinit_relax::TTerm::Const(aff), z),
                trinit_relax::Template::new(z, trinit_relax::TTerm::Const(housed), y),
            ],
            0.0001,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("MaxPlanck", "affiliation", "y")
            .limit(50) // k far above the answer count: no kth to prune with
            .build();
        let cfg = TopkConfig { min_weight: 0.0, ..TopkConfig::default() };
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        let (approx, m_approx) = run(
            &store,
            &q,
            &rules,
            &TopkConfig { epsilon: 0.01, ..cfg },
        );
        assert!(m_approx.approx_cutoffs > 0, "{m_approx:?}");
        assert!(m_approx.pulls < m_exact.pulls, "{m_approx:?} vs {m_exact:?}");
        for (r, e_ans) in exact.iter().enumerate() {
            let pe = e_ans.score.exp();
            let pa = approx.get(r).map_or(0.0, |a| a.score.exp());
            assert!(pa >= pe - 0.01 - 1e-9, "rank {r}: {pa} vs {pe}");
        }
    }

    /// The store the budget tests share: a 3-strong / 200-weak-tail
    /// relaxation workload where the exact engine must drain the tail.
    fn weak_tail_store() -> (XkgStore, RuleSet) {
        let mut b = XkgBuilder::new();
        let src = b.intern_source("d");
        let p = b.dict_mut().resource("p");
        let weak = b.dict_mut().token("weakly related");
        let e = b.dict_mut().resource("E");
        for i in 0..3u32 {
            let o = b.dict_mut().resource(&format!("strong{i}"));
            b.add_extracted(e, p, o, 0.9, src);
        }
        for i in 0..200u32 {
            let o = b.dict_mut().resource(&format!("weak{i}"));
            b.add_extracted(e, weak, o, 0.9, src);
        }
        let store = b.build();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            store.resource("p").unwrap(),
            store.token("weakly related").unwrap(),
            0.04,
            RuleProvenance::UserDefined,
        ));
        (store, rules)
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_exact_and_labeled_exact() {
        // The ungoverned default — and a ladder with no limits to pace
        // it against — must reproduce the exact engine bit for bit:
        // same answers, same pull counts, Completeness::Exact.
        let (store, rules) = weak_tail_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(300)
            .build();
        let cfg = TopkConfig { min_weight: 0.0, ..TopkConfig::default() };
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        for budget in [
            ExecBudget::default(),
            // Ladder rungs without any hard limit: no budget fraction
            // exists, so the rungs must never engage.
            ExecBudget {
                ladder: vec![DegradationRung { epsilon: 0.5, theta: 0.5 }],
                ..ExecBudget::default()
            },
        ] {
            let governed = run_governed(
                &store,
                &q,
                &rules,
                &TopkConfig { budget, ..cfg.clone() },
                None,
            );
            assert_same_answers(&governed.answers, &exact);
            assert_eq!(governed.metrics.pulls, m_exact.pulls, "bit-identical pull counts");
            assert_eq!(governed.completeness, Completeness::Exact);
            assert_eq!(governed.metrics.degradation_steps, 0);
            assert_eq!(governed.metrics.budget_cutoffs, 0);
            assert_eq!(governed.metrics.deadline_cutoffs, 0);
        }
    }

    #[test]
    fn max_pulls_cutoff_truncates_honestly_with_guaranteed_prefix() {
        // A pull budget far below the exact engine's demand: the run
        // must stop near the limit and label itself Truncated{Pulls},
        // with the guaranteed prefix carrying exact answers.
        let (store, rules) = weak_tail_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(300)
            .build();
        let cfg = TopkConfig { min_weight: 0.0, ..TopkConfig::default() };
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        let governed = run_governed(
            &store,
            &q,
            &rules,
            &TopkConfig {
                budget: ExecBudget { max_pulls: Some(10), ..ExecBudget::default() },
                ..cfg
            },
            None,
        );
        assert!(
            governed.metrics.pulls <= 11,
            "cutoff must stop near the limit: {:?}",
            governed.metrics
        );
        assert!(governed.metrics.pulls < m_exact.pulls);
        assert_eq!(governed.metrics.budget_cutoffs, 1, "{:?}", governed.metrics);
        let Completeness::Truncated { reason, guaranteed_rank } = governed.completeness else {
            panic!("expected truncation, got {:?}", governed.completeness);
        };
        assert_eq!(reason, CutoffReason::Pulls);
        // The guaranteed prefix must agree with the exact ranking.
        assert!(guaranteed_rank <= governed.answers.len());
        for (r, exact_answer) in exact.iter().enumerate().take(guaranteed_rank) {
            assert_eq!(governed.answers[r].key, exact_answer.key, "guaranteed rank {r}");
            assert!((governed.answers[r].score - exact_answer.score).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_deadline_truncates_with_deadline_reason() {
        let (store, rules) = weak_tail_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(300)
            .build();
        let governed = run_governed(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                budget: ExecBudget {
                    deadline: Some(std::time::Duration::ZERO),
                    ..ExecBudget::default()
                },
                ..TopkConfig::default()
            },
            None,
        );
        assert!(governed.metrics.deadline_cutoffs >= 1, "{:?}", governed.metrics);
        assert!(
            matches!(
                governed.completeness,
                Completeness::Truncated { reason: CutoffReason::Deadline, .. }
            ),
            "got {:?}",
            governed.completeness
        );
    }

    #[test]
    fn max_answers_cutoff_reports_answers_reason() {
        // 3 × 4 cross product materializes 12 answers; capping at 5
        // must fire the answers budget.
        let mut b = XkgBuilder::new();
        for i in 0..3 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
        }
        for i in 0..4 {
            b.add_kg_resources(&format!("t{i}"), "q", &format!("u{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("a", "p", "b")
            .pattern_v_r_v("c", "q", "d")
            .limit(1000)
            .build();
        let governed = run_governed(
            &store,
            &q,
            &RuleSet::new(),
            &TopkConfig {
                budget: ExecBudget { max_answers: Some(5), ..ExecBudget::default() },
                ..TopkConfig::default()
            },
            None,
        );
        assert!(governed.answers.len() < 12, "{}", governed.answers.len());
        assert_eq!(governed.metrics.budget_cutoffs, 1, "{:?}", governed.metrics);
        assert!(
            matches!(
                governed.completeness,
                Completeness::Truncated { reason: CutoffReason::Answers, .. }
            ),
            "got {:?}",
            governed.completeness
        );
    }

    #[test]
    fn degradation_ladder_escalates_epsilon_instead_of_dying_at_the_wall() {
        // A generous pull budget whose soft region starts almost
        // immediately, with an ε rung big enough to retire the weak
        // tail: the run degrades to Approx (the ladder's ε criterion
        // finishes it) instead of hitting the hard cutoff.
        let (store, rules) = weak_tail_store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(300)
            .build();
        let cfg = TopkConfig { min_weight: 0.0, ..TopkConfig::default() };
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        let governed = run_governed(
            &store,
            &q,
            &rules,
            &TopkConfig {
                budget: ExecBudget {
                    max_pulls: Some(m_exact.pulls * 2),
                    soft_fraction: 0.01,
                    ladder: vec![DegradationRung { epsilon: 0.05, theta: 0.0 }],
                    ..ExecBudget::default()
                },
                ..cfg
            },
            None,
        );
        assert!(governed.metrics.degradation_steps >= 1, "{:?}", governed.metrics);
        assert_eq!(governed.metrics.budget_cutoffs, 0, "{:?}", governed.metrics);
        assert!(
            governed.metrics.pulls < m_exact.pulls / 10,
            "the escalated ε must retire the tail: {} vs {}",
            governed.metrics.pulls,
            m_exact.pulls
        );
        let Completeness::Approx { epsilon, .. } = governed.completeness else {
            panic!("expected Approx, got {:?}", governed.completeness);
        };
        assert!((epsilon - 0.05).abs() < 1e-12);
        // The ladder's ε guarantee holds rank-wise.
        for (r, e_ans) in exact.iter().enumerate() {
            let pe = e_ans.score.exp();
            let pa = governed.answers.get(r).map_or(0.0, |a| a.score.exp());
            assert!(pa >= pe - 0.05 - 1e-9, "rank {r}: {pa} vs {pe}");
        }
    }

    #[test]
    fn relative_theta_stops_early_with_rankwise_ratio_guarantee() {
        // Two-stream cross product with slowly declining scores: the
        // exact threshold needs a deep drain before the k-th answer
        // dominates every frontier product, while θ accepts once the
        // k-th is within a (1−θ) factor — strictly fewer pulls, and
        // every returned rank keeps prob ≥ (1−θ)·prob(exact).
        let mut b = XkgBuilder::new();
        let src = b.intern_source("d");
        let p = b.dict_mut().resource("p");
        let qq = b.dict_mut().resource("q");
        for i in 0..40u32 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            b.add_extracted(s, p, o, 0.9 - 0.01 * i as f32, src);
            let t = b.dict_mut().resource(&format!("t{i}"));
            let u = b.dict_mut().resource(&format!("u{i}"));
            b.add_extracted(t, qq, u, 0.9 - 0.01 * i as f32, src);
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("a", "p", "b")
            .pattern_v_r_v("c", "q", "d")
            .limit(30)
            .build();
        let rules = RuleSet::new();
        let cfg = TopkConfig::default();
        let (exact, m_exact) = run(&store, &q, &rules, &cfg);
        let theta = 0.5;
        let (approx, m_theta) = {
            let governed = run_governed(
                &store,
                &q,
                &rules,
                &TopkConfig { theta, ..cfg },
                None,
            );
            assert_eq!(
                governed.completeness,
                Completeness::Approx { epsilon: 0.0, theta },
                "metrics: {:?}",
                governed.metrics
            );
            (governed.answers, governed.metrics)
        };
        assert!(m_theta.approx_cutoffs > 0, "{m_theta:?}");
        assert!(
            m_theta.pulls < m_exact.pulls,
            "θ must terminate earlier: {} vs {}",
            m_theta.pulls,
            m_exact.pulls
        );
        assert_eq!(approx.len(), exact.len());
        for (r, e_ans) in exact.iter().enumerate() {
            let pe = e_ans.score.exp();
            let pa = approx[r].score.exp();
            assert!(
                pa >= (1.0 - theta) * pe - 1e-12,
                "rank {r}: {pa} below (1−θ)·{pe}"
            );
        }
    }
}
