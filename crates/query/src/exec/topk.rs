//! Incremental top-k query processing (paper §4).
//!
//! "TriniT uses a top-k approach to query processing that is an extension
//! of the incremental top-k algorithm of [Theobald et al., SIGIR'05],
//! guided by \[the\] scoring scheme ... Top-k query processing is based on
//! the ability to access answers for a triple pattern in sorted order of
//! their scores, allowing us to go only as far as necessary into each
//! triple pattern index list. Additionally, query processing utilizes
//! incremental merging of triple patterns and their relaxed forms,
//! invoking a relaxation only when it can contribute to the top-k
//! answers."
//!
//! Architecture:
//!
//! * **Pattern alternatives** — each original pattern plus its relaxed
//!   forms under single-pattern rules (chained up to a depth), each with
//!   a combined weight.
//! * **[`IncrementalMerge`]** — a priority queue over the alternatives of
//!   one pattern. Unopened alternatives are held at their upper bound
//!   (`weight × 1.0`); an alternative's posting list is materialized only
//!   when that bound rises to the top — the "invoked only when it can
//!   contribute" behaviour.
//! * **Hash-partitioned rank join** — HRJN-style: streams are pulled
//!   highest-frontier first; each new item joins against the seen items
//!   of the other streams. Each stream keeps its seen items partitioned
//!   by the values of its *join variables* (variables shared with other
//!   streams in the variant), so an arriving item probes exactly one
//!   bucket per stream instead of scanning every seen item — the
//!   Yannakakis-style observation that only join-compatible partners can
//!   ever merge. Items whose relaxed form dropped a join variable land
//!   in a small always-scanned residual list, and streams with no shared
//!   variables degrade to a single bucket (a true cross product). The
//!   combination loop works in a single scratch [`Bindings`] with
//!   undo-based backtracking; a combined `Bindings` is allocated once
//!   per *successful* full join, never speculatively.
//! * **Tightened termination** — the classic threshold
//!   `T = max_i (frontier_i + Σ_{j≠i} best_j)` bounds every unseen
//!   combination; processing stops once the k-th answer's score reaches
//!   it. On top, the store's precomputed posting index is wired into the
//!   bound: unopened alternatives of index-served shapes start at their
//!   *exact* head emission probability instead of the trivial `weight ×
//!   1.0`, whole variants are pruned when even their head-bound product
//!   cannot beat the k-th answer, and individual streams stop being
//!   pulled (are "capped") as soon as their frontier cannot contribute
//!   a better combination. The merge also tracks its remaining emission
//!   mass O(1) — via the index's prefix-sum columns for index-served
//!   lists, an incremental consumed-weight cursor otherwise
//!   ([`IncrementalMerge::remaining_mass`]); it provably dominates the
//!   frontier (a property test pins the invariant), so it serves as the
//!   bound's verified soundness envelope and as an observability
//!   surface rather than the capping criterion itself. Early
//!   retirements are counted in [`ExecMetrics::early_cutoffs`];
//!   sorted-access rounds in [`ExecMetrics::pulls`].
//!   `TopkConfig::tighten_threshold` disables the tightening for A/B
//!   comparison — answers are identical either way.
//! * **Structural variants** — multi-pattern rules (e.g. paper rule 1)
//!   rewrite the query as a whole; each variant runs through the machinery
//!   above, sharing one global answer collector.
//! * **Cache hierarchy** — materialized posting lists are shared at two
//!   levels: a per-execution [`PostingCache`] (structural variants of one
//!   query reuse a canonical pattern's list) and an optional store-level
//!   [`SharedPostingCache`] LRU (consecutive queries of an interactive
//!   session reuse lists across executions; see [`run_cached`]).

use std::cell::RefCell;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use trinit_relax::{
    apply_rule, apply_rule_oracle, canonical_key, ConditionOracle, QPattern, QTerm, Rule, RuleId,
    RuleSet, VarId,
};
use trinit_xkg::{TermId, TripleId, XkgStore};

use crate::answer::{Answer, AnswerCollector, Bindings, Derivation};
use crate::ast::Query;
use crate::exec::{ExecMetrics, TripleLookup};
use crate::score::{
    head_prob_bound_global, ln_weight, CacheSource, GlobalTotals, PostingCache, ScoredMatches,
    SharedPostingCache, LOG_ZERO,
};

/// Configuration of the incremental top-k processor.
#[derive(Debug, Clone)]
pub struct TopkConfig {
    /// Maximum chain length of single-pattern rules per pattern.
    pub chain_depth: usize,
    /// Maximum applications of structural (multi-pattern / multi-RHS)
    /// rules at the query level.
    pub structural_depth: usize,
    /// Alternatives and variants below this weight are pruned.
    pub min_weight: f64,
    /// Cap on alternatives per pattern.
    pub max_alternatives: usize,
    /// Cap on structural query variants.
    pub max_variants: usize,
    /// Wire the precomputed posting index into the termination bound:
    /// exact head probabilities for unopened alternatives, head-bound
    /// variant pruning, and remaining-mass stream capping. Answers are
    /// identical with or without; tightening only reduces the work
    /// ([`ExecMetrics::pulls`]).
    pub tighten_threshold: bool,
}

impl Default for TopkConfig {
    fn default() -> Self {
        TopkConfig {
            chain_depth: 2,
            structural_depth: 1,
            min_weight: 0.05,
            max_alternatives: 64,
            max_variants: 16,
            tighten_threshold: true,
        }
    }
}

/// True if a rule can participate in per-pattern incremental merging:
/// one pattern in, one pattern out, constant LHS predicate.
fn is_mergeable(rule: &Rule) -> bool {
    rule.lhs.len() == 1 && rule.rhs.len() == 1 && rule.lhs_predicate().is_some()
}

/// One relaxed form of a single pattern.
#[derive(Debug, Clone)]
struct Alternative<'s> {
    pattern: QPattern,
    weight: f64,
    trace: Vec<RuleId>,
    matches: Option<ScoredMatches<'s>>,
    /// Sound upper bound on this alternative's best emission probability
    /// before its list is opened: the exact head probability for
    /// index-served shapes under the tightened threshold, 1.0 otherwise.
    head_bound: f64,
}

/// Computes the alternatives of one pattern under the mergeable rules.
///
/// `fresh_base` is the first variable id this pattern may allocate for
/// RHS-fresh rule variables; callers give each pattern a disjoint range
/// so fresh variables of different streams never alias.
fn pattern_alternatives<'s>(
    pattern: &QPattern,
    rules: &RuleSet,
    cfg: &TopkConfig,
    fresh_base: u16,
) -> Vec<Alternative<'s>> {
    let mut out: Vec<Alternative<'s>> = vec![Alternative {
        pattern: *pattern,
        weight: 1.0,
        trace: Vec::new(),
        matches: None,
        head_bound: 1.0,
    }];
    let mut fresh_next = fresh_base;
    let mut frontier = vec![0usize]; // indices into `out`
    for _ in 0..cfg.chain_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_pattern, cur_weight, cur_trace) = {
                let a = &out[idx];
                (a.pattern, a.weight, a.trace.clone())
            };
            let Some(pred) = cur_pattern.p.term() else {
                continue;
            };
            for &rule_id in rules.rules_for_predicate(pred) {
                let rule = rules.get(rule_id);
                if !is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule(&[cur_pattern], rule, rule_id) {
                    let [new_pattern] = rewriting.patterns.as_slice() else {
                        continue;
                    };
                    // Remap any fresh variables into this pattern's range.
                    let new_pattern = remap_fresh(*new_pattern, &cur_pattern, &mut fresh_next);
                    match out.iter_mut().find(|a| a.pattern == new_pattern) {
                        Some(existing) => {
                            if weight > existing.weight {
                                existing.weight = weight;
                                existing.trace = cur_trace
                                    .iter()
                                    .copied()
                                    .chain(std::iter::once(rule_id))
                                    .collect();
                            }
                        }
                        None => {
                            if out.len() >= cfg.max_alternatives {
                                continue;
                            }
                            let mut trace = cur_trace.clone();
                            trace.push(rule_id);
                            out.push(Alternative {
                                pattern: new_pattern,
                                weight,
                                trace,
                                matches: None,
                                head_bound: 1.0,
                            });
                            next_frontier.push(out.len() - 1);
                        }
                    }
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Remaps variables of `pattern` that do not occur in `origin` (i.e.
/// rule-introduced fresh variables) into the caller-controlled range.
fn remap_fresh(pattern: QPattern, origin: &QPattern, fresh_next: &mut u16) -> QPattern {
    let origin_vars: Vec<VarId> = origin.vars().collect();
    let mut mapping: Vec<(VarId, VarId)> = Vec::new();
    let map = |t: QTerm, fresh_next: &mut u16, mapping: &mut Vec<(VarId, VarId)>| match t {
        QTerm::Var(v) if !origin_vars.contains(&v) => {
            if let Some(&(_, nv)) = mapping.iter().find(|(old, _)| *old == v) {
                QTerm::Var(nv)
            } else {
                let nv = VarId(*fresh_next);
                *fresh_next += 1;
                mapping.push((v, nv));
                QTerm::Var(nv)
            }
        }
        other => other,
    };
    QPattern::new(
        map(pattern.s, fresh_next, &mut mapping),
        map(pattern.p, fresh_next, &mut mapping),
        map(pattern.o, fresh_next, &mut mapping),
    )
}

/// Heap entry of the incremental merge: an alternative keyed by an upper
/// bound on its next emission.
#[derive(Debug)]
struct MergeEntry {
    bound: f64,
    alt: usize,
    opened: bool,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.alt == other.alt && self.opened == other.opened
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.alt.cmp(&self.alt))
    }
}

/// A source of rank-join stream items: emissions in globally descending
/// combined-probability order with a sound upper bound on the next one.
///
/// [`IncrementalMerge`] is the single-store source; the sharded executor
/// merges one `IncrementalMerge` per shard into a
/// [`crate::exec::sharded::ShardedMerge`]. The rank join itself is
/// generic over this trait, so partitioned execution reuses the exact
/// join, threshold, and capping machinery of the monolithic engine.
pub trait RankSource {
    /// Upper bound on the probability of the next emission, or `None`
    /// if exhausted.
    fn peek_bound(&self) -> Option<f64>;

    /// Produces the next emission in descending order.
    fn next_merged(&mut self, metrics: &mut ExecMetrics) -> Option<Merged>;
}

/// An emission of the incremental merge.
#[derive(Debug, Clone)]
pub struct Merged {
    /// The matched triple.
    pub triple: TripleId,
    /// Combined probability `w_alt × P(t | alt pattern)`.
    pub prob: f64,
    /// The alternative's pattern (needed to bind variables).
    pub pattern: QPattern,
    /// Rules on the alternative's chain.
    pub trace: Vec<RuleId>,
    /// The alternative's weight.
    pub weight: f64,
}

/// Incremental merge over one pattern's alternatives (Theobald et al.
/// style): emits matches across all alternatives in globally descending
/// combined-probability order, opening an alternative's posting list only
/// when its upper bound reaches the top of the queue.
pub struct IncrementalMerge<'a> {
    store: &'a XkgStore,
    alts: Vec<Alternative<'a>>,
    heap: BinaryHeap<MergeEntry>,
    /// Shared per-execution posting cache: structural variants and
    /// alternatives with the same canonical pattern reuse one
    /// materialized list.
    cache: Rc<RefCell<PostingCache>>,
    /// Optional store-level cache shared across executions (sessions).
    shared: Option<&'a SharedPostingCache>,
    /// Optional global normalization totals: set when `store` is one
    /// shard of a partitioned store, `None` for monolithic execution.
    totals: Option<&'a dyn GlobalTotals>,
    /// Incrementally maintained sound upper bound on every single
    /// emission the merge can still produce: Σ over alternatives of
    /// `weight × remaining`, where `remaining` is the head bound until
    /// an alternative opens and its list's unconsumed mass afterwards
    /// (each of which bounds that alternative's next emission). Each
    /// emission subtracts its own contribution, so reading the bound is
    /// O(1) per capping round.
    mass_upper: f64,
}

impl<'a> IncrementalMerge<'a> {
    fn new(
        store: &'a XkgStore,
        mut alts: Vec<Alternative<'a>>,
        cache: Rc<RefCell<PostingCache>>,
        shared: Option<&'a SharedPostingCache>,
        tighten: bool,
        totals: Option<&'a dyn GlobalTotals>,
    ) -> IncrementalMerge<'a> {
        let mut heap = BinaryHeap::with_capacity(alts.len());
        for (i, alt) in alts.iter_mut().enumerate() {
            if tighten {
                // Exact head probability for index-served shapes
                // (anchored subject/object strata included), read in
                // O(1) from the precomputed posting index — the
                // alternative enters the queue at its true first-emission
                // bound instead of the trivial `weight × 1.0`. Under a
                // partitioned store the head weight is divided by the
                // *global* total, so each shard enters the merge at its
                // exact globally-normalized head.
                alt.head_bound = head_prob_bound_global(store, &alt.pattern, totals);
                // A head bound of exactly 0 is only reported for
                // index-served shapes whose match set carries no
                // emission mass (empty or all-zero-weight groups, which
                // the index serves as empty lists): skip such
                // alternatives outright instead of letting a zero-keyed
                // heap entry linger for the threshold to trip over.
                if alt.head_bound <= 0.0 {
                    continue;
                }
            }
            heap.push(MergeEntry {
                bound: alt.weight * alt.head_bound,
                alt: i,
                opened: false,
            });
        }
        let mass_upper = alts.iter().map(|a| a.weight * a.head_bound).sum();
        IncrementalMerge {
            store,
            alts,
            heap,
            cache,
            shared,
            totals,
            mass_upper,
        }
    }

    /// Builds the merge over `pattern`'s alternatives under `rules` —
    /// the building block the sharded merge instantiates once per shard.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_pattern(
        store: &'a XkgStore,
        pattern: &QPattern,
        rules: &RuleSet,
        cfg: &TopkConfig,
        fresh_base: u16,
        cache: Rc<RefCell<PostingCache>>,
        shared: Option<&'a SharedPostingCache>,
        totals: Option<&'a dyn GlobalTotals>,
    ) -> IncrementalMerge<'a> {
        let alts = pattern_alternatives(pattern, rules, cfg, fresh_base);
        IncrementalMerge::new(store, alts, cache, shared, cfg.tighten_threshold, totals)
    }

    /// Upper bound on the probability of the next emission, or `None` if
    /// exhausted.
    pub fn peek_bound(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.bound)
    }

    /// Upper bound on any probability the merge can still emit — and,
    /// once alternatives are open, on their collective unconsumed mass
    /// (kept current by the list cursors' O(1) weight tracking; unopened
    /// alternatives contribute their head bound). Always ≥ any single
    /// future emission, hence a sound — if loose — termination bound.
    pub fn remaining_mass(&self) -> f64 {
        self.mass_upper.max(0.0)
    }

    /// Opens an unopened heap entry's posting list — the moment its
    /// relaxation is "invoked" — and re-queues it at its exact head
    /// probability.
    fn open_entry(&mut self, entry: MergeEntry, metrics: &mut ExecMetrics) {
        let alt = &mut self.alts[entry.alt];
        // The cache serves structural variants sharing this canonical
        // pattern.
        if !alt.trace.is_empty() {
            metrics.relaxations_opened += 1;
        }
        let (matches, source) = ScoredMatches::build_global(
            self.store,
            &alt.pattern,
            &mut self.cache.borrow_mut(),
            self.shared,
            self.totals,
        );
        match source {
            CacheSource::Built => metrics.posting_lists_built += 1,
            CacheSource::ExecHit => metrics.posting_cache_hits += 1,
            CacheSource::SharedHit => metrics.shared_cache_hits += 1,
        }
        // Serve-kind accounting for fresh builds: anchored-index serves
        // never sort; `ranged_serves` are the selective exact-range
        // orderings (bounded sorts, chosen over larger group walks);
        // `posting_sorts` counts the unbounded materialize-and-sort
        // fallback, which the index makes unreachable — it must stay 0.
        if let Some(kind) = matches.build_kind() {
            match kind {
                k if k.is_anchored() => metrics.anchored_serves += 1,
                trinit_xkg::ServeKind::Range => metrics.ranged_serves += 1,
                trinit_xkg::ServeKind::Scanned => metrics.posting_sorts += 1,
                _ => {}
            }
        }
        if let Some(p) = matches.peek_prob() {
            self.heap.push(MergeEntry {
                bound: alt.weight * p,
                alt: entry.alt,
                opened: true,
            });
        }
        // Replace the alternative's head-bound contribution with its
        // actual (full) list mass.
        self.mass_upper += alt.weight * (matches.remaining_mass() - alt.head_bound);
        alt.matches = Some(matches);
    }

    /// Opens alternatives until the top of the queue is an *opened* list
    /// head, making [`IncrementalMerge::peek_bound`] the exact
    /// probability of the next emission (not just an upper bound).
    /// Returns that exact bound, or `None` if the merge is exhausted.
    /// The sharded merge uses this to order emissions across shards
    /// without pulling speculatively.
    pub fn tighten_head(&mut self, metrics: &mut ExecMetrics) -> Option<f64> {
        loop {
            let opened = self.heap.peek()?.opened;
            if opened {
                return self.peek_bound();
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.open_entry(entry, metrics);
        }
    }

    /// Produces the next emission in descending order.
    pub fn next_merged(&mut self, metrics: &mut ExecMetrics) -> Option<Merged> {
        loop {
            let entry = self.heap.pop()?;
            if !entry.opened {
                self.open_entry(entry, metrics);
                continue;
            }
            let alt = &mut self.alts[entry.alt];
            let matches = alt.matches.as_mut().expect("opened alternative");
            let Some((triple, prob)) = matches.next_entry() else {
                continue;
            };
            self.mass_upper -= alt.weight * prob;
            metrics.postings_scanned += 1;
            if let Some(p) = matches.peek_prob() {
                self.heap.push(MergeEntry {
                    bound: alt.weight * p,
                    alt: entry.alt,
                    opened: true,
                });
            }
            return Some(Merged {
                triple,
                prob: alt.weight * prob,
                pattern: alt.pattern,
                trace: alt.trace.clone(),
                weight: alt.weight,
            });
        }
    }
}

impl RankSource for IncrementalMerge<'_> {
    #[inline]
    fn peek_bound(&self) -> Option<f64> {
        IncrementalMerge::peek_bound(self)
    }

    #[inline]
    fn next_merged(&mut self, metrics: &mut ExecMetrics) -> Option<Merged> {
        IncrementalMerge::next_merged(self, metrics)
    }
}

/// An item seen by one rank-join stream: the (few) variable bindings its
/// triple induced, plus provenance for derivations.
#[derive(Debug, Clone)]
pub(crate) struct SeenItem {
    /// `(variable, value)` pairs bound by this item's pattern — at most
    /// three, deduplicated. Stored as pairs (not a dense [`Bindings`])
    /// so joining is an O(|pairs|) probe into the shared scratch
    /// assignment instead of a per-candidate vector clone.
    bound: Vec<(VarId, TermId)>,
    log_score: f64,
    pattern: QPattern,
    triple: TripleId,
    trace: Vec<RuleId>,
    weight: f64,
}

pub(crate) struct Stream<M> {
    merge: M,
    seen: Vec<SeenItem>,
    /// This stream's join variables: variables of its variant pattern
    /// shared with at least one other stream. Sorted, deduplicated; the
    /// partition key is their value tuple.
    join_vars: Vec<VarId>,
    /// Seen items that bind every join variable, partitioned by their
    /// join-key values. With no join variables all items share the empty
    /// key (a deliberate single-bucket cross product).
    buckets: HashMap<Vec<TermId>, Vec<u32>>,
    /// Seen items whose (relaxed) pattern dropped a join variable; they
    /// are compatible with any key value there, so every probe scans
    /// this residual list as well.
    partial: Vec<u32>,
    best_log: f64,
    exhausted: bool,
    /// Retired by the tightened threshold: no unseen item of this stream
    /// can improve the top-k, so it is no longer pulled (its seen items
    /// keep participating in other streams' joins).
    capped: bool,
}

impl<M: RankSource> Stream<M> {
    /// A fresh stream over `merge` with the given join variables.
    pub(crate) fn new(merge: M, join_vars: Vec<VarId>) -> Stream<M> {
        Stream {
            merge,
            seen: Vec::new(),
            join_vars,
            buckets: HashMap::new(),
            partial: Vec::new(),
            best_log: LOG_ZERO,
            exhausted: false,
            capped: false,
        }
    }

    fn frontier_log(&self) -> f64 {
        if self.exhausted {
            LOG_ZERO
        } else {
            self.merge.peek_bound().map_or(LOG_ZERO, ln_weight)
        }
    }

    /// Upper bound on any item this stream can contribute.
    fn contribution_bound(&self) -> f64 {
        if self.seen.is_empty() {
            self.frontier_log()
        } else {
            self.best_log
        }
    }

    /// Remembers an item, filing it under its join-key partition.
    fn push_seen(&mut self, item: SeenItem) {
        if self.seen.is_empty() {
            self.best_log = item.log_score;
        }
        let idx = self.seen.len() as u32;
        let mut key = Vec::with_capacity(self.join_vars.len());
        let mut complete = true;
        for &v in &self.join_vars {
            match item.bound.iter().find(|(u, _)| *u == v) {
                Some(&(_, t)) => key.push(t),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            self.buckets.entry(key).or_default().push(idx);
        } else {
            self.partial.push(idx);
        }
        self.seen.push(item);
    }
}

/// The `(variable, value)` pairs a pattern induces against a concrete
/// triple, deduplicated. Returns `None` if a repeated variable meets two
/// different values (cannot happen for triples from the pattern's own
/// match list, which pre-filters repetition, but kept defensive).
fn bind_pairs(
    pattern: &QPattern,
    lookup: &dyn TripleLookup,
    triple: TripleId,
) -> Option<Vec<(VarId, TermId)>> {
    let t = lookup.triple_of(triple);
    let mut out: Vec<(VarId, TermId)> = Vec::with_capacity(3);
    for (slot, value) in pattern.slots().into_iter().zip([t.s, t.p, t.o]) {
        if let QTerm::Var(v) = slot {
            match out.iter().find(|(u, _)| *u == v) {
                Some(&(_, existing)) => {
                    if existing != value {
                        return None;
                    }
                }
                None => out.push((v, value)),
            }
        }
    }
    Some(out)
}

/// Enumerates structural query variants (non-mergeable rules applied at
/// the query level), keeping original rule ids in traces. Data
/// conditions are verified through `oracle` — the whole store for the
/// monolithic engine, a cross-shard oracle for partitioned execution.
pub(crate) fn structural_variants(
    oracle: Option<&dyn ConditionOracle>,
    patterns: &[QPattern],
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> Vec<(Vec<QPattern>, f64, Vec<RuleId>)> {
    let original_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);
    let mut out: Vec<(Vec<QPattern>, f64, Vec<RuleId>)> =
        vec![(patterns.to_vec(), 1.0, Vec::new())];
    let mut keys = vec![canonical_key(patterns, original_vars)];
    let mut frontier = vec![0usize];
    for _ in 0..cfg.structural_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_patterns, cur_weight, cur_trace) = out[idx].clone();
            for (rule_id, rule) in rules.iter() {
                if is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule_oracle(&cur_patterns, rule, rule_id, oracle) {
                    let key = canonical_key(&rewriting.patterns, original_vars);
                    if keys.contains(&key) || out.len() >= cfg.max_variants {
                        continue;
                    }
                    keys.push(key);
                    let mut trace = cur_trace.clone();
                    trace.push(rule_id);
                    out.push((rewriting.patterns, weight, trace));
                    next_frontier.push(out.len() - 1);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Runs incremental top-k processing for `query` under `rules`.
///
/// Returns the top `query.k` answers (identical to what
/// [`crate::exec::expand::run`] would return for an equivalent rule
/// budget) and the work metrics, which are the point: posting lists are
/// only materialized, and relaxations only invoked, when they can still
/// contribute to the top-k.
pub fn run(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> (Vec<Answer>, ExecMetrics) {
    run_cached(store, query, rules, cfg, None)
}

/// Like [`run`], additionally consulting a store-level posting cache
/// shared across executions — the session tier of the cache hierarchy.
/// Interactive workloads that re-issue queries over the same canonical
/// patterns (the paper's E6 setting) reuse materialized lists across
/// consecutive queries; hits are counted in
/// [`ExecMetrics::shared_cache_hits`].
pub fn run_cached(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
) -> (Vec<Answer>, ExecMetrics) {
    run_scaled(store, query, rules, cfg, shared, None, Some(store), Vec::new())
}

/// Like [`run_cached`], with the three extension points partitioned
/// execution needs: a [`GlobalTotals`] provider (so a store *slice*
/// scores its emissions with globally-correct normalization), an
/// explicit [`ConditionOracle`] for structural-rule data conditions
/// (existence across every slice), and a `seed` of already-known answers
/// offered to the collector before any posting list is opened (a
/// sharded executor seeds with the answers its per-shard runs found,
/// tightening the threshold from the first pull). With `totals = None`,
/// `oracle = Some(store)`, and an empty seed this *is* the monolithic
/// engine.
#[allow(clippy::too_many_arguments)]
pub fn run_scaled(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    shared: Option<&SharedPostingCache>,
    totals: Option<&dyn GlobalTotals>,
    oracle: Option<&dyn ConditionOracle>,
    seed: Vec<Answer>,
) -> (Vec<Answer>, ExecMetrics) {
    let mut metrics = ExecMetrics::default();
    let projection = query.effective_projection();
    let k = query.k.max(1);
    // Tracked collector: the k-th score the threshold reads on every
    // pull is maintained persistently on insert (O(1), zero allocation
    // per pull) instead of re-selected from all candidate scores.
    let mut collector = AnswerCollector::tracking(k);
    for answer in seed {
        collector.offer(answer);
    }

    // One posting cache for the whole execution: structural variants that
    // share a relaxed pattern never rebuild its matches.
    let cache = Rc::new(RefCell::new(PostingCache::new()));
    let variants = structural_variants(oracle, &query.patterns, rules, cfg);
    for (variant_patterns, variant_weight, variant_trace) in variants {
        metrics.rewritings_evaluated += 1;
        run_variant(
            store,
            rules,
            cfg,
            &variant_patterns,
            variant_weight,
            &variant_trace,
            &projection,
            k,
            &cache,
            shared,
            totals,
            &mut collector,
            &mut metrics,
        );
    }
    (collector.into_top_k(query.k), metrics)
}

/// The join variables of each pattern: variables shared with at least
/// one other pattern of the variant. Relaxed alternatives only rename
/// rule-introduced *fresh* variables (into per-stream disjoint ranges),
/// so shared variables are exactly the shared variables of the variant
/// patterns themselves.
pub(crate) fn join_vars_of(patterns: &[QPattern]) -> Vec<Vec<VarId>> {
    patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut join_vars: Vec<VarId> = p.vars().collect();
            join_vars.sort_unstable();
            join_vars.dedup();
            join_vars.retain(|v| {
                patterns
                    .iter()
                    .enumerate()
                    .any(|(j, q)| j != i && q.vars().any(|w| w == *v))
            });
            join_vars
        })
        .collect()
}

/// The first variable id beyond every variable used by `patterns`.
pub(crate) fn max_var_of(patterns: &[QPattern]) -> u16 {
    patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1)
}

#[allow(clippy::too_many_arguments)]
fn run_variant(
    store: &XkgStore,
    rules: &RuleSet,
    cfg: &TopkConfig,
    patterns: &[QPattern],
    variant_weight: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    k: usize,
    cache: &Rc<RefCell<PostingCache>>,
    shared: Option<&SharedPostingCache>,
    totals: Option<&dyn GlobalTotals>,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    if patterns.is_empty() {
        return;
    }
    let tighten = cfg.tighten_threshold;
    let max_var = max_var_of(patterns);
    let join_vars = join_vars_of(patterns);
    let mut streams: Vec<Stream<IncrementalMerge<'_>>> = patterns
        .iter()
        .zip(join_vars)
        .enumerate()
        .map(|(i, (p, join_vars))| {
            let fresh_base = max_var + (i as u16) * 8;
            let alts = pattern_alternatives(p, rules, cfg, fresh_base);
            Stream::new(
                IncrementalMerge::new(store, alts, Rc::clone(cache), shared, tighten, totals),
                join_vars,
            )
        })
        .collect();

    rank_join(
        store,
        cfg,
        &mut streams,
        ln_weight(variant_weight),
        variant_trace,
        projection,
        k,
        max_var as usize + 64, // headroom for fresh variables
        collector,
        metrics,
    );
}

/// The rank join over one variant's streams: pulls the highest-frontier
/// stream, joins each arrival against the other streams' seen
/// partitions, and stops under the (optionally tightened) threshold.
/// Generic over the stream source so the monolithic and sharded engines
/// share every line of join, threshold, and capping logic; `lookup`
/// resolves emitted triple ids (global ids, for a sharded source).
///
/// Per round, the capping pass needs every stream's "others"
/// contribution sum. These are maintained as prefix/suffix sums over the
/// per-stream contribution bounds — O(streams) per round rather than the
/// O(streams²) of recomputing each exclusion sum from scratch. For up to
/// three streams the floating-point result is identical to the direct
/// exclusion sum; at higher arity the summation associates differently
/// (`(c0+(c2+c3))` vs `((c0+c2)+c3)`), an ULP-level difference between
/// two equally sound bounds on the same exact quantity.
#[allow(clippy::too_many_arguments)]
pub(crate) fn rank_join<M: RankSource>(
    lookup: &dyn TripleLookup,
    cfg: &TopkConfig,
    streams: &mut [Stream<M>],
    variant_log: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    k: usize,
    n_vars: usize,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    let tighten = cfg.tighten_threshold;

    // Head-bound variant pruning: every answer of this variant scores at
    // most variant_weight × Π_i (best emission of stream i), and each
    // stream's initial frontier is exactly that head bound. If the k-th
    // collected answer already matches it, nothing here can enter the
    // top-k — skip the variant without opening a single posting list.
    if tighten {
        if let Some(kth) = collector.kth_score(k) {
            let bound: f64 = variant_log + streams.iter().map(Stream::frontier_log).sum::<f64>();
            if kth >= bound {
                metrics.early_cutoffs += 1;
                return;
            }
        }
    }

    // Scratch assignment for the combination loop; `join_with_others`
    // always restores it to fully unbound.
    let mut scratch = Bindings::new(n_vars);

    // Per-round scratch for the contribution prefix/suffix sums.
    let n = streams.len();
    let mut contrib = vec![0.0f64; n];
    let mut prefix = vec![0.0f64; n + 1];
    let mut suffix = vec![0.0f64; n + 1];

    // Pick the non-exhausted, non-capped stream with the highest
    // frontier each round.
    while let Some(next) = (0..streams.len())
        .filter(|&i| !streams[i].exhausted && !streams[i].capped)
        .max_by(|&a, &b| streams[a].frontier_log().total_cmp(&streams[b].frontier_log()))
    {
        metrics.pulls += 1;
        let merged = streams[next].merge.next_merged(metrics);
        match merged {
            None => {
                streams[next].exhausted = true;
                // A stream with no matches at all kills the variant.
                if streams[next].seen.is_empty() {
                    return;
                }
            }
            Some(m) => {
                let Some(bound) = bind_pairs(&m.pattern, lookup, m.triple) else {
                    continue;
                };
                let log_score = ln_weight(m.prob);
                let item = SeenItem {
                    bound,
                    log_score,
                    pattern: m.pattern,
                    triple: m.triple,
                    trace: m.trace,
                    weight: m.weight,
                };

                // Join the new item with the seen items of other streams
                // (its own stream is skipped, so joining before remembering
                // the item is equivalent).
                join_with_others(
                    streams, next, &item, variant_log, variant_trace, projection, &mut scratch,
                    collector, metrics,
                );
                streams[next].push_seen(item);
            }
        }

        // Running contribution totals: Σ_{j≠i} contribution_bound(j) for
        // every i, via prefix/suffix sums over this round's bounds.
        for (i, c) in contrib.iter_mut().enumerate() {
            *c = streams[i].contribution_bound();
        }
        for i in 0..n {
            prefix[i + 1] = prefix[i] + contrib[i];
        }
        suffix[n] = 0.0;
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + contrib[i];
        }
        let others = |i: usize| prefix[i] + suffix[i + 1];

        // Threshold: best score any unseen combination can still achieve.
        // Capped streams produce no further items, so they drop out of
        // the outer max; their seen items still bound the inner product.
        let threshold = variant_log
            + (0..streams.len())
                .filter(|&i| !streams[i].exhausted && !streams[i].capped)
                .map(|i| streams[i].frontier_log() + others(i))
                .fold(LOG_ZERO, f64::max);

        if threshold == LOG_ZERO {
            break;
        }
        if let Some(kth) = collector.kth_score(k) {
            if kth >= threshold {
                break;
            }
            if tighten && streams.len() > 1 {
                // Stream capping: retire stream i once its frontier —
                // with the head-bound refinement, a tight bound on every
                // unseen item of i (the merge's O(1)-tracked remaining
                // mass dominates it and serves as the verified
                // soundness envelope) — combined
                // with the other streams' contribution bounds cannot
                // beat the k-th answer. Later rounds then stop pulling i
                // entirely instead of draining its tail. (Single-stream
                // variants skip this: there the cap condition is exactly
                // the global break above.)
                for (i, stream) in streams.iter_mut().enumerate() {
                    if stream.exhausted || stream.capped {
                        continue;
                    }
                    let stream_bound = stream.frontier_log();
                    if kth >= variant_log + stream_bound + others(i) {
                        stream.capped = true;
                        metrics.early_cutoffs += 1;
                        // A capped stream with nothing seen can never
                        // complete a combination: the variant is done.
                        if stream.seen.is_empty() {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Binds an item's `(variable, value)` pairs into the scratch
/// assignment, recording newly bound variables in `undo`. On conflict,
/// rolls back the partial binds and returns `false` — nothing is
/// allocated either way.
fn bind_all(scratch: &mut Bindings, bound: &[(VarId, TermId)], undo: &mut Vec<VarId>) -> bool {
    for &(v, t) in bound {
        if !scratch.try_bind_recorded(v, t, undo) {
            for &u in undo.iter() {
                scratch.unbind(u);
            }
            return false;
        }
    }
    true
}

/// The join-key values of `join_vars` under the scratch assignment, or
/// `None` if some join variable is still unbound (the accumulated
/// streams do not cover it, so every partition stays reachable).
fn probe_key(scratch: &Bindings, join_vars: &[VarId]) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(join_vars.len());
    for &v in join_vars {
        key.push(scratch.get(v)?);
    }
    Some(key)
}

/// Depth-first combination over the other streams' seen items. Each
/// stream is entered through its join-key partition: one hash probe
/// selects the only bucket whose items can merge with the accumulated
/// assignment (plus the residual list of items missing a join variable).
/// The scratch assignment is shared across the whole recursion with
/// undo-based backtracking; a combined `Bindings` is only materialized
/// inside `emit`, once per successful full join.
#[allow(clippy::too_many_arguments)]
fn combine<'s, M>(
    streams: &'s [Stream<M>],
    skip: usize,
    idx: usize,
    scratch: &mut Bindings,
    acc_score: f64,
    acc_items: &mut Vec<&'s SeenItem>,
    emit: &mut dyn FnMut(&Bindings, f64, &[&SeenItem]),
    metrics: &mut ExecMetrics,
) {
    if idx == streams.len() {
        emit(scratch, acc_score, acc_items);
        return;
    }
    if idx == skip {
        combine(
            streams, skip, idx + 1, scratch, acc_score, acc_items, emit, metrics,
        );
        return;
    }
    let stream = &streams[idx];
    let mut undo: Vec<VarId> = Vec::new();
    let try_candidate = |item: &'s SeenItem,
                             scratch: &mut Bindings,
                             acc_items: &mut Vec<&'s SeenItem>,
                             undo: &mut Vec<VarId>,
                             emit: &mut dyn FnMut(&Bindings, f64, &[&SeenItem]),
                             metrics: &mut ExecMetrics| {
        metrics.join_candidates += 1;
        undo.clear();
        if !bind_all(scratch, &item.bound, undo) {
            return;
        }
        acc_items.push(item);
        combine(
            streams,
            skip,
            idx + 1,
            scratch,
            acc_score + item.log_score,
            acc_items,
            emit,
            metrics,
        );
        acc_items.pop();
        for &v in undo.iter() {
            scratch.unbind(v);
        }
    };
    match probe_key(scratch, &stream.join_vars) {
        Some(key) => {
            if let Some(bucket) = stream.buckets.get(&key) {
                for &i in bucket {
                    try_candidate(
                        &stream.seen[i as usize],
                        scratch,
                        acc_items,
                        &mut undo,
                        emit,
                        metrics,
                    );
                }
            }
            for &i in &stream.partial {
                try_candidate(
                    &stream.seen[i as usize],
                    scratch,
                    acc_items,
                    &mut undo,
                    emit,
                    metrics,
                );
            }
        }
        None => {
            for item in &stream.seen {
                try_candidate(item, scratch, acc_items, &mut undo, emit, metrics);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn join_with_others<M>(
    streams: &[Stream<M>],
    new_stream: usize,
    new_item: &SeenItem,
    variant_log: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    scratch: &mut Bindings,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    let mut base_undo: Vec<VarId> = Vec::new();
    if !bind_all(scratch, &new_item.bound, &mut base_undo) {
        return; // scratch starts unbound, so this cannot conflict; defensive
    }
    let mut acc_items: Vec<&SeenItem> = vec![new_item];
    let base_score = new_item.log_score + variant_log;
    combine(
        streams,
        new_stream,
        0,
        scratch,
        base_score,
        &mut acc_items,
        &mut |bindings, score, items| {
            let mut rules: Vec<RuleId> = variant_trace.to_vec();
            let mut rule_weight = 1.0;
            for item in items {
                rules.extend_from_slice(&item.trace);
                rule_weight *= item.weight;
            }
            // Variant weight folds into the derivation weight as well.
            if variant_log.is_finite() {
                rule_weight *= variant_log.exp();
            }
            collector.offer(Answer {
                key: bindings.project(projection),
                bindings: bindings.clone(),
                score,
                derivation: Derivation {
                    triples: items.iter().map(|it| (it.pattern, it.triple)).collect(),
                    rules,
                    rule_weight,
                },
            });
        },
        metrics,
    );
    for &v in &base_undo {
        scratch.unbind(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use crate::exec::expand;
    use trinit_relax::{ExpandOptions, Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlfredKleiner", "hasStudent", "AlbertEinstein");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        b.add_kg_resources("MaxPlanck", "affiliation", "BerlinUniversity");
        let src = b.intern_source("doc");
        let s = b.dict_mut().resource("IAS");
        let housed = b.dict_mut().token("housed in");
        let o = b.dict_mut().resource("PrincetonUniversity");
        b.add_extracted(s, housed, o, 0.9, src);
        let s2 = b.dict_mut().resource("AlbertEinstein");
        let lectured = b.dict_mut().token("lectured at");
        b.add_extracted(s2, lectured, o, 0.7, src);
        b.build()
    }

    fn advisor_rules(store: &XkgStore) -> (RuleSet, trinit_xkg::TermId) {
        let mut qb = QueryBuilder::new(store);
        let has_advisor = qb.resource("hasAdvisor");
        let has_student = store.resource("hasStudent").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::inversion(
            "advisor/student",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        (rules, has_advisor)
    }

    #[test]
    fn lazy_merge_recovers_inverted_answer() {
        let store = store();
        let (rules, _) = advisor_rules(&store);
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "hasAdvisor", "x")
            .build();
        let (answers, metrics) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 1);
        let kleiner = store.resource("AlfredKleiner").unwrap();
        assert_eq!(answers[0].key[0].1, Some(kleiner));
        assert_eq!(metrics.relaxations_opened, 1);
    }

    #[test]
    fn lectured_at_relaxation_for_affiliation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .limit(5)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 2);
        let ias = store.resource("IAS").unwrap();
        let princeton = store.resource("PrincetonUniversity").unwrap();
        assert_eq!(answers[0].key[0].1, Some(ias));
        assert_eq!(answers[1].key[0].1, Some(princeton));
        assert!(answers[1].score < answers[0].score);
    }

    #[test]
    fn agrees_with_full_expansion() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "a",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "b",
            aff,
            housed,
            0.6,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "c",
            lectured,
            housed,
            0.5,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .limit(50)
            .build();
        let (inc, _) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                chain_depth: 2,
                structural_depth: 0,
                min_weight: 0.0,
                ..Default::default()
            },
        );
        let (full, _) = expand::run(
            &store,
            &q,
            &rules,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 1024,
            },
        );
        assert_eq!(inc.len(), full.len());
        for (a, b) in inc.iter().zip(&full) {
            assert_eq!(a.key, b.key, "same answers in same order");
            assert!((a.score - b.score).abs() < 1e-9, "same scores");
        }
    }

    #[test]
    fn relaxations_not_opened_when_k_satisfied_early() {
        // With k=1 and a strong exact answer, the weak relaxation's
        // posting list should never be materialized.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("E", "p", "O1");
        let weak = b.dict_mut().token("weak predicate");
        for i in 0..100 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            let src = b.intern_source("d");
            b.add_extracted(s, weak, o, 0.9, src);
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let weak = store.token("weak predicate").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            p,
            weak,
            0.05,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(1)
            .build();
        let (answers, metrics) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(answers.len(), 1);
        // Exact match has prob 1.0 > bound 0.05 of the relaxation.
        assert_eq!(metrics.relaxations_opened, 0, "{metrics:?}");
    }

    #[test]
    fn join_query_with_relaxation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        // Who is affiliated with something housed in Princeton?
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .pattern_r_t_v("IAS", "housed in", "z")
            .limit(10)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert!(!answers.is_empty());
    }

    #[test]
    fn empty_query_variant_is_safe() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "nonexistentPredicate", "Nowhere")
            .build();
        let (answers, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert!(answers.is_empty());
    }

    /// Reference evaluation for the partition tests: full expansion
    /// evaluates every rewriting with a nested-loop join, so its answer
    /// set is exactly what the hash-partitioned combine must reproduce.
    fn reference(store: &XkgStore, q: &crate::ast::Query, rules: &RuleSet) -> Vec<crate::answer::Answer> {
        let (full, _) = expand::run(
            store,
            q,
            rules,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 4096,
            },
        );
        full
    }

    fn assert_same_answers(a: &[crate::answer::Answer], b: &[crate::answer::Answer]) {
        assert_eq!(a.len(), b.len(), "answer counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key, y.key, "answer keys differ");
            assert!((x.score - y.score).abs() < 1e-9, "scores differ");
        }
    }

    #[test]
    fn no_shared_variables_is_a_cross_product() {
        // Streams without join variables share the single empty-key
        // bucket: every seen item of the other stream is probed, i.e. a
        // genuine cross product, identical to nested-loop evaluation.
        let mut b = XkgBuilder::new();
        for i in 0..3 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{i}"));
        }
        for i in 0..4 {
            b.add_kg_resources(&format!("t{i}"), "q", &format!("u{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("a", "p", "b")
            .pattern_v_r_v("c", "q", "d")
            .limit(1000)
            .build();
        let (inc, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), 12, "3 × 4 cross product");
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn repeated_variable_pattern_joins_correctly() {
        // `?x p ?x` filters to self-loops and shares ?x with the second
        // stream; the partition key must use the deduplicated binding.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("loop", "p", "loop");
        b.add_kg_resources("a", "p", "b"); // not a self-loop
        b.add_kg_resources("loop", "q", "c");
        b.add_kg_resources("a", "q", "d");
        let store = b.build();
        let mut qb = QueryBuilder::new(&store);
        let x = QTerm::Var(qb.var("x"));
        let y = QTerm::Var(qb.var("y"));
        let p = QTerm::Term(qb.resource("p"));
        let qq = QTerm::Term(qb.resource("q"));
        let q = qb.pattern(x, p, x).pattern(x, qq, y).limit(1000).build();
        let (inc, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), 1, "only the self-loop joins");
        let loop_id = store.resource("loop").unwrap();
        assert_eq!(inc[0].bindings.get(trinit_relax::VarId(0)), Some(loop_id));
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn empty_bucket_probes_produce_nothing_and_test_no_candidates() {
        // Join-key value sets are disjoint: every probe lands in an
        // absent bucket, so the combine tests zero candidates (a full
        // scan would have tested every pair) and yields no answers.
        let mut b = XkgBuilder::new();
        for i in 0..5 {
            b.add_kg_resources(&format!("a{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("b{i}"), "q", &format!("z{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1000)
            .build();
        let (inc, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert!(inc.is_empty());
        assert_eq!(
            metrics.join_candidates, 0,
            "disjoint keys must never be probed: {metrics:?}"
        );
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn partitioning_cuts_join_candidates_on_one_to_one_joins() {
        // 30 1:1 join pairs. A full seen-list scan tests O(n²)
        // candidates; the partitioned probe touches one bucket of size 1
        // per arriving item.
        let n = 30usize;
        let mut b = XkgBuilder::new();
        for i in 0..n {
            b.add_kg_resources(&format!("x{i}"), "p", &format!("y{i}"));
            b.add_kg_resources(&format!("x{i}"), "q", &format!("z{i}"));
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1000)
            .build();
        let (inc, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert_eq!(inc.len(), n);
        assert!(
            metrics.join_candidates <= 2 * n,
            "partitioned probes should be linear, got {} for n = {n}",
            metrics.join_candidates
        );
        assert_same_answers(&inc, &reference(&store, &q, &RuleSet::new()));
    }

    #[test]
    fn partition_buckets_and_residual_list() {
        // White-box: items binding every join variable land in the
        // keyed bucket; items whose (relaxed) pattern dropped a join
        // variable go to the always-scanned residual list.
        let store = store();
        let p = store.resource("affiliation").unwrap();
        let pattern = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(p), QTerm::Var(VarId(1)));
        let alts = pattern_alternatives(&pattern, &RuleSet::new(), &TopkConfig::default(), 10);
        let cache = Rc::new(RefCell::new(PostingCache::new()));
        let mut stream = Stream {
            merge: IncrementalMerge::new(&store, alts, cache, None, true, None),
            seen: Vec::new(),
            join_vars: vec![VarId(0)],
            buckets: HashMap::new(),
            partial: Vec::new(),
            best_log: LOG_ZERO,
            exhausted: false,
            capped: false,
        };
        let einstein = store.resource("AlbertEinstein").unwrap();
        let ias = store.resource("IAS").unwrap();
        let item = |bound: Vec<(VarId, TermId)>, score: f64| SeenItem {
            bound,
            log_score: score,
            pattern,
            triple: TripleId(0),
            trace: Vec::new(),
            weight: 1.0,
        };
        stream.push_seen(item(vec![(VarId(0), einstein), (VarId(1), ias)], -0.1));
        stream.push_seen(item(vec![(VarId(1), ias)], -0.2)); // dropped ?x
        stream.push_seen(item(vec![(VarId(0), einstein), (VarId(1), einstein)], -0.3));
        assert_eq!(stream.buckets.get(&vec![einstein]), Some(&vec![0u32, 2]));
        assert_eq!(stream.partial, vec![1u32]);
        assert_eq!(stream.best_log, -0.1);

        // Probe keys resolve through the scratch assignment.
        let mut scratch = Bindings::new(4);
        assert_eq!(probe_key(&scratch, &stream.join_vars), None, "unbound join var");
        scratch.bind(VarId(0), einstein);
        assert_eq!(probe_key(&scratch, &stream.join_vars), Some(vec![einstein]));
        assert_eq!(probe_key(&scratch, &[]), Some(Vec::new()), "cross product key");
    }

    #[test]
    fn bind_pairs_dedupes_and_detects_conflicts() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        // Find the (AlbertEinstein, affiliation, IAS) triple.
        let einstein = store.resource("AlbertEinstein").unwrap();
        let triple = store
            .iter()
            .find(|(_, t)| t.p == aff && t.s == einstein)
            .map(|(id, _)| id)
            .unwrap();
        let v = QTerm::Var(VarId(0));
        let w = QTerm::Var(VarId(1));
        let pairs = bind_pairs(&QPattern::new(v, QTerm::Term(aff), w), &store, triple).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, VarId(0));
        assert_eq!(pairs[0].1, einstein);
        // Repeated variable over distinct slot values: conflict.
        assert!(bind_pairs(&QPattern::new(v, QTerm::Term(aff), v), &store, triple).is_none());
        // Ground pattern binds nothing.
        let t = store.triple(triple);
        let ground = QPattern::new(QTerm::Term(t.s), QTerm::Term(t.p), QTerm::Term(t.o));
        assert!(bind_pairs(&ground, &store, triple).unwrap().is_empty());
    }

    #[test]
    fn tightened_threshold_caps_hopeless_streams() {
        // Stream A: one strong lonely item, one joining item, then a
        // heavy tail of lonely items whose frontier stays above stream
        // B's. Stream B: a strong joining head and a long tail. Once the
        // best join is collected, no unseen A item can beat it (its
        // frontier × B's best is below the answer), but B must still be
        // drained. The untightened engine keeps pulling A (highest
        // frontier); the tightened one caps A and pulls only B.
        let mut b = XkgBuilder::new();
        let p = b.dict_mut().resource("p");
        let q = b.dict_mut().resource("q");
        let src = b.intern_source("d");
        let add = |s: &str, pred: trinit_xkg::TermId, o: &str, conf: f32, b: &mut XkgBuilder| {
            let s = b.dict_mut().resource(s);
            let o = b.dict_mut().resource(o);
            b.add_extracted(s, pred, o, conf, src);
        };
        add("LA", p, "y0", 0.9, &mut b);
        add("J", p, "y1", 0.018, &mut b);
        for i in 0..50 {
            add(&format!("a{i}"), p, &format!("ya{i}"), 0.016, &mut b);
        }
        add("J", q, "z0", 0.9, &mut b);
        for i in 0..150 {
            add(&format!("b{i}"), q, &format!("zb{i}"), 0.5, &mut b);
        }
        let store = b.build();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "p", "y")
            .pattern_v_r_v("x", "q", "z")
            .limit(1)
            .build();
        let rules = RuleSet::new();
        let (tight, m_tight) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                tighten_threshold: true,
                ..TopkConfig::default()
            },
        );
        let (loose, m_loose) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                tighten_threshold: false,
                ..TopkConfig::default()
            },
        );
        assert_same_answers(&tight, &loose);
        assert_eq!(tight.len(), 1);
        assert!(
            m_tight.pulls < m_loose.pulls,
            "capping must save pulls: {} vs {}",
            m_tight.pulls,
            m_loose.pulls
        );
        assert!(m_tight.early_cutoffs > 0, "{m_tight:?}");
        assert_eq!(m_loose.early_cutoffs, 0, "{m_loose:?}");
    }

    #[test]
    fn remaining_mass_dominates_frontier_throughout() {
        // The soundness envelope the capping bound relies on: at every
        // point of a merge's lifetime, the O(1)-tracked remaining mass
        // is ≥ the frontier (the next emission's upper bound), so
        // capping on the frontier can never be less sound than capping
        // on the mass. Exercised across relaxation chains, cache hits,
        // and exhaustion.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite("a", aff, lectured, 0.7, RuleProvenance::UserDefined));
        rules.add(Rule::predicate_rewrite("b", aff, housed, 0.6, RuleProvenance::UserDefined));
        let cfg = TopkConfig {
            min_weight: 0.0,
            ..TopkConfig::default()
        };
        for pattern in [
            QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(aff), QTerm::Var(VarId(1))),
            QPattern::new(
                QTerm::Term(store.resource("AlbertEinstein").unwrap()),
                QTerm::Term(aff),
                QTerm::Var(VarId(1)),
            ),
        ] {
            for tighten in [true, false] {
                let alts = pattern_alternatives(&pattern, &rules, &cfg, 10);
                let cache = Rc::new(RefCell::new(PostingCache::new()));
                let mut merge = IncrementalMerge::new(&store, alts, cache, None, tighten, None);
                let mut metrics = ExecMetrics::default();
                let mut total_emitted = 0.0;
                loop {
                    let mass = merge.remaining_mass();
                    match merge.peek_bound() {
                        Some(bound) => assert!(
                            mass >= bound - 1e-12,
                            "mass {mass} < frontier {bound} (tighten={tighten})"
                        ),
                        None => break,
                    }
                    let Some(m) = merge.next_merged(&mut metrics) else {
                        break;
                    };
                    // The emission itself is covered by the pre-pull mass.
                    assert!(mass >= m.prob - 1e-12);
                    total_emitted += m.prob;
                }
                assert!(merge.remaining_mass() >= -1e-12);
                assert!(total_emitted > 0.0);
            }
        }
    }

    #[test]
    fn head_bound_prunes_hopeless_variants() {
        // A structural variant whose head-bound product cannot reach the
        // already-collected k-th answer is skipped without opening a
        // single posting list.
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        // A non-mergeable (two-RHS) rule creates a structural variant
        // with a tiny weight (paper rule 3 shape).
        let (x, y, z) = (
            trinit_relax::TTerm::Var(trinit_relax::RVar(0)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(1)),
            trinit_relax::TTerm::Var(trinit_relax::RVar(2)),
        );
        rules.add(Rule::structural(
            "weak structural",
            vec![trinit_relax::Template::new(
                x,
                trinit_relax::TTerm::Const(aff),
                y,
            )],
            vec![
                trinit_relax::Template::new(x, trinit_relax::TTerm::Const(aff), z),
                trinit_relax::Template::new(z, trinit_relax::TTerm::Const(housed), y),
            ],
            0.0001,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .limit(1)
            .build();
        let (answers, metrics) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                ..TopkConfig::default()
            },
        );
        assert_eq!(answers.len(), 1);
        assert!(
            metrics.early_cutoffs > 0,
            "weak variant should be pruned by its head bound: {metrics:?}"
        );
    }

    #[test]
    fn zero_mass_groups_agree_with_untightened_and_expansion() {
        // A predicate whose entire match set has weight 0 (confidence 0
        // extractions): its posting group serves as an empty list and
        // its head bound is 0. The tightened threshold skips the
        // alternative outright; the untightened engine and the
        // full-expansion reference open it and emit nothing. All three
        // must agree — this is the satellite's "head bound 0 caps the
        // stream before pulling" regression.
        let mut b = XkgBuilder::new();
        let ghost = b.dict_mut().resource("ghost");
        let p = b.dict_mut().resource("p");
        let src = b.intern_source("d");
        for i in 0..5u32 {
            let s = b.dict_mut().resource(&format!("g{i}"));
            let o = b.dict_mut().resource(&format!("go{i}"));
            b.add_extracted(s, ghost, o, 0.0, src);
        }
        // Zero-weight self-loops: the repeated-variable (masked) shape
        // `?x ghost ?x` filters to a zero-mass set too.
        for i in 0..2u32 {
            let s = b.dict_mut().resource(&format!("loop{i}"));
            b.add_extracted(s, ghost, s, 0.0, src);
        }
        for i in 0..4u32 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            b.add_extracted(s, p, o, 0.5 + 0.1 * i as f32, src);
        }
        let store = b.build();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "into the void",
            store.resource("p").unwrap(),
            store.resource("ghost").unwrap(),
            0.9,
            RuleProvenance::UserDefined,
        ));
        let repeated = {
            let mut qb = QueryBuilder::new(&store);
            let x = QTerm::Var(qb.var("x"));
            let g = QTerm::Term(qb.resource("ghost"));
            qb.pattern(x, g, x).limit(20).build()
        };
        for query in [
            QueryBuilder::new(&store).pattern_v_r_v("x", "p", "y").limit(20).build(),
            QueryBuilder::new(&store).pattern_v_r_v("x", "ghost", "y").limit(20).build(),
            repeated,
        ] {
            let (tight, _) = run(
                &store,
                &query,
                &rules,
                &TopkConfig { tighten_threshold: true, min_weight: 0.0, ..Default::default() },
            );
            let (loose, _) = run(
                &store,
                &query,
                &rules,
                &TopkConfig { tighten_threshold: false, min_weight: 0.0, ..Default::default() },
            );
            assert_same_answers(&tight, &loose);
            let (full, _) = expand::run(
                &store,
                &query,
                &rules,
                &ExpandOptions { max_depth: 2, min_weight: 0.0, max_rewritings: 1024 },
            );
            assert_same_answers(&tight, &full);
        }
    }

    #[test]
    fn anchored_patterns_serve_from_index_without_sorting() {
        // The acceptance counter: an anchored-heavy query performs zero
        // materialize-and-sort list builds; s-/o-bound patterns are
        // anchored-index serves.
        let mut b = XkgBuilder::new();
        for i in 0..20u32 {
            b.add_kg_resources(&format!("s{i}"), "p", "hub");
            b.add_kg_resources(&format!("s{i}"), "q", &format!("o{i}"));
        }
        let store = b.build();
        let queries = [
            // s-bound (subject stratum, borrowed slice).
            QueryBuilder::new(&store).pattern_r_r_v("s3", "p", "y").limit(5).build(),
            // o-bound via a variable predicate: (?x ?p hub).
            {
                let mut qb = QueryBuilder::new(&store);
                let x = QTerm::Var(qb.var("x"));
                let pv = QTerm::Var(qb.var("pv"));
                let hub = QTerm::Term(qb.resource("hub"));
                qb.pattern(x, pv, hub).limit(5).build()
            },
        ];
        for q in queries {
            let (answers, metrics) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
            assert!(!answers.is_empty());
            assert!(
                metrics.anchored_serves > 0,
                "anchored shapes must be served by the index: {metrics:?}"
            );
            assert_eq!(
                metrics.posting_sorts, 0,
                "the unbounded materialize-and-sort fallback must be unreachable: {metrics:?}"
            );
            assert_eq!(
                metrics.ranged_serves, 0,
                "these anchored lookups fit their groups — no range cutover expected: {metrics:?}"
            );
        }
    }
}
