//! Incremental top-k query processing (paper §4) — compatibility
//! façade over the staged operator pipeline.
//!
//! The former monolithic implementation now lives in four stage
//! modules with narrow seams between them:
//!
//! * [`crate::exec::merge`] — stage 1: pattern alternatives and the
//!   [`IncrementalMerge`] sorted-access source behind the
//!   [`RankSource`] seam.
//! * [`crate::exec::join`] — stage 2: the hash-partitioned rank join
//!   and the scratch-[`Bindings`](crate::answer::Bindings) combine.
//! * [`crate::exec::threshold`] — stage 3: the (optionally tightened)
//!   termination bound, stream capping, and the remaining-mass
//!   envelope that is the load-bearing criterion of the ε-approximate
//!   mode ([`TopkConfig::epsilon`]).
//! * [`crate::exec::drive`] — stage 4: variant enumeration, stream
//!   assembly, and the pull loop; `run_pipeline` is the composition
//!   seam the sharded engine shares.
//!
//! This module re-exports the public surface so existing callers (and
//! the paper-anchored docs that reference `exec::topk`) keep working;
//! new code should import from the stage modules directly.

pub use crate::exec::budget::{
    describe_panic, BudgetTracker, Completeness, CutoffReason, DegradationRung, ExecBudget,
    ExecError, Governor,
};
pub use crate::exec::drive::{
    run, run_cached, run_governed, run_scaled, run_scaled_traced, run_scaled_with, GovernedRun,
    TopkConfig,
};
pub use crate::exec::merge::{IncrementalMerge, Merged, RankSource};
