//! Incremental top-k query processing (paper §4).
//!
//! "TriniT uses a top-k approach to query processing that is an extension
//! of the incremental top-k algorithm of [Theobald et al., SIGIR'05],
//! guided by \[the\] scoring scheme ... Top-k query processing is based on
//! the ability to access answers for a triple pattern in sorted order of
//! their scores, allowing us to go only as far as necessary into each
//! triple pattern index list. Additionally, query processing utilizes
//! incremental merging of triple patterns and their relaxed forms,
//! invoking a relaxation only when it can contribute to the top-k
//! answers."
//!
//! Architecture:
//!
//! * **Pattern alternatives** — each original pattern plus its relaxed
//!   forms under single-pattern rules (chained up to a depth), each with
//!   a combined weight.
//! * **[`IncrementalMerge`]** — a priority queue over the alternatives of
//!   one pattern. Unopened alternatives are held at their upper bound
//!   (`weight × 1.0`); an alternative's posting list is materialized only
//!   when that bound rises to the top — the "invoked only when it can
//!   contribute" behaviour.
//! * **Rank join** — HRJN-style: streams are pulled highest-frontier
//!   first; each new item joins against the seen items of other streams;
//!   the threshold `T = max_i (frontier_i + Σ_{j≠i} best_j)` bounds every
//!   unseen combination, and processing stops once the k-th answer's
//!   score reaches it.
//! * **Structural variants** — multi-pattern rules (e.g. paper rule 1)
//!   rewrite the query as a whole; each variant runs through the machinery
//!   above, sharing one global answer collector.

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::rc::Rc;

use trinit_relax::{apply_rule, apply_rule_with, canonical_key, QPattern, QTerm, Rule, RuleId, RuleSet, VarId};
use trinit_xkg::{TripleId, XkgStore};

use crate::answer::{Answer, AnswerCollector, Bindings, Derivation};
use crate::ast::Query;
use crate::exec::ExecMetrics;
use crate::score::{ln_weight, PostingCache, ScoredMatches, LOG_ZERO};

/// Configuration of the incremental top-k processor.
#[derive(Debug, Clone)]
pub struct TopkConfig {
    /// Maximum chain length of single-pattern rules per pattern.
    pub chain_depth: usize,
    /// Maximum applications of structural (multi-pattern / multi-RHS)
    /// rules at the query level.
    pub structural_depth: usize,
    /// Alternatives and variants below this weight are pruned.
    pub min_weight: f64,
    /// Cap on alternatives per pattern.
    pub max_alternatives: usize,
    /// Cap on structural query variants.
    pub max_variants: usize,
}

impl Default for TopkConfig {
    fn default() -> Self {
        TopkConfig {
            chain_depth: 2,
            structural_depth: 1,
            min_weight: 0.05,
            max_alternatives: 64,
            max_variants: 16,
        }
    }
}

/// True if a rule can participate in per-pattern incremental merging:
/// one pattern in, one pattern out, constant LHS predicate.
fn is_mergeable(rule: &Rule) -> bool {
    rule.lhs.len() == 1 && rule.rhs.len() == 1 && rule.lhs_predicate().is_some()
}

/// One relaxed form of a single pattern.
#[derive(Debug, Clone)]
struct Alternative<'s> {
    pattern: QPattern,
    weight: f64,
    trace: Vec<RuleId>,
    matches: Option<ScoredMatches<'s>>,
}

/// Computes the alternatives of one pattern under the mergeable rules.
///
/// `fresh_base` is the first variable id this pattern may allocate for
/// RHS-fresh rule variables; callers give each pattern a disjoint range
/// so fresh variables of different streams never alias.
fn pattern_alternatives<'s>(
    pattern: &QPattern,
    rules: &RuleSet,
    cfg: &TopkConfig,
    fresh_base: u16,
) -> Vec<Alternative<'s>> {
    let mut out: Vec<Alternative<'s>> = vec![Alternative {
        pattern: *pattern,
        weight: 1.0,
        trace: Vec::new(),
        matches: None,
    }];
    let mut fresh_next = fresh_base;
    let mut frontier = vec![0usize]; // indices into `out`
    for _ in 0..cfg.chain_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_pattern, cur_weight, cur_trace) = {
                let a = &out[idx];
                (a.pattern, a.weight, a.trace.clone())
            };
            let Some(pred) = cur_pattern.p.term() else {
                continue;
            };
            for &rule_id in rules.rules_for_predicate(pred) {
                let rule = rules.get(rule_id);
                if !is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule(&[cur_pattern], rule, rule_id) {
                    let [new_pattern] = rewriting.patterns.as_slice() else {
                        continue;
                    };
                    // Remap any fresh variables into this pattern's range.
                    let new_pattern = remap_fresh(*new_pattern, &cur_pattern, &mut fresh_next);
                    match out.iter_mut().find(|a| a.pattern == new_pattern) {
                        Some(existing) => {
                            if weight > existing.weight {
                                existing.weight = weight;
                                existing.trace = cur_trace
                                    .iter()
                                    .copied()
                                    .chain(std::iter::once(rule_id))
                                    .collect();
                            }
                        }
                        None => {
                            if out.len() >= cfg.max_alternatives {
                                continue;
                            }
                            let mut trace = cur_trace.clone();
                            trace.push(rule_id);
                            out.push(Alternative {
                                pattern: new_pattern,
                                weight,
                                trace,
                                matches: None,
                            });
                            next_frontier.push(out.len() - 1);
                        }
                    }
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Remaps variables of `pattern` that do not occur in `origin` (i.e.
/// rule-introduced fresh variables) into the caller-controlled range.
fn remap_fresh(pattern: QPattern, origin: &QPattern, fresh_next: &mut u16) -> QPattern {
    let origin_vars: Vec<VarId> = origin.vars().collect();
    let mut mapping: Vec<(VarId, VarId)> = Vec::new();
    let map = |t: QTerm, fresh_next: &mut u16, mapping: &mut Vec<(VarId, VarId)>| match t {
        QTerm::Var(v) if !origin_vars.contains(&v) => {
            if let Some(&(_, nv)) = mapping.iter().find(|(old, _)| *old == v) {
                QTerm::Var(nv)
            } else {
                let nv = VarId(*fresh_next);
                *fresh_next += 1;
                mapping.push((v, nv));
                QTerm::Var(nv)
            }
        }
        other => other,
    };
    QPattern::new(
        map(pattern.s, fresh_next, &mut mapping),
        map(pattern.p, fresh_next, &mut mapping),
        map(pattern.o, fresh_next, &mut mapping),
    )
}

/// Heap entry of the incremental merge: an alternative keyed by an upper
/// bound on its next emission.
#[derive(Debug)]
struct MergeEntry {
    bound: f64,
    alt: usize,
    opened: bool,
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.alt == other.alt && self.opened == other.opened
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| other.alt.cmp(&self.alt))
    }
}

/// An emission of the incremental merge.
#[derive(Debug, Clone)]
pub struct Merged {
    /// The matched triple.
    pub triple: TripleId,
    /// Combined probability `w_alt × P(t | alt pattern)`.
    pub prob: f64,
    /// The alternative's pattern (needed to bind variables).
    pub pattern: QPattern,
    /// Rules on the alternative's chain.
    pub trace: Vec<RuleId>,
    /// The alternative's weight.
    pub weight: f64,
}

/// Incremental merge over one pattern's alternatives (Theobald et al.
/// style): emits matches across all alternatives in globally descending
/// combined-probability order, opening an alternative's posting list only
/// when its upper bound reaches the top of the queue.
pub struct IncrementalMerge<'a> {
    store: &'a XkgStore,
    alts: Vec<Alternative<'a>>,
    heap: BinaryHeap<MergeEntry>,
    /// Shared per-execution posting cache: structural variants and
    /// alternatives with the same canonical pattern reuse one
    /// materialized list.
    cache: Rc<RefCell<PostingCache>>,
}

impl<'a> IncrementalMerge<'a> {
    fn new(
        store: &'a XkgStore,
        alts: Vec<Alternative<'a>>,
        cache: Rc<RefCell<PostingCache>>,
    ) -> IncrementalMerge<'a> {
        let mut heap = BinaryHeap::with_capacity(alts.len());
        for (i, alt) in alts.iter().enumerate() {
            heap.push(MergeEntry {
                bound: alt.weight, // × max possible probability 1.0
                alt: i,
                opened: false,
            });
        }
        IncrementalMerge {
            store,
            alts,
            heap,
            cache,
        }
    }

    /// Upper bound on the probability of the next emission, or `None` if
    /// exhausted.
    pub fn peek_bound(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.bound)
    }

    /// Produces the next emission in descending order.
    pub fn next_merged(&mut self, metrics: &mut ExecMetrics) -> Option<Merged> {
        loop {
            let entry = self.heap.pop()?;
            let alt = &mut self.alts[entry.alt];
            if !entry.opened {
                // Materialize the alternative's posting list now — this is
                // the moment the relaxation is "invoked". The cache serves
                // structural variants sharing this canonical pattern.
                if !alt.trace.is_empty() {
                    metrics.relaxations_opened += 1;
                }
                let (matches, cache_hit) = ScoredMatches::build_cached(
                    self.store,
                    &alt.pattern,
                    &mut self.cache.borrow_mut(),
                );
                if cache_hit {
                    metrics.posting_cache_hits += 1;
                } else {
                    metrics.posting_lists_built += 1;
                }
                if let Some(p) = matches.peek_prob() {
                    self.heap.push(MergeEntry {
                        bound: alt.weight * p,
                        alt: entry.alt,
                        opened: true,
                    });
                }
                alt.matches = Some(matches);
                continue;
            }
            let matches = alt.matches.as_mut().expect("opened alternative");
            let Some((triple, prob)) = matches.next_entry() else {
                continue;
            };
            metrics.postings_scanned += 1;
            if let Some(p) = matches.peek_prob() {
                self.heap.push(MergeEntry {
                    bound: alt.weight * p,
                    alt: entry.alt,
                    opened: true,
                });
            }
            return Some(Merged {
                triple,
                prob: alt.weight * prob,
                pattern: alt.pattern,
                trace: alt.trace.clone(),
                weight: alt.weight,
            });
        }
    }
}

/// An item seen by one rank-join stream.
#[derive(Debug, Clone)]
struct SeenItem {
    bindings: Bindings,
    log_score: f64,
    pattern: QPattern,
    triple: TripleId,
    trace: Vec<RuleId>,
    weight: f64,
}

struct Stream<'a> {
    merge: IncrementalMerge<'a>,
    seen: Vec<SeenItem>,
    best_log: f64,
    exhausted: bool,
}

impl Stream<'_> {
    fn frontier_log(&self) -> f64 {
        if self.exhausted {
            LOG_ZERO
        } else {
            self.merge.peek_bound().map_or(LOG_ZERO, ln_weight)
        }
    }

    /// Upper bound on any item this stream can contribute.
    fn contribution_bound(&self) -> f64 {
        if self.seen.is_empty() {
            self.frontier_log()
        } else {
            self.best_log
        }
    }
}

/// Binds a pattern's variables against a concrete triple. Returns `None`
/// on conflict (cannot happen for triples from the pattern's own match
/// list, but kept defensive).
fn bind_triple(pattern: &QPattern, store: &XkgStore, triple: TripleId, n_vars: usize) -> Option<Bindings> {
    let t = store.triple(triple);
    let mut b = Bindings::new(n_vars);
    for (slot, value) in pattern.slots().into_iter().zip([t.s, t.p, t.o]) {
        if let QTerm::Var(v) = slot {
            if !b.bind(v, value) {
                return None;
            }
        }
    }
    Some(b)
}

/// Enumerates structural query variants (non-mergeable rules applied at
/// the query level), keeping original rule ids in traces.
fn structural_variants(
    store: &XkgStore,
    patterns: &[QPattern],
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> Vec<(Vec<QPattern>, f64, Vec<RuleId>)> {
    let original_vars = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);
    let mut out: Vec<(Vec<QPattern>, f64, Vec<RuleId>)> =
        vec![(patterns.to_vec(), 1.0, Vec::new())];
    let mut keys = vec![canonical_key(patterns, original_vars)];
    let mut frontier = vec![0usize];
    for _ in 0..cfg.structural_depth {
        let mut next_frontier = Vec::new();
        for &idx in &frontier {
            let (cur_patterns, cur_weight, cur_trace) = out[idx].clone();
            for (rule_id, rule) in rules.iter() {
                if is_mergeable(rule) {
                    continue;
                }
                let weight = cur_weight * rule.weight;
                if weight < cfg.min_weight {
                    continue;
                }
                for rewriting in apply_rule_with(&cur_patterns, rule, rule_id, Some(store)) {
                    let key = canonical_key(&rewriting.patterns, original_vars);
                    if keys.contains(&key) || out.len() >= cfg.max_variants {
                        continue;
                    }
                    keys.push(key);
                    let mut trace = cur_trace.clone();
                    trace.push(rule_id);
                    out.push((rewriting.patterns, weight, trace));
                    next_frontier.push(out.len() - 1);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    out
}

/// Runs incremental top-k processing for `query` under `rules`.
///
/// Returns the top `query.k` answers (identical to what
/// [`crate::exec::expand::run`] would return for an equivalent rule
/// budget) and the work metrics, which are the point: posting lists are
/// only materialized, and relaxations only invoked, when they can still
/// contribute to the top-k.
pub fn run(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
) -> (Vec<Answer>, ExecMetrics) {
    let mut metrics = ExecMetrics::default();
    let mut collector = AnswerCollector::new();
    let projection = query.effective_projection();
    let k = query.k.max(1);

    // One posting cache for the whole execution: structural variants that
    // share a relaxed pattern never rebuild its matches.
    let cache = Rc::new(RefCell::new(PostingCache::new()));
    let variants = structural_variants(store, &query.patterns, rules, cfg);
    for (variant_patterns, variant_weight, variant_trace) in variants {
        metrics.rewritings_evaluated += 1;
        run_variant(
            store,
            query,
            rules,
            cfg,
            &variant_patterns,
            variant_weight,
            &variant_trace,
            &projection,
            k,
            &cache,
            &mut collector,
            &mut metrics,
        );
    }
    (collector.into_top_k(query.k), metrics)
}

#[allow(clippy::too_many_arguments)]
fn run_variant(
    store: &XkgStore,
    _query: &Query,
    rules: &RuleSet,
    cfg: &TopkConfig,
    patterns: &[QPattern],
    variant_weight: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    k: usize,
    cache: &Rc<RefCell<PostingCache>>,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    if patterns.is_empty() {
        return;
    }
    let variant_log = ln_weight(variant_weight);
    let max_var = patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1);
    let n_vars = max_var as usize + 64; // headroom for fresh variables

    let mut streams: Vec<Stream<'_>> = patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let fresh_base = max_var + (i as u16) * 8;
            let alts = pattern_alternatives(p, rules, cfg, fresh_base);
            Stream {
                merge: IncrementalMerge::new(store, alts, Rc::clone(cache)),
                seen: Vec::new(),
                best_log: LOG_ZERO,
                exhausted: false,
            }
        })
        .collect();

    // Pick the non-exhausted stream with the highest frontier each round.
    while let Some(next) = (0..streams.len())
        .filter(|&i| !streams[i].exhausted)
        .max_by(|&a, &b| streams[a].frontier_log().total_cmp(&streams[b].frontier_log()))
    {

        let merged = streams[next].merge.next_merged(metrics);
        match merged {
            None => {
                streams[next].exhausted = true;
                // A stream with no matches at all kills the variant.
                if streams[next].seen.is_empty() {
                    return;
                }
            }
            Some(m) => {
                let Some(bindings) = bind_triple(&m.pattern, store, m.triple, n_vars) else {
                    continue;
                };
                let log_score = ln_weight(m.prob);
                let item = SeenItem {
                    bindings,
                    log_score,
                    pattern: m.pattern,
                    triple: m.triple,
                    trace: m.trace,
                    weight: m.weight,
                };
                if streams[next].seen.is_empty() {
                    streams[next].best_log = log_score;
                }

                // Join the new item with the seen items of other streams
                // (its own stream is skipped, so joining before remembering
                // the item is equivalent and saves a clone).
                join_with_others(
                    &streams, next, &item, variant_log, variant_trace, projection, collector,
                    metrics,
                );
                streams[next].seen.push(item);
            }
        }

        // Threshold: best score any unseen combination can still achieve.
        let threshold = variant_log
            + (0..streams.len())
                .filter(|&i| !streams[i].exhausted)
                .map(|i| {
                    streams[i].frontier_log()
                        + (0..streams.len())
                            .filter(|&j| j != i)
                            .map(|j| streams[j].contribution_bound())
                            .sum::<f64>()
                })
                .fold(LOG_ZERO, f64::max);

        if threshold == LOG_ZERO {
            break;
        }
        if let Some(kth) = collector.kth_score(k) {
            if kth >= threshold {
                break;
            }
        }
    }
}

/// One joined item during combination: pattern, triple, chain trace, and
/// alternative weight.
type JoinItem = (QPattern, TripleId, Vec<RuleId>, f64);

#[allow(clippy::too_many_arguments)]
fn join_with_others(
    streams: &[Stream<'_>],
    new_stream: usize,
    new_item: &SeenItem,
    variant_log: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    // Depth-first combination over the other streams' seen lists.
    fn combine(
        streams: &[Stream<'_>],
        skip: usize,
        idx: usize,
        acc_bindings: &Bindings,
        acc_score: f64,
        acc_items: &mut Vec<JoinItem>,
        emit: &mut dyn FnMut(&Bindings, f64, &[JoinItem]),
        metrics: &mut ExecMetrics,
    ) {
        if idx == streams.len() {
            emit(acc_bindings, acc_score, acc_items);
            return;
        }
        if idx == skip {
            combine(
                streams, skip, idx + 1, acc_bindings, acc_score, acc_items, emit, metrics,
            );
            return;
        }
        for item in &streams[idx].seen {
            metrics.join_candidates += 1;
            if let Some(merged) = acc_bindings.merged(&item.bindings) {
                acc_items.push((item.pattern, item.triple, item.trace.clone(), item.weight));
                combine(
                    streams,
                    skip,
                    idx + 1,
                    &merged,
                    acc_score + item.log_score,
                    acc_items,
                    emit,
                    metrics,
                );
                acc_items.pop();
            }
        }
    }

    let mut acc_items = vec![(
        new_item.pattern,
        new_item.triple,
        new_item.trace.clone(),
        new_item.weight,
    )];
    let base_bindings = new_item.bindings.clone();
    let base_score = new_item.log_score + variant_log;
    combine(
        streams,
        new_stream,
        0,
        &base_bindings,
        base_score,
        &mut acc_items,
        &mut |bindings, score, items| {
            let mut rules: Vec<RuleId> = variant_trace.to_vec();
            let mut rule_weight = 1.0;
            for (_, _, trace, weight) in items {
                rules.extend_from_slice(trace);
                rule_weight *= weight;
            }
            // Variant weight folds into the derivation weight as well.
            if variant_log.is_finite() {
                rule_weight *= variant_log.exp();
            }
            collector.offer(Answer {
                key: bindings.project(projection),
                bindings: bindings.clone(),
                score,
                derivation: Derivation {
                    triples: items.iter().map(|(p, t, _, _)| (*p, *t)).collect(),
                    rules,
                    rule_weight,
                },
            });
        },
        metrics,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use crate::exec::expand;
    use trinit_relax::{ExpandOptions, Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlfredKleiner", "hasStudent", "AlbertEinstein");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        b.add_kg_resources("MaxPlanck", "affiliation", "BerlinUniversity");
        let src = b.intern_source("doc");
        let s = b.dict_mut().resource("IAS");
        let housed = b.dict_mut().token("housed in");
        let o = b.dict_mut().resource("PrincetonUniversity");
        b.add_extracted(s, housed, o, 0.9, src);
        let s2 = b.dict_mut().resource("AlbertEinstein");
        let lectured = b.dict_mut().token("lectured at");
        b.add_extracted(s2, lectured, o, 0.7, src);
        b.build()
    }

    fn advisor_rules(store: &XkgStore) -> (RuleSet, trinit_xkg::TermId) {
        let mut qb = QueryBuilder::new(store);
        let has_advisor = qb.resource("hasAdvisor");
        let has_student = store.resource("hasStudent").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::inversion(
            "advisor/student",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        (rules, has_advisor)
    }

    #[test]
    fn lazy_merge_recovers_inverted_answer() {
        let store = store();
        let (rules, _) = advisor_rules(&store);
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "hasAdvisor", "x")
            .build();
        let (answers, metrics) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 1);
        let kleiner = store.resource("AlfredKleiner").unwrap();
        assert_eq!(answers[0].key[0].1, Some(kleiner));
        assert_eq!(metrics.relaxations_opened, 1);
    }

    #[test]
    fn lectured_at_relaxation_for_affiliation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .limit(5)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert_eq!(answers.len(), 2);
        let ias = store.resource("IAS").unwrap();
        let princeton = store.resource("PrincetonUniversity").unwrap();
        assert_eq!(answers[0].key[0].1, Some(ias));
        assert_eq!(answers[1].key[0].1, Some(princeton));
        assert!(answers[1].score < answers[0].score);
    }

    #[test]
    fn agrees_with_full_expansion() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let housed = store.token("housed in").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "a",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "b",
            aff,
            housed,
            0.6,
            RuleProvenance::UserDefined,
        ));
        rules.add(Rule::predicate_rewrite(
            "c",
            lectured,
            housed,
            0.5,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .limit(50)
            .build();
        let (inc, _) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                chain_depth: 2,
                structural_depth: 0,
                min_weight: 0.0,
                ..Default::default()
            },
        );
        let (full, _) = expand::run(
            &store,
            &q,
            &rules,
            &ExpandOptions {
                max_depth: 2,
                min_weight: 0.0,
                max_rewritings: 1024,
            },
        );
        assert_eq!(inc.len(), full.len());
        for (a, b) in inc.iter().zip(&full) {
            assert_eq!(a.key, b.key, "same answers in same order");
            assert!((a.score - b.score).abs() < 1e-9, "same scores");
        }
    }

    #[test]
    fn relaxations_not_opened_when_k_satisfied_early() {
        // With k=1 and a strong exact answer, the weak relaxation's
        // posting list should never be materialized.
        let mut b = XkgBuilder::new();
        b.add_kg_resources("E", "p", "O1");
        let weak = b.dict_mut().token("weak predicate");
        for i in 0..100 {
            let s = b.dict_mut().resource(&format!("s{i}"));
            let o = b.dict_mut().resource(&format!("o{i}"));
            let src = b.intern_source("d");
            b.add_extracted(s, weak, o, 0.9, src);
        }
        let store = b.build();
        let p = store.resource("p").unwrap();
        let weak = store.token("weak predicate").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "weak",
            p,
            weak,
            0.05,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("E", "p", "y")
            .limit(1)
            .build();
        let (answers, metrics) = run(
            &store,
            &q,
            &rules,
            &TopkConfig {
                min_weight: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(answers.len(), 1);
        // Exact match has prob 1.0 > bound 0.05 of the relaxation.
        assert_eq!(metrics.relaxations_opened, 0, "{metrics:?}");
    }

    #[test]
    fn join_query_with_relaxation() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let lectured = store.token("lectured at").unwrap();
        let mut rules = RuleSet::new();
        rules.add(Rule::predicate_rewrite(
            "rule4",
            aff,
            lectured,
            0.7,
            RuleProvenance::UserDefined,
        ));
        // Who is affiliated with something housed in Princeton?
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .pattern_r_t_v("IAS", "housed in", "z")
            .limit(10)
            .build();
        let (answers, _) = run(&store, &q, &rules, &TopkConfig::default());
        assert!(!answers.is_empty());
    }

    #[test]
    fn empty_query_variant_is_safe() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_r("x", "nonexistentPredicate", "Nowhere")
            .build();
        let (answers, _) = run(&store, &q, &RuleSet::new(), &TopkConfig::default());
        assert!(answers.is_empty());
    }
}
