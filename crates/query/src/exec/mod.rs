//! Query execution engines.
//!
//! Three engines over the same store and scoring model:
//!
//! * [`exact`] — conjunctive evaluation of one (possibly rewritten)
//!   query, no relaxation. The baseline a non-relaxing SPARQL-style
//!   system provides.
//! * [`expand`] — *full-expansion* processing: materialize every
//!   relaxation of the query up front, evaluate each exhaustively, merge.
//!   Correct but "prohibitively expensive" (paper §4); serves as the
//!   reference implementation and efficiency baseline.
//! * [`topk`] — the paper's incremental top-k processor: per-pattern
//!   incremental merge over lazily opened relaxations (after Theobald et
//!   al. \[11\]) combined by a rank join with threshold-based termination.
//!
//! The top-k processor is a staged operator pipeline spread over four
//! modules — [`merge`] (sorted-access sources), [`join`] (the
//! hash-partitioned rank join), [`threshold`] (termination policy,
//! including the ε-approximate mass criterion), and [`drive`] (variant
//! enumeration and the pull loop). [`topk`] remains as a thin
//! re-export façade; [`sharded`] composes the same stages around a
//! cross-shard merge source.

pub mod budget;
pub mod drive;
pub mod exact;
pub mod expand;
#[cfg(feature = "faults")]
pub mod faults;
pub mod join;
pub mod merge;
pub mod segmented;
pub mod sharded;
pub mod threshold;
pub mod topk;

/// Resolves triple ids to triples during the rank join.
///
/// The monolithic engine resolves against one [`XkgStore`]; a sharded
/// executor resolves *global* ids (shard-offset + local id) against the
/// owning shard. Only the lookup the join actually needs is abstracted —
/// everything else the engine touches is per-shard and stays concrete.
pub trait TripleLookup {
    /// The triple with the given id.
    fn triple_of(&self, id: trinit_xkg::TripleId) -> trinit_xkg::Triple;
}

impl TripleLookup for trinit_xkg::XkgStore {
    #[inline]
    fn triple_of(&self, id: trinit_xkg::TripleId) -> trinit_xkg::Triple {
        self.triple(id)
    }
}

/// Counters describing the work an engine performed — the currency in
/// which the paper's efficiency claim (§4) is measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Posting lists opened (index lookups with scoring). Counted per
    /// open, including borrow-served lists (which cost no allocation);
    /// opens answered by the per-execution cache are counted in
    /// [`ExecMetrics::posting_cache_hits`] instead.
    pub posting_lists_built: usize,
    /// Posting lists served from the per-execution cache instead of
    /// being rebuilt (structural variants sharing a canonical pattern).
    pub posting_cache_hits: usize,
    /// Posting lists served from a store-level shared cache (consecutive
    /// queries of a session touching the same canonical pattern).
    pub shared_cache_hits: usize,
    /// Entries consumed from posting lists (depth of sorted access).
    pub postings_scanned: usize,
    /// Relaxed pattern alternatives actually opened.
    pub relaxations_opened: usize,
    /// Query rewritings fully evaluated (full-expansion only).
    pub rewritings_evaluated: usize,
    /// Join candidate combinations tested.
    pub join_candidates: usize,
    /// Items pulled from the per-pattern incremental merges by the rank
    /// join (sorted-access rounds of the top-k loop).
    pub pulls: usize,
    /// Rank-join streams and query variants retired early by the
    /// tightened (head-bound / remaining-mass) termination threshold.
    pub early_cutoffs: usize,
    /// Posting lists served from the anchored (subject/object) index
    /// strata: borrowed slices for s-/o-bound shapes, one-allocation
    /// group filters for the composite shapes. None of these sort.
    pub anchored_serves: usize,
    /// Selective composite serves that materialized and weight-ordered
    /// the permutation index's *exact* match range because it was ≥4×
    /// smaller than every covering group. These do sort — O(matches ·
    /// log matches), bounded above by the group walk they replace — and
    /// are deliberately separate from [`ExecMetrics::posting_sorts`].
    pub ranged_serves: usize,
    /// Posting lists built by the pre-index full materialize-and-sort
    /// fallback (`ServeKind::Scanned`). The precomputed index covers
    /// every shape, so this stays 0; a nonzero count means a pattern
    /// shape regressed onto the unbounded sort path.
    pub posting_sorts: usize,
    /// Rank-join streams and query variants retired by the
    /// ε-approximate remaining-mass criterion
    /// ([`crate::exec::drive::TopkConfig::epsilon`]). Always 0 in exact
    /// (ε = 0) runs.
    pub approx_cutoffs: usize,
    /// Per-shard seed tasks of this query executed by a worker other
    /// than the query's owning worker under the work-stealing batch
    /// scheduler (0 outside stolen batch execution).
    pub seed_steals: usize,
    /// Hard budget cutoffs fired by the wall-clock deadline
    /// ([`crate::exec::budget::ExecBudget::deadline`]).
    pub deadline_cutoffs: usize,
    /// Hard budget cutoffs fired by a work limit
    /// ([`crate::exec::budget::ExecBudget::max_pulls`] /
    /// [`crate::exec::budget::ExecBudget::max_answers`]).
    pub budget_cutoffs: usize,
    /// Degradation-ladder rungs climbed
    /// ([`crate::exec::budget::ExecBudget::ladder`]): escalations of
    /// the effective ε / θ inside the soft budget region.
    pub degradation_steps: usize,
    /// Seed tasks pruned by adaptive seeding under the work-stealing
    /// batch scheduler: subject-bound queries seed only their subject's
    /// home shard, and the skipped tasks are counted here.
    pub seed_skips: usize,
}

impl ExecMetrics {
    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.posting_lists_built += other.posting_lists_built;
        self.posting_cache_hits += other.posting_cache_hits;
        self.shared_cache_hits += other.shared_cache_hits;
        self.postings_scanned += other.postings_scanned;
        self.relaxations_opened += other.relaxations_opened;
        self.rewritings_evaluated += other.rewritings_evaluated;
        self.join_candidates += other.join_candidates;
        self.pulls += other.pulls;
        self.early_cutoffs += other.early_cutoffs;
        self.anchored_serves += other.anchored_serves;
        self.ranged_serves += other.ranged_serves;
        self.posting_sorts += other.posting_sorts;
        self.approx_cutoffs += other.approx_cutoffs;
        self.seed_steals += other.seed_steals;
        self.deadline_cutoffs += other.deadline_cutoffs;
        self.budget_cutoffs += other.budget_cutoffs;
        self.degradation_steps += other.degradation_steps;
        self.seed_skips += other.seed_skips;
    }
}

/// Shared store fixture for the pipeline stages' unit tests.
#[cfg(test)]
pub(crate) mod testfix {
    use trinit_xkg::{XkgBuilder, XkgStore};

    /// The small paper-flavoured store the stage tests share: curated
    /// KG facts plus two extractions with sub-1.0 confidence.
    pub(crate) fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlfredKleiner", "hasStudent", "AlbertEinstein");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        b.add_kg_resources("MaxPlanck", "affiliation", "BerlinUniversity");
        let src = b.intern_source("doc");
        let s = b.dict_mut().resource("IAS");
        let housed = b.dict_mut().token("housed in");
        let o = b.dict_mut().resource("PrincetonUniversity");
        b.add_extracted(s, housed, o, 0.9, src);
        let s2 = b.dict_mut().resource("AlbertEinstein");
        let lectured = b.dict_mut().token("lectured at");
        b.add_extracted(s2, lectured, o, 0.7, src);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::ExecMetrics;

    /// Merge completeness: constructed with *every* field set (as a
    /// full struct literal, so adding a field without updating
    /// [`ExecMetrics::merge`] — and this test — fails to compile),
    /// merging into a default must reproduce every value, and merging
    /// two full sets must sum each field. A field silently dropped by
    /// `merge` fails the round-trip assertion.
    #[test]
    fn metrics_merge_covers_every_field() {
        let full = ExecMetrics {
            posting_lists_built: 1,
            posting_cache_hits: 2,
            shared_cache_hits: 3,
            postings_scanned: 4,
            relaxations_opened: 5,
            rewritings_evaluated: 6,
            join_candidates: 7,
            pulls: 8,
            early_cutoffs: 9,
            anchored_serves: 10,
            ranged_serves: 11,
            posting_sorts: 12,
            approx_cutoffs: 13,
            seed_steals: 14,
            deadline_cutoffs: 15,
            budget_cutoffs: 16,
            degradation_steps: 17,
            seed_skips: 18,
        };
        let mut merged = ExecMetrics::default();
        merged.merge(&full);
        assert_eq!(merged, full, "merge into default must reproduce every field");
        merged.merge(&full);
        let doubled = ExecMetrics {
            posting_lists_built: 2,
            posting_cache_hits: 4,
            shared_cache_hits: 6,
            postings_scanned: 8,
            relaxations_opened: 10,
            rewritings_evaluated: 12,
            join_candidates: 14,
            pulls: 16,
            early_cutoffs: 18,
            anchored_serves: 20,
            ranged_serves: 22,
            posting_sorts: 24,
            approx_cutoffs: 26,
            seed_steals: 28,
            deadline_cutoffs: 30,
            budget_cutoffs: 32,
            degradation_steps: 34,
            seed_skips: 36,
        };
        assert_eq!(merged, doubled, "merge must sum every field");
    }
}
