//! Query execution engines.
//!
//! Three engines over the same store and scoring model:
//!
//! * [`exact`] — conjunctive evaluation of one (possibly rewritten)
//!   query, no relaxation. The baseline a non-relaxing SPARQL-style
//!   system provides.
//! * [`expand`] — *full-expansion* processing: materialize every
//!   relaxation of the query up front, evaluate each exhaustively, merge.
//!   Correct but "prohibitively expensive" (paper §4); serves as the
//!   reference implementation and efficiency baseline.
//! * [`topk`] — the paper's incremental top-k processor: per-pattern
//!   incremental merge over lazily opened relaxations (after Theobald et
//!   al. \[11\]) combined by a rank join with threshold-based termination.

pub mod exact;
pub mod expand;
pub mod sharded;
pub mod topk;

/// Resolves triple ids to triples during the rank join.
///
/// The monolithic engine resolves against one [`XkgStore`]; a sharded
/// executor resolves *global* ids (shard-offset + local id) against the
/// owning shard. Only the lookup the join actually needs is abstracted —
/// everything else the engine touches is per-shard and stays concrete.
pub trait TripleLookup {
    /// The triple with the given id.
    fn triple_of(&self, id: trinit_xkg::TripleId) -> trinit_xkg::Triple;
}

impl TripleLookup for trinit_xkg::XkgStore {
    #[inline]
    fn triple_of(&self, id: trinit_xkg::TripleId) -> trinit_xkg::Triple {
        self.triple(id)
    }
}

/// Counters describing the work an engine performed — the currency in
/// which the paper's efficiency claim (§4) is measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Posting lists opened (index lookups with scoring). Counted per
    /// open, including borrow-served lists (which cost no allocation);
    /// opens answered by the per-execution cache are counted in
    /// [`ExecMetrics::posting_cache_hits`] instead.
    pub posting_lists_built: usize,
    /// Posting lists served from the per-execution cache instead of
    /// being rebuilt (structural variants sharing a canonical pattern).
    pub posting_cache_hits: usize,
    /// Posting lists served from a store-level shared cache (consecutive
    /// queries of a session touching the same canonical pattern).
    pub shared_cache_hits: usize,
    /// Entries consumed from posting lists (depth of sorted access).
    pub postings_scanned: usize,
    /// Relaxed pattern alternatives actually opened.
    pub relaxations_opened: usize,
    /// Query rewritings fully evaluated (full-expansion only).
    pub rewritings_evaluated: usize,
    /// Join candidate combinations tested.
    pub join_candidates: usize,
    /// Items pulled from the per-pattern incremental merges by the rank
    /// join (sorted-access rounds of the top-k loop).
    pub pulls: usize,
    /// Rank-join streams and query variants retired early by the
    /// tightened (head-bound / remaining-mass) termination threshold.
    pub early_cutoffs: usize,
    /// Posting lists served from the anchored (subject/object) index
    /// strata: borrowed slices for s-/o-bound shapes, one-allocation
    /// group filters for the composite shapes. None of these sort.
    pub anchored_serves: usize,
    /// Selective composite serves that materialized and weight-ordered
    /// the permutation index's *exact* match range because it was ≥4×
    /// smaller than every covering group. These do sort — O(matches ·
    /// log matches), bounded above by the group walk they replace — and
    /// are deliberately separate from [`ExecMetrics::posting_sorts`].
    pub ranged_serves: usize,
    /// Posting lists built by the pre-index full materialize-and-sort
    /// fallback (`ServeKind::Scanned`). The precomputed index covers
    /// every shape, so this stays 0; a nonzero count means a pattern
    /// shape regressed onto the unbounded sort path.
    pub posting_sorts: usize,
}

impl ExecMetrics {
    /// Merges another run's counters into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.posting_lists_built += other.posting_lists_built;
        self.posting_cache_hits += other.posting_cache_hits;
        self.shared_cache_hits += other.shared_cache_hits;
        self.postings_scanned += other.postings_scanned;
        self.relaxations_opened += other.relaxations_opened;
        self.rewritings_evaluated += other.rewritings_evaluated;
        self.join_candidates += other.join_candidates;
        self.pulls += other.pulls;
        self.early_cutoffs += other.early_cutoffs;
        self.anchored_serves += other.anchored_serves;
        self.ranged_serves += other.ranged_serves;
        self.posting_sorts += other.posting_sorts;
    }
}
