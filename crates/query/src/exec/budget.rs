//! Resource-governed execution: budgets, the degradation ladder, and
//! typed completeness for partial results.
//!
//! The paper's interactive setting needs *bounded* response time, not
//! just fast-on-average processing. This module is the admission-control
//! substrate for that serving tier: an [`ExecBudget`] (wall-clock
//! deadline, pull budget, answer-materialization budget) rides inside
//! [`TopkConfig`], a shared [`BudgetTracker`] observes consumption
//! across every phase of one query (monolithic run, per-shard seed
//! tasks, the cross-shard merge), and the [`ThresholdPolicy`] checks it
//! O(1) per pull round through a [`Governor`] handle.
//!
//! Two mechanisms keep budgeted runs *useful* rather than merely
//! truncated:
//!
//! * **The degradation ladder** ([`ExecBudget::ladder`]): once a soft
//!   fraction of the budget is consumed, the effective ε (and relative
//!   θ) escalates through the configured rungs — the engine trades
//!   guarantee tightness for termination *before* hitting the wall,
//!   exactly the "graceful degradation under load" the ROADMAP's
//!   serving tier calls for. Escalations are counted in
//!   [`ExecMetrics::degradation_steps`].
//! * **Typed [`Completeness`]**: partial results are first-class and
//!   honest. A truncated run reports *why* it stopped and a
//!   `guaranteed_rank` — the number of leading answers that provably
//!   coincide with the exact top-k (every forfeited answer is bounded
//!   by the threshold recorded at the cutoff, so any returned answer
//!   scoring strictly above that bound cannot be displaced).
//!
//! With the default (unlimited) budget, an empty ladder, ε = 0, and
//! θ = 0, every check in this module is a single branch on a
//! precomputed flag: the exact path stays bit-identical in answers
//! *and* pull counts — property-pinned monolithic and at 1/2/4/7
//! shards.
//!
//! Panic isolation lives on the same robustness surface:
//! [`ExecError`] is the typed per-query failure the batch schedulers
//! return when a worker panics instead of aborting the whole batch.
//!
//! [`TopkConfig`]: crate::exec::drive::TopkConfig
//! [`ThresholdPolicy`]: crate::exec::threshold::ThresholdPolicy
//! [`ExecMetrics::degradation_steps`]: crate::exec::ExecMetrics::degradation_steps

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::answer::Answer;
use crate::exec::drive::TopkConfig;
use crate::score::LOG_ZERO;

/// One rung of the degradation ladder: the ε / θ pair execution
/// escalates to as budget consumption crosses the rung's share of the
/// soft region (see [`ExecBudget::ladder`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationRung {
    /// Absolute forfeit tolerance (probability space) — see
    /// [`TopkConfig::epsilon`](crate::exec::drive::TopkConfig::epsilon).
    pub epsilon: f64,
    /// Relative slack on the termination threshold — see
    /// [`TopkConfig::theta`](crate::exec::drive::TopkConfig::theta).
    pub theta: f64,
}

/// Execution budget carried by
/// [`TopkConfig::budget`](crate::exec::drive::TopkConfig::budget).
///
/// All limits apply to one *query* as a whole: a sharded execution's
/// seed tasks and merge phase draw down the same budget (the pull
/// counter is shared across threads). The default is unlimited.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecBudget {
    /// Wall-clock deadline for the whole query, measured from engine
    /// entry. Checked per pull round (an `Instant::now()` only when
    /// set).
    pub deadline: Option<Duration>,
    /// Maximum sorted-access pulls ([`ExecMetrics::pulls`] currency)
    /// across every phase of the query.
    ///
    /// [`ExecMetrics::pulls`]: crate::exec::ExecMetrics::pulls
    pub max_pulls: Option<usize>,
    /// Maximum answers materialized into the collector before the run
    /// is cut off (an admission-control cap on result-set work).
    pub max_answers: Option<usize>,
    /// Fraction of the budget at which the degradation ladder starts
    /// escalating (`0.75` by default). The region between
    /// `soft_fraction` and `1.0` is divided evenly across the rungs.
    pub soft_fraction: f64,
    /// Degradation rungs, tightest first. Empty (the default) means no
    /// degradation: the run stays exact until a hard cutoff fires.
    pub ladder: Vec<DegradationRung>,
}

impl Default for ExecBudget {
    fn default() -> Self {
        ExecBudget {
            deadline: None,
            max_pulls: None,
            max_answers: None,
            soft_fraction: 0.75,
            ladder: Vec::new(),
        }
    }
}

impl ExecBudget {
    /// An explicitly unlimited budget (the default).
    pub fn unlimited() -> ExecBudget {
        ExecBudget::default()
    }

    /// `true` when no limit is set — the governed checks reduce to one
    /// branch and the run is bit-identical to an ungoverned engine.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_pulls.is_none() && self.max_answers.is_none()
    }
}

/// Why a budgeted run was cut off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutoffReason {
    /// The wall-clock deadline expired.
    Deadline,
    /// The pull budget was exhausted.
    Pulls,
    /// The answer-materialization budget was exhausted.
    Answers,
}

/// What a result's ranking is guaranteed to be, relative to the exact
/// engine's. Grows on [`QueryOutcome`]-level results so partial answers
/// are first-class and honest.
///
/// [`QueryOutcome`]: ../../trinit_core/struct.QueryOutcome.html
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Completeness {
    /// The exact top-k: no approximate criterion fired and no cutoff
    /// truncated the run.
    Exact,
    /// An ε / θ criterion retired work: every rank `r` satisfies
    /// `prob(answer[r]) ≥ max(prob(exact[r]) − ε, (1−θ)·prob(exact[r]))`
    /// for the reported tolerances, and returned scores are exact.
    Approx {
        /// The effective ε at termination (base config or the highest
        /// ladder rung reached).
        epsilon: f64,
        /// The effective relative θ at termination.
        theta: f64,
    },
    /// A hard budget cutoff stopped the run before the threshold
    /// settled the top-k.
    Truncated {
        /// Which budget fired.
        reason: CutoffReason,
        /// The leading `guaranteed_rank` answers are provably the exact
        /// top answers (each scores strictly above every bound recorded
        /// at the cutoffs, so no forfeited answer can displace them);
        /// ranks beyond it are best-effort.
        guaranteed_rank: usize,
    },
}

impl Completeness {
    /// `true` for [`Completeness::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }
}

/// Typed per-query execution failure. Batch schedulers isolate a
/// panicking worker to the query it was serving and return this instead
/// of aborting the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A worker thread panicked while executing this query's work.
    WorkerPanicked {
        /// Which unit of work panicked (e.g. `"seed task (q=2, shard=1)"`).
        context: String,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanicked { context, payload } => {
                write!(f, "worker panicked in {context}: {payload}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Stringifies a panic payload (the `Box<dyn Any>` from
/// [`std::panic::catch_unwind`]) for [`ExecError::WorkerPanicked`].
pub fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What the governor tells the policy this round: the effective ε / θ
/// after any ladder escalation, a hard cutoff if one fired, and how
/// many rungs were climbed by *this* call (so exactly one observer
/// counts each escalation).
#[derive(Debug, Clone, Copy)]
pub struct Directive {
    /// Effective forfeit tolerance this round.
    pub epsilon: f64,
    /// Effective relative threshold slack this round.
    pub theta: f64,
    /// A hard budget cutoff, if one fired.
    pub cutoff: Option<CutoffReason>,
    /// Ladder rungs climbed by this call (0 when another phase already
    /// escalated past the target rung).
    pub escalations: usize,
}

/// Shared consumption state of one query's budget — one tracker per
/// query, observed by every phase (monolithic run, per-shard seed
/// tasks, the cross-shard merge) across threads.
///
/// The tracker also accumulates what the run's [`Completeness`] must
/// report: whether a hard cutoff truncated the run (and the tightest
/// sound bound on everything forfeited), and whether an approximate
/// criterion actually fired.
#[derive(Debug)]
pub struct BudgetTracker {
    started: Instant,
    deadline: Option<Duration>,
    max_pulls: Option<usize>,
    max_answers: Option<usize>,
    soft_fraction: f64,
    ladder: Vec<DegradationRung>,
    base_epsilon: f64,
    base_theta: f64,
    /// Any limit or ladder present — the fast path branches on this.
    governed: bool,
    /// Pulls across every phase (only counted when governed).
    pulls: AtomicUsize,
    /// Highest ladder rung reached (0 = base configuration).
    rung: AtomicUsize,
    /// First cutoff reason recorded (0 = none; 1/2/3 = Deadline /
    /// Pulls / Answers). First-wins CAS keeps all phases agreeing.
    cutoff: AtomicUsize,
    /// A *primary* (non-advisory) phase was actually truncated.
    truncated: AtomicBool,
    /// An ε / θ retirement fired in a primary phase.
    approx_fired: AtomicBool,
    /// Max score bound (log space, f64 bits) recorded over every
    /// primary-phase truncation: every forfeited answer scores at or
    /// below it.
    bound_bits: AtomicU64,
}

impl BudgetTracker {
    /// A tracker for one query under `cfg`'s budget, ε, and θ.
    pub fn new(cfg: &TopkConfig) -> BudgetTracker {
        let b = &cfg.budget;
        BudgetTracker {
            // lint:allow(clock-discipline): budget deadline anchor — one read per governed query at admission, not per pull
            started: Instant::now(),
            deadline: b.deadline,
            max_pulls: b.max_pulls,
            max_answers: b.max_answers,
            soft_fraction: b.soft_fraction.clamp(0.0, 1.0),
            ladder: b.ladder.clone(),
            base_epsilon: cfg.epsilon,
            base_theta: cfg.theta,
            governed: !b.is_unlimited(),
            pulls: AtomicUsize::new(0),
            rung: AtomicUsize::new(0),
            cutoff: AtomicUsize::new(0),
            truncated: AtomicBool::new(false),
            approx_fired: AtomicBool::new(false),
            bound_bits: AtomicU64::new(LOG_ZERO.to_bits()),
        }
    }

    /// One sorted-access pull was performed (any phase, any thread).
    #[inline]
    pub fn on_pull(&self) {
        if self.governed {
            self.pulls.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn is_governed(&self) -> bool {
        self.governed
    }

    /// The effective ε / θ at the current ladder rung.
    fn effective(&self) -> (f64, f64) {
        match self.rung.load(Ordering::Relaxed) {
            0 => (self.base_epsilon, self.base_theta),
            r => {
                let rung = &self.ladder[(r - 1).min(self.ladder.len() - 1)];
                (
                    self.base_epsilon.max(rung.epsilon),
                    self.base_theta.max(rung.theta),
                )
            }
        }
    }

    /// The per-round governed check: evaluates consumption against
    /// every set limit, records (first-wins) a hard cutoff at 100%,
    /// and escalates the ladder within the soft region. O(1); with an
    /// unlimited budget and no ladder it is a single branch.
    pub fn directive(&self, answers_now: usize) -> Directive {
        if !self.governed {
            return Directive {
                epsilon: self.base_epsilon,
                theta: self.base_theta,
                cutoff: None,
                escalations: 0,
            };
        }
        let mut frac = 0.0f64;
        let mut hit: Option<CutoffReason> = None;
        if let Some(d) = self.deadline {
            let f = self.started.elapsed().as_secs_f64() / d.as_secs_f64().max(f64::MIN_POSITIVE);
            if f >= frac {
                frac = f;
                if f >= 1.0 {
                    hit = Some(CutoffReason::Deadline);
                }
            }
        }
        if let Some(mp) = self.max_pulls {
            let f = self.pulls.load(Ordering::Relaxed) as f64 / (mp.max(1)) as f64;
            if f >= frac {
                frac = f;
                if f >= 1.0 && hit.is_none() {
                    hit = Some(CutoffReason::Pulls);
                }
            }
        }
        if let Some(ma) = self.max_answers {
            let f = answers_now as f64 / (ma.max(1)) as f64;
            if f >= frac {
                frac = f;
                if f >= 1.0 && hit.is_none() {
                    hit = Some(CutoffReason::Answers);
                }
            }
        }
        if let Some(reason) = hit {
            // First cutoff wins; later phases re-read the recorded one
            // so every phase reports the same reason.
            let code = cutoff_code(reason);
            let recorded = match self.cutoff.compare_exchange(
                0,
                code,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => reason,
                Err(prev) => cutoff_reason(prev),
            };
            let (epsilon, theta) = self.effective();
            return Directive {
                epsilon,
                theta,
                cutoff: Some(recorded),
                escalations: 0,
            };
        }
        let mut escalations = 0;
        if !self.ladder.is_empty() && self.soft_fraction < 1.0 && frac >= self.soft_fraction {
            let span = (1.0 - self.soft_fraction) / self.ladder.len() as f64;
            // How many spans deep into the soft region consumption sits.
            // The raw cast used to run straight over the float edges: a
            // `span` that underflows to 0 (or a poisoned `frac`) makes
            // `depth` non-finite, the cast saturates to `usize::MAX`,
            // and the `1 +` overflows. Clamp explicitly: any degenerate
            // depth past the region means the top rung.
            let depth = (frac - self.soft_fraction) / span;
            let target = if depth.is_finite() && depth >= 0.0 {
                (depth as usize).saturating_add(1).min(self.ladder.len())
            } else {
                self.ladder.len()
            };
            let prev = self.rung.fetch_max(target, Ordering::Relaxed);
            escalations = target.saturating_sub(prev);
        }
        let (epsilon, theta) = self.effective();
        Directive {
            epsilon,
            theta,
            cutoff: None,
            escalations,
        }
    }

    /// Records an ε / θ retirement in a primary phase: the result is at
    /// best [`Completeness::Approx`].
    fn note_approx(&self) {
        self.approx_fired.store(true, Ordering::Relaxed);
    }

    /// Records a primary-phase truncation with a sound log-space bound
    /// on everything the cutoff forfeited.
    fn note_truncated(&self, bound_log: f64) {
        self.truncated.store(true, Ordering::Relaxed);
        let mut cur = self.bound_bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < bound_log {
            match self.bound_bits.compare_exchange_weak(
                cur,
                bound_log.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// The [`Completeness`] of a finished run with final `answers`
    /// (sorted best-first, log-space scores).
    pub fn completeness(&self, answers: &[Answer]) -> Completeness {
        if self.truncated.load(Ordering::Relaxed) {
            let reason = cutoff_reason(self.cutoff.load(Ordering::Relaxed));
            let bound = f64::from_bits(self.bound_bits.load(Ordering::Relaxed));
            // Strictly above the recorded bound: a forfeited answer at
            // exactly the bound could tie into the cut, so ties are not
            // guaranteed.
            let guaranteed_rank = answers.iter().take_while(|a| a.score > bound).count();
            Completeness::Truncated {
                reason,
                guaranteed_rank,
            }
        } else if self.approx_fired.load(Ordering::Relaxed) {
            let (epsilon, theta) = self.effective();
            Completeness::Approx { epsilon, theta }
        } else {
            Completeness::Exact
        }
    }
}

fn cutoff_code(reason: CutoffReason) -> usize {
    match reason {
        CutoffReason::Deadline => 1,
        CutoffReason::Pulls => 2,
        CutoffReason::Answers => 3,
    }
}

fn cutoff_reason(code: usize) -> CutoffReason {
    match code {
        1 => CutoffReason::Deadline,
        3 => CutoffReason::Answers,
        _ => CutoffReason::Pulls,
    }
}

/// A phase's handle on a query's [`BudgetTracker`]: `Copy`, threaded
/// through the pipeline to the [`ThresholdPolicy`].
///
/// *Advisory* governors (per-shard seed tasks) observe the budget —
/// they consume pulls, trigger escalations, and stop on cutoffs — but
/// never mark the run truncated or approximate: seeding is a
/// work-placement warm-start, and the merge phase alone is complete, so
/// only a *primary* phase's retirements can make the final result
/// non-exact.
///
/// [`ThresholdPolicy`]: crate::exec::threshold::ThresholdPolicy
#[derive(Debug, Clone, Copy)]
pub struct Governor<'a> {
    tracker: &'a BudgetTracker,
    advisory: bool,
}

impl<'a> Governor<'a> {
    /// The governor for a phase whose cutoffs/retirements determine the
    /// run's completeness (the monolithic run, the cross-shard merge).
    pub fn primary(tracker: &'a BudgetTracker) -> Governor<'a> {
        Governor {
            tracker,
            advisory: false,
        }
    }

    /// The governor for an advisory phase (per-shard seed tasks).
    pub fn advisory(tracker: &'a BudgetTracker) -> Governor<'a> {
        Governor {
            tracker,
            advisory: true,
        }
    }

    /// The underlying tracker.
    pub fn tracker(&self) -> &'a BudgetTracker {
        self.tracker
    }

    #[inline]
    pub(crate) fn is_governed(&self) -> bool {
        self.tracker.is_governed()
    }

    #[inline]
    pub(crate) fn on_pull(&self) {
        self.tracker.on_pull();
    }

    #[inline]
    pub(crate) fn directive(&self, answers_now: usize) -> Directive {
        self.tracker.directive(answers_now)
    }

    pub(crate) fn note_approx(&self) {
        if !self.advisory {
            self.tracker.note_approx();
        }
    }

    pub(crate) fn note_truncated(&self, bound_log: f64) {
        if !self.advisory {
            self.tracker.note_truncated(bound_log);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with(budget: ExecBudget) -> TopkConfig {
        TopkConfig {
            budget,
            ..TopkConfig::default()
        }
    }

    #[test]
    fn unlimited_budget_is_a_single_branch_and_stays_exact() {
        let cfg = TopkConfig::default();
        let tracker = BudgetTracker::new(&cfg);
        assert!(!tracker.is_governed());
        tracker.on_pull();
        assert_eq!(tracker.pulls.load(Ordering::Relaxed), 0, "ungoverned pulls are not counted");
        let d = tracker.directive(10_000);
        assert!(d.cutoff.is_none());
        assert_eq!(d.escalations, 0);
        assert!(tracker.completeness(&[]).is_exact());
    }

    #[test]
    fn pull_budget_cutoff_records_reason_first_wins() {
        let cfg = cfg_with(ExecBudget {
            max_pulls: Some(3),
            ..ExecBudget::default()
        });
        let tracker = BudgetTracker::new(&cfg);
        for _ in 0..3 {
            tracker.on_pull();
        }
        let d = tracker.directive(0);
        assert_eq!(d.cutoff, Some(CutoffReason::Pulls));
        // A later answers-limit overrun still reports the first reason.
        let d2 = tracker.directive(usize::MAX / 2);
        assert_eq!(d2.cutoff, Some(CutoffReason::Pulls));
    }

    #[test]
    fn ladder_escalates_within_soft_region_and_counts_once() {
        let cfg = TopkConfig {
            epsilon: 0.0,
            budget: ExecBudget {
                max_pulls: Some(100),
                soft_fraction: 0.5,
                ladder: vec![
                    DegradationRung { epsilon: 0.01, theta: 0.0 },
                    DegradationRung { epsilon: 0.05, theta: 0.1 },
                ],
                ..ExecBudget::default()
            },
            ..TopkConfig::default()
        };
        let tracker = BudgetTracker::new(&cfg);
        for _ in 0..55 {
            tracker.on_pull();
        }
        let d = tracker.directive(0);
        assert_eq!(d.escalations, 1, "55% into a 50% soft region is rung 1");
        assert!((d.epsilon - 0.01).abs() < 1e-12);
        // Re-checking at the same consumption climbs nothing further.
        assert_eq!(tracker.directive(0).escalations, 0);
        for _ in 0..40 {
            tracker.on_pull();
        }
        let d = tracker.directive(0);
        assert_eq!(d.escalations, 1, "95% is rung 2");
        assert!((d.epsilon - 0.05).abs() < 1e-12);
        assert!((d.theta - 0.1).abs() < 1e-12);
    }

    #[test]
    fn soft_fraction_one_never_escalates_but_hard_limits_still_fire() {
        let cfg = cfg_with(ExecBudget {
            max_pulls: Some(10),
            soft_fraction: 1.0,
            ladder: vec![DegradationRung {
                epsilon: 0.5,
                theta: 0.5,
            }],
            ..ExecBudget::default()
        });
        let tracker = BudgetTracker::new(&cfg);
        for _ in 0..9 {
            tracker.on_pull();
        }
        // 90% consumed: the whole soft region is degenerate (zero wide),
        // so no rung may engage — and nothing may overflow computing it.
        let d = tracker.directive(0);
        assert_eq!(d.escalations, 0);
        assert_eq!(d.epsilon, 0.0);
        assert!(d.cutoff.is_none());
        tracker.on_pull();
        assert_eq!(tracker.directive(0).cutoff, Some(CutoffReason::Pulls));
    }

    #[test]
    fn single_rung_ladder_clamps_target_to_one() {
        let cfg = cfg_with(ExecBudget {
            max_pulls: Some(100),
            soft_fraction: 0.5,
            ladder: vec![DegradationRung {
                epsilon: 0.07,
                theta: 0.0,
            }],
            ..ExecBudget::default()
        });
        let tracker = BudgetTracker::new(&cfg);
        for _ in 0..99 {
            tracker.on_pull();
        }
        // 99% consumed is deep past the single rung's span; the target
        // must clamp to rung 1, not truncate past the ladder.
        let d = tracker.directive(0);
        assert_eq!(d.escalations, 1);
        assert!((d.epsilon - 0.07).abs() < 1e-12);
        assert_eq!(tracker.rung.load(Ordering::Relaxed), 1);
        // Re-reads stay on the clamped rung.
        assert_eq!(tracker.directive(0).escalations, 0);
        assert!((tracker.directive(0).epsilon - 0.07).abs() < 1e-12);
    }

    #[test]
    fn completeness_reports_truncation_with_guaranteed_rank() {
        let cfg = cfg_with(ExecBudget {
            max_pulls: Some(1),
            ..ExecBudget::default()
        });
        let tracker = BudgetTracker::new(&cfg);
        tracker.on_pull();
        let d = tracker.directive(0);
        assert_eq!(d.cutoff, Some(CutoffReason::Pulls));
        tracker.note_truncated(-1.0);
        let answers: Vec<Answer> = [-0.2f64, -0.5, -1.0, -2.0]
            .iter()
            .map(|&s| Answer {
                key: Vec::new(),
                bindings: crate::answer::Bindings::new(0),
                score: s,
                derivation: crate::answer::Derivation::default(),
            })
            .collect();
        match tracker.completeness(&answers) {
            Completeness::Truncated {
                reason,
                guaranteed_rank,
            } => {
                assert_eq!(reason, CutoffReason::Pulls);
                // Scores strictly above the recorded bound -1.0: two.
                assert_eq!(guaranteed_rank, 2);
            }
            other => panic!("expected truncated, got {other:?}"),
        }
    }

    #[test]
    fn advisory_governor_never_marks_the_run_non_exact() {
        let cfg = cfg_with(ExecBudget {
            max_pulls: Some(1),
            ..ExecBudget::default()
        });
        let tracker = BudgetTracker::new(&cfg);
        let advisory = Governor::advisory(&tracker);
        advisory.note_truncated(0.0);
        advisory.note_approx();
        assert!(tracker.completeness(&[]).is_exact());
        let primary = Governor::primary(&tracker);
        primary.note_approx();
        assert!(matches!(
            tracker.completeness(&[]),
            Completeness::Approx { .. }
        ));
        primary.note_truncated(0.0);
        assert!(matches!(
            tracker.completeness(&[]),
            Completeness::Truncated { .. }
        ));
    }

    #[test]
    fn describe_panic_covers_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(describe_panic(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(describe_panic(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42usize);
        assert_eq!(describe_panic(s.as_ref()), "non-string panic payload");
    }

    #[test]
    fn exec_error_displays_context_and_payload() {
        let e = ExecError::WorkerPanicked {
            context: "seed task (q=2, shard=1)".into(),
            payload: "boom".into(),
        };
        assert_eq!(
            e.to_string(),
            "worker panicked in seed task (q=2, shard=1): boom"
        );
    }
}
