//! Full-expansion query processing (efficiency baseline).
//!
//! Materializes *every* relaxed form of the query up front via
//! [`trinit_relax::expand`], evaluates each exhaustively with the exact
//! engine, and merges answers keeping the maximum score per projected
//! binding. This explores "the entire space of possible rewritings",
//! which the paper calls "prohibitively expensive" (§4) — it exists both
//! as the reference semantics for the incremental processor (they must
//! agree on results) and as the baseline the efficiency experiment (E5)
//! measures against.

use trinit_relax::{expand_with, ExpandOptions, RuleSet};
use trinit_xkg::XkgStore;

use crate::answer::{Answer, AnswerCollector};
use crate::ast::Query;
use crate::exec::exact;
use crate::exec::ExecMetrics;

/// Runs full-expansion processing.
///
/// Returns the top `query.k` answers and the work metrics.
pub fn run(
    store: &XkgStore,
    query: &Query,
    rules: &RuleSet,
    options: &ExpandOptions,
) -> (Vec<Answer>, ExecMetrics) {
    let mut metrics = ExecMetrics::default();
    let rewritings = expand_with(&query.patterns, rules, options, Some(store));
    let mut collector = AnswerCollector::new();
    for rewriting in &rewritings {
        metrics.rewritings_evaluated += 1;
        if !rewriting.trace.is_empty() {
            metrics.relaxations_opened += 1;
        }
        let answers = exact::evaluate(
            store,
            query,
            &rewriting.patterns,
            &rewriting.trace,
            rewriting.weight,
            &mut metrics,
        );
        for a in answers {
            collector.offer(a);
        }
    }
    (collector.into_top_k(query.k), metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryBuilder;
    use trinit_relax::{Rule, RuleProvenance};
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlfredKleiner", "hasStudent", "AlbertEinstein");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        let src = b.intern_source("web-doc-3");
        let s = b.dict_mut().resource("IAS");
        let housed = b.dict_mut().token("housed in");
        let o = b.dict_mut().resource("PrincetonUniversity");
        b.add_extracted(s, housed, o, 0.9, src);
        b.build()
    }

    /// User B's scenario: `AlbertEinstein hasAdvisor ?x` has no exact
    /// match; the inversion rule recovers AlfredKleiner.
    #[test]
    fn inversion_rule_recovers_advisor() {
        let store = store();
        let mut q = QueryBuilder::new(&store);
        let has_advisor = q.resource("hasAdvisor"); // unknown in the KG!
        let has_student = store.resource("hasStudent").unwrap();
        let q = q.pattern_r_r_v("AlbertEinstein", "hasAdvisor", "x").build();

        let mut rules = RuleSet::new();
        rules.add(Rule::inversion(
            "advisor/student",
            has_advisor,
            has_student,
            1.0,
            RuleProvenance::UserDefined,
        ));
        let (answers, metrics) = run(&store, &q, &rules, &ExpandOptions::default());
        assert_eq!(answers.len(), 1);
        let kleiner = store.resource("AlfredKleiner").unwrap();
        assert_eq!(answers[0].key[0].1, Some(kleiner));
        assert!(!answers[0].derivation.is_exact());
        assert!(metrics.rewritings_evaluated >= 2);
    }

    /// User C's scenario: affiliation + 'housed in' via rule 3.
    #[test]
    fn chained_relaxation_reaches_xkg() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        let housed = store.token("housed in").unwrap();
        // ?x affiliation ?y → ?x affiliation ?z ; ?z 'housed in' ?y
        // modeled as a structural rule (paper rule 3).
        use trinit_relax::{RVar, TTerm, Template};
        let (x, y, z) = (TTerm::Var(RVar(0)), TTerm::Var(RVar(1)), TTerm::Var(RVar(2)));
        let mut rules = RuleSet::new();
        rules.add(Rule::structural(
            "rule3",
            vec![Template::new(x, TTerm::Const(aff), y)],
            vec![
                Template::new(x, TTerm::Const(aff), z),
                Template::new(z, TTerm::Const(housed), y),
            ],
            0.8,
            RuleProvenance::UserDefined,
        ));
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .build();
        let (answers, _) = run(&store, &q, &rules, &ExpandOptions::default());
        // Exact answer IAS plus relaxed answer PrincetonUniversity.
        assert_eq!(answers.len(), 2);
        let princeton = store.resource("PrincetonUniversity").unwrap();
        let ias = store.resource("IAS").unwrap();
        assert_eq!(answers[0].key[0].1, Some(ias), "exact answer ranks first");
        assert_eq!(answers[1].key[0].1, Some(princeton));
        assert!((answers[1].derivation.rule_weight - 0.8).abs() < 1e-9);
    }

    #[test]
    fn no_rules_equals_exact() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_r_r_v("AlbertEinstein", "affiliation", "y")
            .build();
        let (answers, metrics) = run(&store, &q, &RuleSet::new(), &ExpandOptions::default());
        assert_eq!(answers.len(), 1);
        assert_eq!(metrics.rewritings_evaluated, 1);
        assert_eq!(metrics.relaxations_opened, 0);
    }

    #[test]
    fn k_limits_results() {
        let store = store();
        let q = QueryBuilder::new(&store)
            .pattern_v_r_v("x", "affiliation", "y")
            .limit(1)
            .build();
        let (answers, _) = run(&store, &q, &RuleSet::new(), &ExpandOptions::default());
        assert_eq!(answers.len(), 1);
    }
}
