//! Stage 3 of the top-k operator pipeline: **termination policy** —
//! the tightened threshold, stream capping, and the remaining-mass
//! envelope that powers the ε-approximate mode.
//!
//! The driver ([`crate::exec::drive`]) consults a [`ThresholdPolicy`]
//! at two points: once per variant before any posting list is opened
//! ([`ThresholdPolicy::admit_variant`]) and once per pull round
//! ([`ThresholdPolicy::after_round`]). The policy owns every decision
//! about *stopping*; it never touches the join state beyond the
//! `capped` flags.
//!
//! ## The exact criterion
//!
//! The classic rank-join threshold `T = max_i (frontier_i + Σ_{j≠i}
//! best_j)` (log space) bounds every unseen combination; processing
//! stops once the k-th answer's score reaches it. With
//! `tighten_threshold`, the store's precomputed posting index feeds the
//! bound (exact head probabilities for unopened alternatives, variant
//! pruning, per-stream capping); answers are provably identical either
//! way — tightening only reduces pulls.
//!
//! Per round, the capping pass needs every stream's "others"
//! contribution sum. These are maintained as prefix/suffix sums over
//! the per-stream contribution bounds — O(streams) per round rather
//! than the O(streams²) of recomputing each exclusion sum from scratch.
//! For up to three streams the floating-point result is identical to
//! the direct exclusion sum; at higher arity the summation associates
//! differently, an ULP-level difference between two equally sound
//! bounds on the same exact quantity.
//!
//! ## The ε-approximate criterion (mass envelope, load-bearing)
//!
//! With [`TopkConfig::epsilon`] ε > 0, the merge stage's O(1)
//! remaining-mass envelope ([`RankSource::remaining_mass`]) becomes the
//! termination criterion instead of a diagnostic. A stream `i` is
//! retired as soon as
//!
//! ```text
//! variant_w × mass_i × Π_{j≠i} best_j ≤ ε        (probability space)
//! ```
//!
//! where `mass_i` bounds every future emission of `i` (it dominates the
//! frontier — property-pinned in [`crate::exec::merge`]) and `best_j`
//! bounds every item, seen or unseen, of stream `j` (emissions are
//! descending, so the first bounds the rest; for unseeded streams the
//! frontier does). Any answer not found therefore needed an unseen item
//! of some retired stream and has probability ≤ ε. Returned answers
//! carry their exact scores, so for every rank `r`:
//!
//! > `prob(approx[r]) ≥ prob(exact[r]) − ε`
//!
//! (If `prob(exact[r]) > ε`, none of the exact top-(r+1) can have been
//! forfeited — each would have needed a retired stream's unseen item,
//! bounding it by ε — so `approx[r] ≥ exact[r]`; otherwise the claim is
//! trivial.) The same argument skips whole variants whose best possible
//! answer is ≤ ε before opening a single posting list. With ε = 0 the
//! criterion is `≤ ln(0) = -∞`, which never fires: the ε = 0 run is
//! bit-identical — answers *and* pull counts — to the exact engine
//! (property-pinned monolithic and at 1/2/4/7 shards).
//!
//! Unlike the per-item frontier (which the exact path caps on), the
//! mass envelope can retire a stream whose *aggregate* tail is
//! negligible even while its frontier still exceeds the k-th answer —
//! the pull reduction recorded in `BENCH_e9.json`. Retirements by this
//! criterion are counted in [`ExecMetrics::approx_cutoffs`]; exact
//! retirements stay in [`ExecMetrics::early_cutoffs`].
//!
//! [`TopkConfig::epsilon`]: crate::exec::drive::TopkConfig::epsilon
//! [`RankSource::remaining_mass`]: crate::exec::merge::RankSource::remaining_mass

use crate::answer::AnswerCollector;
use crate::exec::drive::TopkConfig;
use crate::exec::join::Stream;
use crate::exec::merge::RankSource;
use crate::exec::ExecMetrics;
use crate::score::{ln_weight, LOG_ZERO};

/// What the policy decided after a pull round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundVerdict {
    /// Keep pulling.
    Continue,
    /// The top-k is settled (within ε, if ε > 0): stop this variant's
    /// join loop normally.
    Done,
    /// A stream with no seen items was retired — no combination of this
    /// variant can ever complete; abandon the variant immediately.
    DeadVariant,
}

/// Per-variant termination policy: owns the threshold computation, the
/// capping decisions, and the round-scratch buffers.
pub(crate) struct ThresholdPolicy {
    tighten: bool,
    /// `ln ε` — the approximate mode's forfeit tolerance in log space.
    /// [`LOG_ZERO`] (ε = 0) disables the criterion: no comparison
    /// against it can ever succeed, keeping the exact path bit-identical.
    ln_eps: f64,
    k: usize,
    /// Round scratch: per-stream contribution bounds and their
    /// prefix/suffix running totals (lengths `n` and `n + 1`).
    contrib: Vec<f64>,
    prefix: Vec<f64>,
    suffix: Vec<f64>,
}

impl ThresholdPolicy {
    /// A policy for one variant with `n` streams.
    pub(crate) fn new(cfg: &TopkConfig, k: usize, n: usize) -> ThresholdPolicy {
        ThresholdPolicy {
            tighten: cfg.tighten_threshold,
            ln_eps: ln_weight(cfg.epsilon),
            k,
            contrib: vec![0.0; n],
            prefix: vec![0.0; n + 1],
            suffix: vec![0.0; n + 1],
        }
    }

    /// Variant admission, checked before any posting list is opened.
    /// Every answer of the variant scores at most `variant_weight × Π_i
    /// (best emission of stream i)`, and each stream's initial frontier
    /// is exactly that head bound. Returns `false` (and counts the
    /// cutoff) if the k-th collected answer already matches it
    /// (head-bound variant pruning, tightened mode) or if even the best
    /// possible answer is within the ε tolerance (approximate mode).
    pub(crate) fn admit_variant<M: RankSource>(
        &self,
        streams: &[Stream<M>],
        variant_log: f64,
        collector: &AnswerCollector,
        metrics: &mut ExecMetrics,
    ) -> bool {
        let kth = if self.tighten {
            collector.kth_score(self.k)
        } else {
            None
        };
        if kth.is_none() && self.ln_eps <= LOG_ZERO {
            return true;
        }
        let bound: f64 = variant_log + streams.iter().map(Stream::frontier_log).sum::<f64>();
        if let Some(kth) = kth {
            if kth >= bound {
                metrics.early_cutoffs += 1;
                return false;
            }
        }
        if self.ln_eps > LOG_ZERO && bound <= self.ln_eps {
            metrics.approx_cutoffs += 1;
            return false;
        }
        true
    }

    /// The per-round termination pass: recomputes the contribution
    /// prefix/suffix sums, evaluates the global threshold, and runs the
    /// exact and ε capping criteria.
    pub(crate) fn after_round<M: RankSource>(
        &mut self,
        streams: &mut [Stream<M>],
        variant_log: f64,
        collector: &AnswerCollector,
        metrics: &mut ExecMetrics,
    ) -> RoundVerdict {
        let n = streams.len();

        // Running contribution totals: Σ_{j≠i} contribution_bound(j) for
        // every i, via prefix/suffix sums over this round's bounds.
        for (i, c) in self.contrib.iter_mut().enumerate() {
            *c = streams[i].contribution_bound();
        }
        for i in 0..n {
            self.prefix[i + 1] = self.prefix[i] + self.contrib[i];
        }
        self.suffix[n] = 0.0;
        for i in (0..n).rev() {
            self.suffix[i] = self.suffix[i + 1] + self.contrib[i];
        }
        let (prefix, suffix) = (&self.prefix, &self.suffix);
        let others = |i: usize| prefix[i] + suffix[i + 1];

        // Threshold: best score any unseen combination can still achieve.
        // Capped streams produce no further items, so they drop out of
        // the outer max; their seen items still bound the inner product.
        let threshold = variant_log
            + (0..n)
                .filter(|&i| !streams[i].exhausted && !streams[i].capped)
                .map(|i| streams[i].frontier_log() + others(i))
                .fold(LOG_ZERO, f64::max);

        if threshold == LOG_ZERO {
            return RoundVerdict::Done;
        }
        if let Some(kth) = collector.kth_score(self.k) {
            if kth >= threshold {
                return RoundVerdict::Done;
            }
            if self.tighten && n > 1 {
                // Exact stream capping: retire stream i once its
                // frontier — with the head-bound refinement, a tight
                // bound on every unseen item of i (the merge's
                // O(1)-tracked remaining mass dominates it and serves as
                // the verified soundness envelope) — combined with the
                // other streams' contribution bounds cannot beat the
                // k-th answer. Later rounds then stop pulling i entirely
                // instead of draining its tail. (Single-stream variants
                // skip this: there the cap condition is exactly the
                // global break above.)
                for (i, stream) in streams.iter_mut().enumerate() {
                    if stream.exhausted || stream.capped {
                        continue;
                    }
                    let stream_bound = stream.frontier_log();
                    if kth >= variant_log + stream_bound + others(i) {
                        stream.capped = true;
                        metrics.early_cutoffs += 1;
                        // A capped stream with nothing seen can never
                        // complete a combination: the variant is done.
                        if stream.seen.is_empty() {
                            return RoundVerdict::DeadVariant;
                        }
                    }
                }
            }
        }
        // ε capping: the mass envelope as the load-bearing criterion.
        // Everything stream i can still contribute — the *sum* of its
        // future emissions, not just the next one — combined with the
        // other streams' bounds is within the forfeit tolerance, so the
        // stream retires even while its frontier alone would keep it
        // alive. Needs no k-th answer: the bound is absolute.
        if self.ln_eps > LOG_ZERO {
            for (i, stream) in streams.iter_mut().enumerate() {
                if stream.exhausted || stream.capped {
                    continue;
                }
                let mass_log = ln_weight(stream.merge.remaining_mass());
                if variant_log + mass_log + others(i) <= self.ln_eps {
                    stream.capped = true;
                    metrics.approx_cutoffs += 1;
                    if stream.seen.is_empty() {
                        return RoundVerdict::DeadVariant;
                    }
                }
            }
        }
        RoundVerdict::Continue
    }
}
