//! Stage 3 of the top-k operator pipeline: **termination policy** —
//! the tightened threshold, stream capping, and the remaining-mass
//! envelope that powers the ε-approximate mode.
//!
//! The driver ([`crate::exec::drive`]) consults a [`ThresholdPolicy`]
//! at two points: once per variant before any posting list is opened
//! ([`ThresholdPolicy::admit_variant`]) and once per pull round
//! ([`ThresholdPolicy::after_round`]). The policy owns every decision
//! about *stopping*; it never touches the join state beyond the
//! `capped` flags.
//!
//! ## The exact criterion
//!
//! The classic rank-join threshold `T = max_i (frontier_i + Σ_{j≠i}
//! best_j)` (log space) bounds every unseen combination; processing
//! stops once the k-th answer's score reaches it. With
//! `tighten_threshold`, the store's precomputed posting index feeds the
//! bound (exact head probabilities for unopened alternatives, variant
//! pruning, per-stream capping); answers are provably identical either
//! way — tightening only reduces pulls.
//!
//! Per round, the capping pass needs every stream's "others"
//! contribution sum. These are maintained as prefix/suffix sums over
//! the per-stream contribution bounds — O(streams) per round rather
//! than the O(streams²) of recomputing each exclusion sum from scratch.
//! For up to three streams the floating-point result is identical to
//! the direct exclusion sum; at higher arity the summation associates
//! differently, an ULP-level difference between two equally sound
//! bounds on the same exact quantity.
//!
//! ## The ε-approximate criterion (mass envelope, load-bearing)
//!
//! With [`TopkConfig::epsilon`] ε > 0, the merge stage's O(1)
//! remaining-mass envelope ([`RankSource::remaining_mass`]) becomes the
//! termination criterion instead of a diagnostic. A stream `i` is
//! retired as soon as
//!
//! ```text
//! variant_w × mass_i × Π_{j≠i} best_j ≤ ε        (probability space)
//! ```
//!
//! where `mass_i` bounds every future emission of `i` (it dominates the
//! frontier — property-pinned in [`crate::exec::merge`]) and `best_j`
//! bounds every item, seen or unseen, of stream `j` (emissions are
//! descending, so the first bounds the rest; for unseeded streams the
//! frontier does). Any answer not found therefore needed an unseen item
//! of some retired stream and has probability ≤ ε. Returned answers
//! carry their exact scores, so for every rank `r`:
//!
//! > `prob(approx[r]) ≥ prob(exact[r]) − ε`
//!
//! (If `prob(exact[r]) > ε`, none of the exact top-(r+1) can have been
//! forfeited — each would have needed a retired stream's unseen item,
//! bounding it by ε — so `approx[r] ≥ exact[r]`; otherwise the claim is
//! trivial.) The same argument skips whole variants whose best possible
//! answer is ≤ ε before opening a single posting list. With ε = 0 the
//! criterion is `≤ ln(0) = -∞`, which never fires: the ε = 0 run is
//! bit-identical — answers *and* pull counts — to the exact engine
//! (property-pinned monolithic and at 1/2/4/7 shards).
//!
//! Unlike the per-item frontier (which the exact path caps on), the
//! mass envelope can retire a stream whose *aggregate* tail is
//! negligible even while its frontier still exceeds the k-th answer —
//! the pull reduction recorded in `BENCH_e9.json`. Retirements by this
//! criterion are counted in [`ExecMetrics::approx_cutoffs`]; exact
//! retirements stay in [`ExecMetrics::early_cutoffs`].
//!
//! ## The relative-θ criterion
//!
//! With [`TopkConfig::theta`] θ ∈ (0, 1), the round loop additionally
//! stops once `kth ≥ threshold + ln(1 − θ)` (log space): every unseen
//! combination is then bounded by `kth / (1 − θ)` in probability space,
//! so for every returned rank `r`, `prob(approx[r]) ≥ (1 − θ) ·
//! prob(exact[r])` — a *relative* guarantee that adapts to the score
//! scale where the absolute ε criterion needs calibration. θ = 0 makes
//! the criterion coincide with the exact `kth ≥ threshold` test and
//! changes nothing.
//!
//! ## Budget governance
//!
//! The policy also carries the query's [`Governor`]: each round it
//! consults [`BudgetTracker::directive`] — O(1), a single branch when
//! the budget is unlimited — to pick up ladder-escalated effective
//! ε / θ values and to observe hard cutoffs, which it converts into
//! [`RoundVerdict::Cutoff`] after recording a sound bound (the current
//! threshold) on everything the cutoff forfeits.
//!
//! [`TopkConfig::epsilon`]: crate::exec::drive::TopkConfig::epsilon
//! [`TopkConfig::theta`]: crate::exec::drive::TopkConfig::theta
//! [`RankSource::remaining_mass`]: crate::exec::merge::RankSource::remaining_mass
//! [`BudgetTracker::directive`]: crate::exec::budget::BudgetTracker::directive

use crate::answer::AnswerCollector;
use crate::exec::budget::{CutoffReason, Directive, Governor};
use crate::exec::drive::TopkConfig;
use crate::exec::join::Stream;
use crate::exec::merge::RankSource;
use crate::exec::ExecMetrics;
use crate::score::{ln_weight, LOG_ZERO};

/// What the policy decided after a pull round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RoundVerdict {
    /// Keep pulling.
    Continue,
    /// The top-k is settled (within ε / θ, if set): stop this variant's
    /// join loop normally.
    Done,
    /// A stream with no seen items was retired — no combination of this
    /// variant can ever complete; abandon the variant immediately.
    DeadVariant,
    /// A hard budget cutoff fired: stop the whole pipeline, returning
    /// what was collected so far.
    Cutoff(CutoffReason),
}

/// What the policy decided about opening a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Open the variant's posting lists and run the join.
    Admit,
    /// Skip this variant (pruned by the head bound or ε); continue with
    /// the next one.
    Skip,
    /// A hard budget cutoff fired: stop the whole pipeline.
    Stop(CutoffReason),
}

/// Per-variant termination policy: owns the threshold computation, the
/// capping decisions, the budget governance, and the round-scratch
/// buffers.
pub(crate) struct ThresholdPolicy<'a> {
    tighten: bool,
    /// The query's budget governor (shared tracker, phase role).
    governor: Governor<'a>,
    /// Effective ε (probability space) after any ladder escalation.
    eff_eps: f64,
    /// `ln ε` — the approximate mode's forfeit tolerance in log space.
    /// [`LOG_ZERO`] (ε = 0) disables the criterion: no comparison
    /// against it can ever succeed, keeping the exact path bit-identical.
    ln_eps: f64,
    /// Effective relative θ after any ladder escalation.
    eff_theta: f64,
    /// `ln(1 − θ)` — the relative criterion's slack in log space. `0.0`
    /// (θ = 0) makes the θ test coincide with the exact one.
    ln_keep: f64,
    k: usize,
    /// Round scratch: per-stream contribution bounds and their
    /// prefix/suffix running totals (lengths `n` and `n + 1`).
    contrib: Vec<f64>,
    prefix: Vec<f64>,
    suffix: Vec<f64>,
}

impl<'a> ThresholdPolicy<'a> {
    /// A policy for one variant with `n` streams, governed by the
    /// query's budget tracker through `governor`.
    pub(crate) fn new(
        cfg: &TopkConfig,
        k: usize,
        n: usize,
        governor: Governor<'a>,
    ) -> ThresholdPolicy<'a> {
        ThresholdPolicy {
            tighten: cfg.tighten_threshold,
            governor,
            eff_eps: cfg.epsilon,
            ln_eps: ln_weight(cfg.epsilon),
            eff_theta: cfg.theta,
            ln_keep: ln_weight(1.0 - cfg.theta),
            k,
            contrib: vec![0.0; n],
            prefix: vec![0.0; n + 1],
            suffix: vec![0.0; n + 1],
        }
    }

    /// Applies a governed round directive: refreshes the cached
    /// effective ε / θ (recomputing the logs only on change) and counts
    /// ladder escalations. Returns the hard cutoff, if one fired, after
    /// counting it in the matching metric.
    fn apply_directive(
        &mut self,
        d: Directive,
        metrics: &mut ExecMetrics,
    ) -> Option<CutoffReason> {
        if d.escalations > 0 {
            metrics.degradation_steps += d.escalations;
        }
        if d.epsilon != self.eff_eps {
            self.eff_eps = d.epsilon;
            self.ln_eps = ln_weight(d.epsilon);
        }
        if d.theta != self.eff_theta {
            self.eff_theta = d.theta;
            self.ln_keep = ln_weight(1.0 - d.theta);
        }
        if let Some(reason) = d.cutoff {
            match reason {
                CutoffReason::Deadline => metrics.deadline_cutoffs += 1,
                CutoffReason::Pulls | CutoffReason::Answers => metrics.budget_cutoffs += 1,
            }
            return Some(reason);
        }
        None
    }

    /// Variant admission, checked before any posting list is opened.
    /// Every answer of the variant scores at most `variant_weight × Π_i
    /// (best emission of stream i)`, and each stream's initial frontier
    /// is exactly that head bound. Returns [`Admission::Skip`] (and
    /// counts the cutoff) if the k-th collected answer already matches
    /// it (head-bound variant pruning, tightened mode) or if even the
    /// best possible answer is within the ε tolerance (approximate
    /// mode); returns [`Admission::Stop`] when the budget governor
    /// reports a hard cutoff, recording the head bound as the sound
    /// forfeit envelope.
    pub(crate) fn admit_variant<M: RankSource>(
        &mut self,
        streams: &[Stream<M>],
        variant_log: f64,
        collector: &AnswerCollector,
        metrics: &mut ExecMetrics,
    ) -> Admission {
        let kth = if self.tighten {
            collector.kth_score(self.k)
        } else {
            None
        };
        if kth.is_none() && self.ln_eps <= LOG_ZERO && !self.governor.is_governed() {
            return Admission::Admit;
        }
        let bound: f64 = variant_log + streams.iter().map(Stream::frontier_log).sum::<f64>();
        if self.governor.is_governed() {
            let d = self.governor.directive(collector.len());
            if let Some(reason) = self.apply_directive(d, metrics) {
                // Nothing of this variant was explored: the head bound
                // caps everything it could have contributed.
                self.governor.note_truncated(bound);
                return Admission::Stop(reason);
            }
        }
        if let Some(kth) = kth {
            if kth >= bound {
                metrics.early_cutoffs += 1;
                return Admission::Skip;
            }
        }
        if self.ln_eps > LOG_ZERO && bound <= self.ln_eps {
            metrics.approx_cutoffs += 1;
            self.governor.note_approx();
            return Admission::Skip;
        }
        Admission::Admit
    }

    /// The per-round termination pass: recomputes the contribution
    /// prefix/suffix sums, evaluates the global threshold, and runs the
    /// exact and ε capping criteria.
    pub(crate) fn after_round<M: RankSource>(
        &mut self,
        streams: &mut [Stream<M>],
        variant_log: f64,
        collector: &AnswerCollector,
        metrics: &mut ExecMetrics,
    ) -> RoundVerdict {
        let n = streams.len();

        // Running contribution totals: Σ_{j≠i} contribution_bound(j) for
        // every i, via prefix/suffix sums over this round's bounds.
        for (i, c) in self.contrib.iter_mut().enumerate() {
            *c = streams[i].contribution_bound();
        }
        for i in 0..n {
            self.prefix[i + 1] = self.prefix[i] + self.contrib[i];
        }
        self.suffix[n] = 0.0;
        for i in (0..n).rev() {
            self.suffix[i] = self.suffix[i + 1] + self.contrib[i];
        }
        // Threshold: best score any unseen combination can still achieve.
        // Capped streams produce no further items, so they drop out of
        // the outer max; their seen items still bound the inner product.
        // (The prefix/suffix borrow is scoped so the governed block
        // below can take `&mut self` for the directive refresh.)
        let threshold = {
            let (prefix, suffix) = (&self.prefix, &self.suffix);
            variant_log
                + (0..n)
                    .filter(|&i| !streams[i].exhausted && !streams[i].capped)
                    .map(|i| streams[i].frontier_log() + prefix[i] + suffix[i + 1])
                    .fold(LOG_ZERO, f64::max)
        };

        if threshold == LOG_ZERO {
            return RoundVerdict::Done;
        }
        // Budget governance: pick up ladder escalations (effective ε/θ)
        // and hard cutoffs. A cutoff records the current threshold as
        // the forfeit envelope — every unseen combination of this
        // variant is bounded by it — before stopping the pipeline.
        // Exact termination is checked *after* the escalation refresh
        // but cutoffs are honored first, so a run is only labeled
        // truncated when the cutoff genuinely preempted termination.
        if self.governor.is_governed() {
            let d = self.governor.directive(collector.len());
            if let Some(reason) = self.apply_directive(d, metrics) {
                if collector
                    .kth_score(self.k)
                    .is_some_and(|kth| kth >= threshold)
                {
                    // The exact criterion held this very round: finish
                    // normally instead of reporting a truncation.
                    return RoundVerdict::Done;
                }
                self.governor.note_truncated(threshold);
                return RoundVerdict::Cutoff(reason);
            }
        }
        let (prefix, suffix) = (&self.prefix, &self.suffix);
        let others = |i: usize| prefix[i] + suffix[i + 1];
        if let Some(kth) = collector.kth_score(self.k) {
            if kth >= threshold {
                return RoundVerdict::Done;
            }
            // Relative-θ termination: unseen combinations are bounded
            // by threshold ≤ kth − ln(1−θ), i.e. kth/(1−θ) in
            // probability space, so every returned rank keeps
            // prob(approx[r]) ≥ (1−θ)·prob(exact[r]). θ = 0 coincides
            // with the exact test above and never fires separately.
            if self.eff_theta > 0.0 && kth >= threshold + self.ln_keep {
                metrics.approx_cutoffs += 1;
                self.governor.note_approx();
                return RoundVerdict::Done;
            }
            if self.tighten && n > 1 {
                // Exact stream capping: retire stream i once its
                // frontier — with the head-bound refinement, a tight
                // bound on every unseen item of i (the merge's
                // O(1)-tracked remaining mass dominates it and serves as
                // the verified soundness envelope) — combined with the
                // other streams' contribution bounds cannot beat the
                // k-th answer. Later rounds then stop pulling i entirely
                // instead of draining its tail. (Single-stream variants
                // skip this: there the cap condition is exactly the
                // global break above.)
                for (i, stream) in streams.iter_mut().enumerate() {
                    if stream.exhausted || stream.capped {
                        continue;
                    }
                    let stream_bound = stream.frontier_log();
                    if kth >= variant_log + stream_bound + others(i) {
                        stream.capped = true;
                        metrics.early_cutoffs += 1;
                        // A capped stream with nothing seen can never
                        // complete a combination: the variant is done.
                        if stream.seen.is_empty() {
                            return RoundVerdict::DeadVariant;
                        }
                    }
                }
            }
        }
        // ε capping: the mass envelope as the load-bearing criterion.
        // Everything stream i can still contribute — the *sum* of its
        // future emissions, not just the next one — combined with the
        // other streams' bounds is within the forfeit tolerance, so the
        // stream retires even while its frontier alone would keep it
        // alive. Needs no k-th answer: the bound is absolute.
        if self.ln_eps > LOG_ZERO {
            for (i, stream) in streams.iter_mut().enumerate() {
                if stream.exhausted || stream.capped {
                    continue;
                }
                let mass_log = ln_weight(stream.merge.remaining_mass());
                if variant_log + mass_log + others(i) <= self.ln_eps {
                    stream.capped = true;
                    metrics.approx_cutoffs += 1;
                    self.governor.note_approx();
                    if stream.seen.is_empty() {
                        return RoundVerdict::DeadVariant;
                    }
                }
            }
        }
        RoundVerdict::Continue
    }
}
