//! Execution context over the segments of a segmented (base + delta)
//! store.
//!
//! A segmented store serves queries as a union of store slices — the
//! frozen base segment(s) followed by the freshly frozen delta
//! segment(s) — through the exact same partitioned pipeline sharding
//! uses ([`run_partitioned`](crate::exec::sharded::run_partitioned)):
//! a segment is just another merge source. What the pipeline needs from
//! the caller is the cross-slice context, and [`SegmentedExec`] bundles
//! all three facets of it for an arbitrary slice list:
//!
//! * [`GlobalTotals`] — a pattern's matches may now split across
//!   slices (in particular, a subject's matches split between its home
//!   shard's base and delta, so even subject-bound shapes need a
//!   cross-slice denominator), and every emission must be normalized
//!   over the *union's* total emission weight for scores to equal a
//!   from-scratch rebuild's;
//! * [`TripleLookup`] — derivation ids are global (slice offset +
//!   local id);
//! * [`ConditionOracle`] — a structural rule's data condition holds if
//!   any slice asserts the ground triple.
//!
//! The provider is deliberately transient (per query): delta views are
//! rebuilt on every ingest, so memoizing totals across queries would
//! just be another invalidation surface. The totals it computes are
//! O(log n) prefix-sum reads per slice for the four index-served
//! shapes, and a scan of the (small) matching range for composite
//! shapes.

use trinit_relax::ConditionOracle;
use trinit_xkg::{SlotPattern, TermId, Triple, TripleId, XkgStore};

use crate::exec::TripleLookup;
use crate::score::{satisfies_mask, CanonicalPattern, GlobalTotals};

/// Cross-slice totals, lookup, and oracle over an explicit slice list —
/// the execution context a segmented store passes to
/// [`run_partitioned`](crate::exec::sharded::run_partitioned).
pub struct SegmentedExec<'a> {
    slices: &'a [&'a XkgStore],
    /// `offsets[i]` is slice `i`'s base in the global triple-id space;
    /// monotonically non-decreasing, starting at the caller's origin.
    offsets: &'a [u32],
}

impl<'a> SegmentedExec<'a> {
    /// Bundles `slices` (with their global-id `offsets`) into one
    /// execution context.
    ///
    /// # Panics
    ///
    /// Panics if the lists differ in length or are empty.
    pub fn new(slices: &'a [&'a XkgStore], offsets: &'a [u32]) -> SegmentedExec<'a> {
        assert_eq!(slices.len(), offsets.len(), "one offset per slice");
        assert!(!slices.is_empty(), "at least one slice");
        SegmentedExec { slices, offsets }
    }

    /// Resolves a global triple id to its slice and slice-local id.
    fn resolve(&self, id: TripleId) -> (&'a XkgStore, TripleId) {
        let i = self.offsets.partition_point(|&base| base <= id.0) - 1;
        let local = TripleId(id.0 - self.offsets[i]);
        assert!(
            local.idx() < self.slices[i].len(),
            "triple id {id:?} outside every slice"
        );
        (self.slices[i], local)
    }

    /// A filtered pattern's total emission weight across every slice:
    /// the reference scan (lookup + repetition mask + provenance
    /// weights), summed over slices.
    fn scan_total(&self, slot: &SlotPattern, mask: u8) -> f64 {
        self.slices
            .iter()
            .map(|s| {
                s.lookup(slot)
                    .iter()
                    .filter(|&&id| satisfies_mask(s, id, mask))
                    .map(|&id| s.provenance(id).weight())
                    .sum::<f64>()
            })
            .sum()
    }
}

impl GlobalTotals for SegmentedExec<'_> {
    fn pattern_total(&self, key: &CanonicalPattern) -> Option<f64> {
        if self.slices.len() == 1 {
            // One slice: local is global for every shape.
            return None;
        }
        let (slot, mask) = *key;
        if mask == 0 {
            // The four index-served shapes read per-slice prefix sums.
            match (slot.s, slot.p, slot.o) {
                (Some(s), None, None) => {
                    return Some(
                        self.slices
                            .iter()
                            .map(|sl| sl.subject_total_weight(s))
                            .sum(),
                    )
                }
                (None, Some(p), None) => {
                    return Some(
                        self.slices
                            .iter()
                            .map(|sl| sl.posting_index().predicate_total_weight(p))
                            .sum(),
                    )
                }
                (None, None, Some(o)) => {
                    return Some(
                        self.slices
                            .iter()
                            .map(|sl| sl.object_total_weight(o))
                            .sum(),
                    )
                }
                (None, None, None) => {
                    return Some(
                        self.slices
                            .iter()
                            .map(|sl| sl.posting_index().total_weight())
                            .sum(),
                    )
                }
                _ => {}
            }
        }
        Some(self.scan_total(&slot, mask))
    }
}

impl TripleLookup for SegmentedExec<'_> {
    fn triple_of(&self, id: TripleId) -> Triple {
        let (slice, local) = self.resolve(id);
        slice.triple(local)
    }
}

impl ConditionOracle for SegmentedExec<'_> {
    fn ground_holds(&self, s: TermId, p: TermId, o: TermId) -> bool {
        let slot = SlotPattern::new(Some(s), Some(p), Some(o));
        self.slices.iter().any(|sl| sl.count(&slot) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::XkgBuilder;

    fn base_and_delta() -> (XkgStore, XkgStore, XkgStore) {
        let mut b = XkgBuilder::new();
        for i in 0..10u32 {
            b.add_kg_resources(&format!("s{i}"), "p", &format!("o{}", i % 3));
        }
        let base = b.clone().build();
        let mut delta = XkgBuilder::with_context(base.dict().clone(), base.sources());
        delta.add_kg_resources("s1", "q", "o0");
        delta.add_kg_resources("s11", "p", "o1");
        let union = {
            let mut u = b;
            u.add_kg_resources("s1", "q", "o0");
            u.add_kg_resources("s11", "p", "o1");
            u.build()
        };
        (base, delta.build(), union)
    }

    #[test]
    fn totals_match_the_union_store_for_every_shape() {
        let (base, delta, union) = base_and_delta();
        let slices = [&base, &delta];
        let offsets = [0u32, base.len() as u32];
        let exec = SegmentedExec::new(&slices, &offsets);
        let s = union.resource("s1").unwrap();
        let p = union.resource("p").unwrap();
        let o = union.resource("o0").unwrap();
        for slot in [
            SlotPattern::new(None, None, None),
            SlotPattern::new(Some(s), None, None),
            SlotPattern::new(None, Some(p), None),
            SlotPattern::new(None, None, Some(o)),
            SlotPattern::new(Some(s), Some(p), None),
            SlotPattern::new(Some(s), None, Some(o)),
            SlotPattern::new(None, Some(p), Some(o)),
            SlotPattern::new(Some(s), Some(p), Some(o)),
        ] {
            let total = exec
                .pattern_total(&(slot, 0))
                .expect("multi-slice totals are always explicit");
            let want: f64 = union
                .lookup(&slot)
                .iter()
                .map(|&id| union.provenance(id).weight())
                .sum();
            assert!((total - want).abs() < 1e-9, "shape {slot}");
        }
    }

    #[test]
    fn single_slice_defers_to_local_totals() {
        let (base, _, _) = base_and_delta();
        let slices = [&base];
        let offsets = [0u32];
        let exec = SegmentedExec::new(&slices, &offsets);
        assert_eq!(exec.pattern_total(&(SlotPattern::new(None, None, None), 0)), None);
    }

    #[test]
    fn lookup_and_oracle_span_the_slices() {
        let (base, delta, _) = base_and_delta();
        let slices = [&base, &delta];
        let offsets = [0u32, base.len() as u32];
        let exec = SegmentedExec::new(&slices, &offsets);
        assert_eq!(exec.triple_of(TripleId(0)), base.triple(TripleId(0)));
        assert_eq!(
            exec.triple_of(TripleId(base.len() as u32)),
            delta.triple(TripleId(0))
        );
        let s = delta.resource("s11").unwrap();
        let p = delta.resource("p").unwrap();
        let o = delta.resource("o1").unwrap();
        assert!(exec.ground_holds(s, p, o), "delta-only fact must hold");
        let bs = base.resource("s0").unwrap();
        let bo = base.resource("o0").unwrap();
        assert!(exec.ground_holds(bs, p, bo), "base fact must hold");
        assert!(!exec.ground_holds(s, p, bo));
    }
}
