//! Stage 2 of the top-k operator pipeline: the **hash-partitioned rank
//! join**.
//!
//! Consumes emissions from any [`RankSource`] (stage 1,
//! [`crate::exec::merge`]) and combines them across a variant's streams,
//! HRJN-style: each new item joins against the seen items of the other
//! streams. Each [`Stream`] keeps its seen items partitioned by the
//! values of its *join variables* (variables shared with other streams
//! in the variant), so an arriving item probes exactly one bucket per
//! stream instead of scanning every seen item — the Yannakakis-style
//! observation that only join-compatible partners can ever merge. Items
//! whose relaxed form dropped a join variable land in a small
//! always-scanned residual list, and streams with no shared variables
//! degrade to a single bucket (a true cross product).
//!
//! The combination loop works in a single scratch [`Bindings`] with
//! undo-based backtracking; a combined `Bindings` is allocated once per
//! *successful* full join, never speculatively.
//!
//! This module knows nothing about thresholds or termination — pulls
//! are sequenced by the driver ([`crate::exec::drive`]) under the
//! policy of [`crate::exec::threshold`]. The seams it exposes upward
//! are [`Stream`] (per-stream join state plus the frontier /
//! contribution bounds the threshold reads) and [`join_with_others`]
//! (combine one arrival against the other streams' partitions).

use std::collections::HashMap;

use trinit_relax::{QPattern, QTerm, RuleId, VarId};
use trinit_xkg::{TermId, TripleId};

use crate::answer::{Answer, AnswerCollector, Bindings, Derivation};
use crate::exec::merge::RankSource;
use crate::exec::{ExecMetrics, TripleLookup};
use crate::score::LOG_ZERO;

/// An item seen by one rank-join stream: the (few) variable bindings its
/// triple induced, plus provenance for derivations.
#[derive(Debug, Clone)]
pub(crate) struct SeenItem {
    /// `(variable, value)` pairs bound by this item's pattern — at most
    /// three, deduplicated. Stored as pairs (not a dense [`Bindings`])
    /// so joining is an O(|pairs|) probe into the shared scratch
    /// assignment instead of a per-candidate vector clone.
    pub(crate) bound: Vec<(VarId, TermId)>,
    pub(crate) log_score: f64,
    pub(crate) pattern: QPattern,
    pub(crate) triple: TripleId,
    pub(crate) trace: Vec<RuleId>,
    pub(crate) weight: f64,
}

/// One rank-join stream: a stage-1 source plus the partitioned seen-item
/// state the join probes and the bounds the threshold policy reads.
pub(crate) struct Stream<M> {
    pub(crate) merge: M,
    pub(crate) seen: Vec<SeenItem>,
    /// This stream's join variables: variables of its variant pattern
    /// shared with at least one other stream. Sorted, deduplicated; the
    /// partition key is their value tuple.
    pub(crate) join_vars: Vec<VarId>,
    /// Seen items that bind every join variable, partitioned by their
    /// join-key values. With no join variables all items share the empty
    /// key (a deliberate single-bucket cross product).
    pub(crate) buckets: HashMap<Vec<TermId>, Vec<u32>>,
    /// Seen items whose (relaxed) pattern dropped a join variable; they
    /// are compatible with any key value there, so every probe scans
    /// this residual list as well.
    pub(crate) partial: Vec<u32>,
    pub(crate) best_log: f64,
    pub(crate) exhausted: bool,
    /// Retired by the termination policy: no unseen item of this stream
    /// can improve the top-k (exact capping) or everything it can still
    /// contribute is within the ε tolerance (approximate capping), so it
    /// is no longer pulled (its seen items keep participating in other
    /// streams' joins).
    pub(crate) capped: bool,
}

impl<M: RankSource> Stream<M> {
    /// A fresh stream over `merge` with the given join variables.
    pub(crate) fn new(merge: M, join_vars: Vec<VarId>) -> Stream<M> {
        Stream {
            merge,
            seen: Vec::new(),
            join_vars,
            buckets: HashMap::new(),
            partial: Vec::new(),
            best_log: LOG_ZERO,
            exhausted: false,
            capped: false,
        }
    }

    /// Upper bound (log) on this stream's next emission; [`LOG_ZERO`]
    /// once exhausted.
    pub(crate) fn frontier_log(&self) -> f64 {
        if self.exhausted {
            LOG_ZERO
        } else {
            self.merge.peek_bound().map_or(LOG_ZERO, crate::score::ln_weight)
        }
    }

    /// Upper bound on any item this stream can contribute.
    pub(crate) fn contribution_bound(&self) -> f64 {
        if self.seen.is_empty() {
            self.frontier_log()
        } else {
            self.best_log
        }
    }

    /// Remembers an item, filing it under its join-key partition.
    pub(crate) fn push_seen(&mut self, item: SeenItem) {
        if self.seen.is_empty() {
            self.best_log = item.log_score;
        }
        let idx = self.seen.len() as u32;
        let mut key = Vec::with_capacity(self.join_vars.len());
        let mut complete = true;
        for &v in &self.join_vars {
            match item.bound.iter().find(|(u, _)| *u == v) {
                Some(&(_, t)) => key.push(t),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            self.buckets.entry(key).or_default().push(idx);
        } else {
            self.partial.push(idx);
        }
        self.seen.push(item);
    }
}

/// The `(variable, value)` pairs a pattern induces against a concrete
/// triple, deduplicated. Returns `None` if a repeated variable meets two
/// different values (cannot happen for triples from the pattern's own
/// match list, which pre-filters repetition, but kept defensive).
pub(crate) fn bind_pairs(
    pattern: &QPattern,
    lookup: &dyn TripleLookup,
    triple: TripleId,
) -> Option<Vec<(VarId, TermId)>> {
    let t = lookup.triple_of(triple);
    let mut out: Vec<(VarId, TermId)> = Vec::with_capacity(3);
    for (slot, value) in pattern.slots().into_iter().zip([t.s, t.p, t.o]) {
        if let QTerm::Var(v) = slot {
            match out.iter().find(|(u, _)| *u == v) {
                Some(&(_, existing)) => {
                    if existing != value {
                        return None;
                    }
                }
                None => out.push((v, value)),
            }
        }
    }
    Some(out)
}

/// The join variables of each pattern: variables shared with at least
/// one other pattern of the variant. Relaxed alternatives only rename
/// rule-introduced *fresh* variables (into per-stream disjoint ranges),
/// so shared variables are exactly the shared variables of the variant
/// patterns themselves.
pub(crate) fn join_vars_of(patterns: &[QPattern]) -> Vec<Vec<VarId>> {
    patterns
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut join_vars: Vec<VarId> = p.vars().collect();
            join_vars.sort_unstable();
            join_vars.dedup();
            join_vars.retain(|v| {
                patterns
                    .iter()
                    .enumerate()
                    .any(|(j, q)| j != i && q.vars().any(|w| w == *v))
            });
            join_vars
        })
        .collect()
}

/// The first variable id beyond every variable used by `patterns`.
pub(crate) fn max_var_of(patterns: &[QPattern]) -> u16 {
    patterns
        .iter()
        .filter_map(QPattern::max_var)
        .max()
        .map_or(0, |m| m + 1)
}

/// Binds an item's `(variable, value)` pairs into the scratch
/// assignment, recording newly bound variables in `undo`. On conflict,
/// rolls back the partial binds and returns `false` — nothing is
/// allocated either way.
fn bind_all(scratch: &mut Bindings, bound: &[(VarId, TermId)], undo: &mut Vec<VarId>) -> bool {
    for &(v, t) in bound {
        if !scratch.try_bind_recorded(v, t, undo) {
            for &u in undo.iter() {
                scratch.unbind(u);
            }
            return false;
        }
    }
    true
}

/// The join-key values of `join_vars` under the scratch assignment, or
/// `None` if some join variable is still unbound (the accumulated
/// streams do not cover it, so every partition stays reachable).
fn probe_key(scratch: &Bindings, join_vars: &[VarId]) -> Option<Vec<TermId>> {
    let mut key = Vec::with_capacity(join_vars.len());
    for &v in join_vars {
        key.push(scratch.get(v)?);
    }
    Some(key)
}

/// Depth-first combination over the other streams' seen items. Each
/// stream is entered through its join-key partition: one hash probe
/// selects the only bucket whose items can merge with the accumulated
/// assignment (plus the residual list of items missing a join variable).
/// The scratch assignment is shared across the whole recursion with
/// undo-based backtracking; a combined `Bindings` is only materialized
/// inside `emit`, once per successful full join.
#[allow(clippy::too_many_arguments)]
fn combine<'s, M>(
    streams: &'s [Stream<M>],
    skip: usize,
    idx: usize,
    scratch: &mut Bindings,
    acc_score: f64,
    acc_items: &mut Vec<&'s SeenItem>,
    emit: &mut dyn FnMut(&Bindings, f64, &[&SeenItem]),
    metrics: &mut ExecMetrics,
) {
    if idx == streams.len() {
        emit(scratch, acc_score, acc_items);
        return;
    }
    if idx == skip {
        combine(
            streams, skip, idx + 1, scratch, acc_score, acc_items, emit, metrics,
        );
        return;
    }
    let stream = &streams[idx];
    let mut undo: Vec<VarId> = Vec::new();
    let try_candidate = |item: &'s SeenItem,
                             scratch: &mut Bindings,
                             acc_items: &mut Vec<&'s SeenItem>,
                             undo: &mut Vec<VarId>,
                             emit: &mut dyn FnMut(&Bindings, f64, &[&SeenItem]),
                             metrics: &mut ExecMetrics| {
        metrics.join_candidates += 1;
        undo.clear();
        if !bind_all(scratch, &item.bound, undo) {
            return;
        }
        acc_items.push(item);
        combine(
            streams,
            skip,
            idx + 1,
            scratch,
            acc_score + item.log_score,
            acc_items,
            emit,
            metrics,
        );
        acc_items.pop();
        for &v in undo.iter() {
            scratch.unbind(v);
        }
    };
    match probe_key(scratch, &stream.join_vars) {
        Some(key) => {
            if let Some(bucket) = stream.buckets.get(&key) {
                for &i in bucket {
                    try_candidate(
                        &stream.seen[i as usize],
                        scratch,
                        acc_items,
                        &mut undo,
                        emit,
                        metrics,
                    );
                }
            }
            for &i in &stream.partial {
                try_candidate(
                    &stream.seen[i as usize],
                    scratch,
                    acc_items,
                    &mut undo,
                    emit,
                    metrics,
                );
            }
        }
        None => {
            for item in &stream.seen {
                try_candidate(item, scratch, acc_items, &mut undo, emit, metrics);
            }
        }
    }
}

/// Joins one arrival against the other streams' seen partitions,
/// offering every completed combination to the collector.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join_with_others<M>(
    streams: &[Stream<M>],
    new_stream: usize,
    new_item: &SeenItem,
    variant_log: f64,
    variant_trace: &[RuleId],
    projection: &[VarId],
    scratch: &mut Bindings,
    collector: &mut AnswerCollector,
    metrics: &mut ExecMetrics,
) {
    let mut base_undo: Vec<VarId> = Vec::new();
    if !bind_all(scratch, &new_item.bound, &mut base_undo) {
        return; // scratch starts unbound, so this cannot conflict; defensive
    }
    let mut acc_items: Vec<&SeenItem> = vec![new_item];
    let base_score = new_item.log_score + variant_log;
    combine(
        streams,
        new_stream,
        0,
        scratch,
        base_score,
        &mut acc_items,
        &mut |bindings, score, items| {
            let mut rules: Vec<RuleId> = variant_trace.to_vec();
            let mut rule_weight = 1.0;
            for item in items {
                rules.extend_from_slice(&item.trace);
                rule_weight *= item.weight;
            }
            // Variant weight folds into the derivation weight as well.
            if variant_log.is_finite() {
                rule_weight *= variant_log.exp();
            }
            collector.offer(Answer {
                key: bindings.project(projection),
                bindings: bindings.clone(),
                score,
                derivation: Derivation {
                    triples: items.iter().map(|it| (it.pattern, it.triple)).collect(),
                    rules,
                    rule_weight,
                },
            });
        },
        metrics,
    );
    for &v in &base_undo {
        scratch.unbind(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::drive::TopkConfig;
    use crate::exec::merge::{pattern_alternatives, IncrementalMerge};
    use crate::exec::testfix::store;
    use crate::score::PostingCache;
    use std::cell::RefCell;
    use std::rc::Rc;
    use trinit_relax::RuleSet;

    #[test]
    fn partition_buckets_and_residual_list() {
        // White-box: items binding every join variable land in the
        // keyed bucket; items whose (relaxed) pattern dropped a join
        // variable go to the always-scanned residual list.
        let store = store();
        let p = store.resource("affiliation").unwrap();
        let pattern = QPattern::new(QTerm::Var(VarId(0)), QTerm::Term(p), QTerm::Var(VarId(1)));
        let alts = pattern_alternatives(&pattern, &RuleSet::new(), &TopkConfig::default(), 10);
        let cache = Rc::new(RefCell::new(PostingCache::new()));
        let mut stream = Stream {
            merge: IncrementalMerge::new(&store, alts, cache, None, true, None),
            seen: Vec::new(),
            join_vars: vec![VarId(0)],
            buckets: HashMap::new(),
            partial: Vec::new(),
            best_log: LOG_ZERO,
            exhausted: false,
            capped: false,
        };
        let einstein = store.resource("AlbertEinstein").unwrap();
        let ias = store.resource("IAS").unwrap();
        let item = |bound: Vec<(VarId, TermId)>, score: f64| SeenItem {
            bound,
            log_score: score,
            pattern,
            triple: TripleId(0),
            trace: Vec::new(),
            weight: 1.0,
        };
        stream.push_seen(item(vec![(VarId(0), einstein), (VarId(1), ias)], -0.1));
        stream.push_seen(item(vec![(VarId(1), ias)], -0.2)); // dropped ?x
        stream.push_seen(item(vec![(VarId(0), einstein), (VarId(1), einstein)], -0.3));
        assert_eq!(stream.buckets.get(&vec![einstein]), Some(&vec![0u32, 2]));
        assert_eq!(stream.partial, vec![1u32]);
        assert_eq!(stream.best_log, -0.1);

        // Probe keys resolve through the scratch assignment.
        let mut scratch = Bindings::new(4);
        assert_eq!(probe_key(&scratch, &stream.join_vars), None, "unbound join var");
        scratch.bind(VarId(0), einstein);
        assert_eq!(probe_key(&scratch, &stream.join_vars), Some(vec![einstein]));
        assert_eq!(probe_key(&scratch, &[]), Some(Vec::new()), "cross product key");
    }

    #[test]
    fn bind_pairs_dedupes_and_detects_conflicts() {
        let store = store();
        let aff = store.resource("affiliation").unwrap();
        // Find the (AlbertEinstein, affiliation, IAS) triple.
        let einstein = store.resource("AlbertEinstein").unwrap();
        let triple = store
            .iter()
            .find(|(_, t)| t.p == aff && t.s == einstein)
            .map(|(id, _)| id)
            .unwrap();
        let v = QTerm::Var(VarId(0));
        let w = QTerm::Var(VarId(1));
        let pairs = bind_pairs(&QPattern::new(v, QTerm::Term(aff), w), &store, triple).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, VarId(0));
        assert_eq!(pairs[0].1, einstein);
        // Repeated variable over distinct slot values: conflict.
        assert!(bind_pairs(&QPattern::new(v, QTerm::Term(aff), v), &store, triple).is_none());
        // Ground pattern binds nothing.
        let t = store.triple(triple);
        let ground = QPattern::new(QTerm::Term(t.s), QTerm::Term(t.p), QTerm::Term(t.o));
        assert!(bind_pairs(&ground, &store, triple).unwrap().is_empty());
    }
}
