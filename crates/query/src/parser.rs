//! Text syntax for extended triple-pattern queries.
//!
//! The grammar mirrors the paper's notation (Figures 2 and 5):
//!
//! ```text
//! query    := [ "SELECT" var+ "WHERE"? ] pattern ( ("." | ";") pattern )* [ "LIMIT" int ]
//! pattern  := term term term
//! term     := "?" name                 — variable
//!           | "'" phrase "'"           — token (or literal if numeric)
//!           | '"' phrase '"'           — same
//!           | bareword                 — resource
//! ```
//!
//! Examples:
//!
//! ```text
//! ?x bornIn Germany
//! AlbertEinstein affiliation ?x . ?x member IvyLeague
//! SELECT ?y AlbertEinstein 'won nobel for' ?y LIMIT 5
//! ```

use std::fmt;

use trinit_relax::QTerm;
use trinit_xkg::{TermKind, XkgStore};

use crate::ast::{Query, QueryBuilder};

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

/// Lexer token.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Lex {
    Word(String),
    Var(String),
    Quoted(String),
    Dot,
}

fn lex(input: &str) -> Result<Vec<Lex>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '.' | ';' => {
                chars.next();
                out.push(Lex::Dot);
            }
            '?' => {
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(err("expected variable name after '?'"));
                }
                out.push(Lex::Var(name));
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut phrase = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == quote => break,
                        Some(c) => phrase.push(c),
                        None => return Err(err("unterminated quoted phrase")),
                    }
                }
                out.push(Lex::Quoted(phrase));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '.' || c == ';' || c == '\'' || c == '"' {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                out.push(Lex::Word(word));
            }
        }
    }
    Ok(out)
}

/// True if a quoted phrase should be treated as a literal value.
fn is_literal_phrase(phrase: &str) -> bool {
    !phrase.is_empty()
        && phrase
            .chars()
            .all(|c| c.is_ascii_digit() || c == '-' || c == '.' || c == ',' || c == ':')
        && phrase.chars().any(|c| c.is_ascii_digit())
}

/// Parses a query against a store's vocabulary.
///
/// Terms absent from the store are accepted (they match nothing but are
/// kept for display and suggestion — see
/// [`Query::unknown_terms`]).
pub fn parse(store: &XkgStore, input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input)?;
    let mut builder = QueryBuilder::new(store);
    let mut pos = 0;

    // Optional SELECT clause.
    let mut projection: Vec<String> = Vec::new();
    if matches!(tokens.first(), Some(Lex::Word(w)) if w.eq_ignore_ascii_case("select")) {
        pos += 1;
        while let Some(Lex::Var(name)) = tokens.get(pos) {
            projection.push(name.clone());
            pos += 1;
        }
        if projection.is_empty() {
            return Err(err("SELECT requires at least one variable"));
        }
        if matches!(tokens.get(pos), Some(Lex::Word(w)) if w.eq_ignore_ascii_case("where")) {
            pos += 1;
        }
    }

    // Optional trailing LIMIT.
    let mut limit = 10usize;
    let mut end = tokens.len();
    if end >= 2 {
        if let (Some(Lex::Word(kw)), Some(Lex::Word(n))) = (tokens.get(end - 2), tokens.get(end - 1))
        {
            if kw.eq_ignore_ascii_case("limit") {
                limit = n
                    .parse()
                    .map_err(|_| err(format!("invalid LIMIT value {n:?}")))?;
                end -= 2;
            }
        }
    }

    // Triple patterns.
    let mut slots: Vec<QTerm> = Vec::new();
    let mut patterns = 0usize;
    while pos < end {
        match &tokens[pos] {
            Lex::Dot => {
                if !slots.is_empty() {
                    return Err(err("pattern separator inside a triple pattern"));
                }
                pos += 1;
                continue;
            }
            Lex::Var(name) => {
                let v = builder.var(name);
                slots.push(QTerm::Var(v));
                pos += 1;
            }
            Lex::Quoted(phrase) => {
                let kind = if is_literal_phrase(phrase) {
                    TermKind::Literal
                } else {
                    TermKind::Token
                };
                let id = builder.term(kind, phrase);
                slots.push(QTerm::Term(id));
                pos += 1;
            }
            Lex::Word(word) => {
                let id = builder.resource(word);
                slots.push(QTerm::Term(id));
                pos += 1;
            }
        }
        if slots.len() == 3 {
            let (o, p, s) = (
                slots.pop().expect("three slots"),
                slots.pop().expect("two slots"),
                slots.pop().expect("one slot"),
            );
            builder = builder.pattern(s, p, o);
            patterns += 1;
        }
    }
    if !slots.is_empty() {
        return Err(err(format!(
            "incomplete triple pattern: {} trailing term(s)",
            slots.len()
        )));
    }
    if patterns == 0 {
        return Err(err("query has no triple patterns"));
    }

    let proj_refs: Vec<&str> = projection.iter().map(String::as_str).collect();
    if !proj_refs.is_empty() {
        builder = builder.project(&proj_refs);
    }
    Ok(builder.limit(limit).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinit_xkg::XkgBuilder;

    fn store() -> XkgStore {
        let mut b = XkgBuilder::new();
        b.add_kg_resources("AlbertEinstein", "bornIn", "Ulm");
        b.add_kg_resources("AlbertEinstein", "affiliation", "IAS");
        b.add_kg_resources("PrincetonUniversity", "member", "IvyLeague");
        let s = b.dict_mut().resource("AlbertEinstein");
        let p = b.dict_mut().token("won nobel for");
        let o = b.dict_mut().token("photoelectric effect");
        let src = b.intern_source("d");
        b.add_extracted(s, p, o, 0.8, src);
        b.build()
    }

    #[test]
    fn parses_user_a_query() {
        let store = store();
        let q = parse(&store, "?x bornIn Germany").unwrap();
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.vars().len(), 1);
        assert_eq!(q.var_name(q.vars()[0]), "x");
        // Germany is not in this store — recorded as unknown.
        assert_eq!(q.unknown_terms.len(), 1);
    }

    #[test]
    fn parses_multi_pattern_join() {
        let store = store();
        let q = parse(
            &store,
            "AlbertEinstein affiliation ?x . ?x member IvyLeague",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(q.vars().len(), 1);
    }

    #[test]
    fn semicolon_separator_works() {
        let store = store();
        let q = parse(&store, "?x bornIn Ulm ; ?x affiliation ?y").unwrap();
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parses_token_patterns() {
        let store = store();
        let q = parse(&store, "AlbertEinstein 'won nobel for' ?y").unwrap();
        assert_eq!(q.patterns.len(), 1);
        let p = q.patterns[0].p.term().unwrap();
        assert!(p.is_token());
        assert!(q.unknown_terms.is_empty());
    }

    #[test]
    fn quoted_numeric_is_literal() {
        let store = store();
        let q = parse(&store, "?x bornOn '1879-03-14'").unwrap();
        let o = q.patterns[0].o.term().unwrap();
        assert!(o.is_literal());
    }

    #[test]
    fn select_and_limit() {
        let store = store();
        let q = parse(
            &store,
            "SELECT ?y WHERE AlbertEinstein 'won nobel for' ?y LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.k, 5);
        assert_eq!(q.projection.len(), 1);
    }

    #[test]
    fn select_without_where() {
        // Without WHERE, the projection list ends at the first non-variable
        // token (patterns starting with a variable need the WHERE keyword).
        let store = store();
        let q = parse(&store, "SELECT ?y AlbertEinstein 'won nobel for' ?y").unwrap();
        assert_eq!(q.projection.len(), 1);
        assert_eq!(q.patterns.len(), 1);
    }

    #[test]
    fn error_on_incomplete_pattern() {
        let store = store();
        let e = parse(&store, "?x bornIn").unwrap_err();
        assert!(e.message.contains("incomplete"));
    }

    #[test]
    fn error_on_empty_query() {
        let store = store();
        assert!(parse(&store, "").is_err());
        assert!(parse(&store, "   ").is_err());
    }

    #[test]
    fn error_on_unterminated_quote() {
        let store = store();
        assert!(parse(&store, "?x 'oops").is_err());
    }

    #[test]
    fn error_on_bad_limit() {
        let store = store();
        assert!(parse(&store, "?x bornIn Ulm LIMIT abc").is_err());
    }

    #[test]
    fn double_quotes_work() {
        let store = store();
        let q = parse(&store, "AlbertEinstein \"won nobel for\" ?y").unwrap();
        assert!(q.patterns[0].p.term().unwrap().is_token());
    }
}
