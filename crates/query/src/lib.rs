//! # trinit-query — extended triple-pattern queries and top-k processing
//!
//! The query layer of the TriniT reproduction: the extended query
//! language of §2 (triple patterns whose slots may be resources, tokens,
//! literals, or variables), the query-likelihood scoring model of §4, and
//! three execution engines — exact (no relaxation), full expansion
//! (reference/baseline), and the paper's incremental top-k with lazy
//! relaxation invocation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod answer;
pub mod ast;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod score;

pub use answer::{Answer, AnswerCollector, Bindings, Derivation};
pub use ast::{Query, QueryBuilder};
pub use exec::budget::{
    describe_panic, BudgetTracker, Completeness, CutoffReason, DegradationRung, ExecBudget,
    ExecError, Governor,
};
#[cfg(feature = "faults")]
pub use exec::faults;
pub use exec::topk::{IncrementalMerge, TopkConfig};
pub use exec::ExecMetrics;
pub use parser::{parse, ParseError};
pub use plan::plan_order;
pub use score::{
    canonical_pattern, head_prob_bound_global, ln_weight, satisfies_mask, CacheSource,
    CanonicalPattern, GlobalTotals, PostingCache, ScoredMatches, SharedCacheStats,
    SharedPostingCache, LOG_ZERO,
};

// Re-export the pattern language for downstream convenience.
pub use trinit_relax::{QPattern, QTerm, VarId};

// Re-export the instrumentation surface (`TopkConfig::obs` and the
// traces engine results carry are typed by these).
pub use trinit_obs::{ObsConfig, QueryTrace, SpanRecord, Stage, TraceRecorder};
